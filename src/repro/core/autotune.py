"""Layerwise direct-vs-FFT autotuning (Section IV).

"ZNN performs layerwise auto-tuning to choose between FFT-based or
direct convolution for each layer."  A *layer* here is a group of conv
edges sharing (input shape, kernel shape, sparsity): they all cost the
same, so one measurement decides the whole group.

The tuner times both methods on synthetic data — one forward, one
backward-input and one kernel-gradient transform, which is the per-edge
work mix of a training round — and picks the faster.  Because timing
noise on loaded machines can flip marginal cases, ties within
``tolerance`` prefer the direct method (no memoization bookkeeping).

:func:`crossover_kernel_size` sweeps kernel sizes to locate the
FFT/direct crossover for a given image size — the quantity the paper
argues falls at *smaller* kernels for ConvNet layers than for single
convolutions because image FFTs are shared between a layer's edges
(Table II); :func:`layer_crossover_kernel_size` measures the layer-level
crossover using the amortised cost model.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.computation_graph import ComputationGraph
from repro.pram.costs import (
    DEFAULT_FFT_CONSTANT,
    conv_layer_costs_direct,
    conv_layer_costs_fft,
)
from repro.tensor.conv_direct import (
    conv_backward_input,
    conv_kernel_gradient,
    correlate_valid,
)
from repro.tensor.conv_fft import FftConvPlan
from repro.utils.shapes import as_shape3, valid_conv_shape

__all__ = [
    "time_direct",
    "time_fft",
    "autotune_layer",
    "autotune_graph",
    "crossover_kernel_size",
    "layer_crossover_kernel_size",
]


def _bench(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def time_direct(image_shape, kernel_shape, sparsity=1, repeats: int = 3
                ) -> float:
    """Wall time of one direct fwd + bwd + kernel-grad on random data."""
    rng = np.random.default_rng(0)
    img = rng.standard_normal(as_shape3(image_shape))
    ker = rng.standard_normal(as_shape3(kernel_shape))
    out_shape = valid_conv_shape(image_shape, kernel_shape, sparsity)
    grad = rng.standard_normal(out_shape)

    def work() -> None:
        correlate_valid(img, ker, sparsity)
        conv_backward_input(grad, ker, sparsity)
        conv_kernel_gradient(img, grad, sparsity)

    return _bench(work, repeats)


def time_fft(image_shape, kernel_shape, sparsity=1, repeats: int = 3
             ) -> float:
    """Wall time of the memoized FFT equivalent: spectra computed once,
    three products + three inverse transforms."""
    rng = np.random.default_rng(0)
    plan = FftConvPlan(image_shape, kernel_shape, sparsity)
    img = rng.standard_normal(plan.image_shape)
    ker = rng.standard_normal(plan.kernel_shape)
    grad = rng.standard_normal(plan.output_shape)

    def work() -> None:
        fi = plan.image_spectrum(img)
        fk = plan.kernel_spectrum(ker)
        fg = plan.grad_spectrum(grad)
        plan.forward(fi, fk)
        plan.backward(fg, fk)
        plan.kernel_gradient(fi, fg)

    return _bench(work, repeats)


def autotune_layer(image_shape, kernel_shape, sparsity=1,
                   repeats: int = 3, tolerance: float = 0.05
                   ) -> Tuple[str, float, float]:
    """Measure both methods; return ``(mode, t_direct, t_fft)``.

    A failing FFT benchmark (broken FFT backend, injected fault) is not
    fatal: the layer degrades to the direct method, mirroring the
    per-edge runtime fallback (``docs/robustness.md``), with
    ``t_fft = inf``.
    """
    t_direct = time_direct(image_shape, kernel_shape, sparsity, repeats)
    try:
        t_fft = time_fft(image_shape, kernel_shape, sparsity, repeats)
    except Exception:
        return "direct", t_direct, float("inf")
    mode = "fft" if t_fft < t_direct * (1.0 - tolerance) else "direct"
    return mode, t_direct, t_fft


def autotune_graph(graph: ComputationGraph, repeats: int = 3
                   ) -> Dict[str, str]:
    """Choose a conv mode per edge, one measurement per distinct
    (input shape, kernel, sparsity) layer group.

    Shapes must be propagated on *graph* beforehand (Network does this
    before calling).
    """
    modes: Dict[str, str] = {}
    group_mode: Dict[tuple, str] = {}
    for edge in graph.edges.values():
        if edge.kind != "conv":
            continue
        src = graph.nodes[edge.src]
        if src.shape is None:
            raise ValueError("propagate_shapes() before autotune_graph()")
        key = (src.shape, edge.kernel, edge.sparsity)
        if key not in group_mode:
            group_mode[key], _, _ = autotune_layer(
                src.shape, edge.kernel, edge.sparsity, repeats)
        modes[edge.name] = group_mode[key]
    return modes


def crossover_kernel_size(image_shape, kernel_sizes: Sequence[int],
                          sparsity=1, repeats: int = 3) -> Optional[int]:
    """Smallest kernel size at which FFT beats direct for a *single*
    convolution triple, or None if direct wins throughout."""
    for k in sorted(kernel_sizes):
        mode, _, _ = autotune_layer(image_shape, k, sparsity, repeats)
        if mode == "fft":
            return k
    return None


def layer_crossover_kernel_size(image_shape, kernel_sizes: Sequence[int],
                                f_in: int, f_out: int,
                                constant: float = DEFAULT_FFT_CONSTANT,
                                flops_ratio: float = 1.0) -> Optional[int]:
    """Smallest kernel size at which the *layer-level* FFT cost model
    (Table II, memoized — image/kernel FFTs amortised over ``f*f'``
    edges) beats the direct model.

    ``flops_ratio`` rescales direct FLOPs to account for direct
    convolution's better constant factor on real hardware (>1 favours
    direct).  With ``f_in = f_out = 1`` this reduces to the
    single-convolution crossover, demonstrating the paper's claim that
    layers cross over at smaller kernels.
    """
    for k in sorted(kernel_sizes):
        try:
            direct = conv_layer_costs_direct(f_in, f_out, image_shape, k).total
        except ValueError:  # kernel no longer fits the image
            return None
        fft = conv_layer_costs_fft(f_in, f_out, image_shape,
                                   memoized=True, constant=constant).total
        if fft < direct * flops_ratio:
            return k
    return None
