"""Training loop driver (Section III, the outer iteration).

Couples a :class:`repro.core.Network` with a data provider (the orange
task of Fig 3) and runs rounds of gradient learning, recording losses
and timing in the same style as the paper's measurements ("first
running the gradient learning algorithm for 5 warm-up rounds and then
averaging the time required for the next 50 rounds").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.network import Network
from repro.observability.metrics import get_registry

__all__ = ["Sample", "DataProvider", "Trainer", "TrainingReport",
           "measure_seconds_per_update"]

#: One training example: (inputs, targets) in the formats Network accepts.
Sample = Tuple[object, object]


class DataProvider(Protocol):
    """The data-provider interface: yields one (inputs, targets) pair
    per call — the paper's task that 'obtains a training sample used
    for a single round of training'."""

    def sample(self) -> Sample:  # pragma: no cover - protocol
        ...


@dataclass
class TrainingReport:
    """Losses and timing gathered by :class:`Trainer.run`."""

    losses: List[float] = field(default_factory=list)
    round_seconds: List[float] = field(default_factory=list)
    #: (round index, validation loss) pairs when validation is enabled.
    validations: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.losses)

    @property
    def mean_seconds_per_update(self) -> float:
        return float(np.mean(self.round_seconds)) if self.round_seconds else 0.0

    def smoothed_losses(self, window: int = 10) -> List[float]:
        """Running mean of the loss curve (for monitoring convergence)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        out: List[float] = []
        for i in range(len(self.losses)):
            lo = max(0, i - window + 1)
            out.append(float(np.mean(self.losses[lo:i + 1])))
        return out


class Trainer:
    """Runs gradient-learning rounds on a network."""

    def __init__(self, network: Network, provider: DataProvider) -> None:
        self.network = network
        self.provider = provider

    def run(self, rounds: int, warmup: int = 0,
            callback=None, lr_schedule=None,
            val_provider=None, validate_every: int = 0,
            val_samples: int = 4) -> TrainingReport:
        """Train for *rounds* recorded rounds after *warmup* unrecorded
        ones.

        *callback(round_index, loss)* is invoked per recorded round;
        *lr_schedule(round_index) -> float*, if given, sets the
        network's learning rate before each recorded round (e.g. step
        decay ``lambda i: 1e-3 * 0.5 ** (i // 100)``).

        With *val_provider* and ``validate_every > 0``, the network is
        evaluated (forward passes only — no weight updates) on
        *val_samples* held-out samples every *validate_every* rounds;
        results land in ``report.validations``.
        """
        if rounds < 0 or warmup < 0:
            raise ValueError("rounds and warmup must be >= 0")
        if validate_every and val_provider is None:
            raise ValueError("validate_every needs a val_provider")
        reg = get_registry()
        m_rounds = reg.counter("train.rounds")
        m_loss = reg.gauge("train.loss")
        m_seconds = reg.histogram("train.seconds_per_update")
        for _ in range(warmup):
            inputs, targets = self.provider.sample()
            self.network.train_step(inputs, targets)
        report = TrainingReport()
        for i in range(rounds):
            if lr_schedule is not None:
                self.network.set_learning_rate(float(lr_schedule(i)))
            inputs, targets = self.provider.sample()
            t0 = time.perf_counter()
            loss = self.network.train_step(inputs, targets)
            seconds = time.perf_counter() - t0
            report.round_seconds.append(seconds)
            report.losses.append(loss)
            m_rounds.inc()
            m_loss.set(loss)
            m_seconds.observe(seconds)
            if callback is not None:
                callback(i, loss)
            if validate_every and (i + 1) % validate_every == 0:
                report.validations.append(
                    (i, self.validate(val_provider, val_samples)))
        return report

    def validate(self, provider: DataProvider, samples: int = 4) -> float:
        """Mean loss over *samples* held-out samples, without training
        (forward passes only; weights untouched)."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        net = self.network
        total = 0.0
        for _ in range(samples):
            inputs, targets = provider.sample()
            outputs = net.forward(inputs)
            targets = net._normalize_targets(targets)
            value, _ = net.loss.joint_value_and_gradient(outputs, targets)
            total += value
        return total / samples


def measure_seconds_per_update(network: Network, provider: DataProvider,
                               warmup: int = 5, rounds: int = 50) -> float:
    """The paper's timing protocol: warm up, then average wall time per
    update over the measured rounds."""
    report = Trainer(network, provider).run(rounds=rounds, warmup=warmup)
    return report.mean_seconds_per_update
