"""Training loop driver (Section III, the outer iteration).

Couples a :class:`repro.core.Network` with a data provider (the orange
task of Fig 3) and runs rounds of gradient learning, recording losses
and timing in the same style as the paper's measurements ("first
running the gradient learning algorithm for 5 warm-up rounds and then
averaging the time required for the next 50 rounds").

Beyond the paper the loop is hardened for long unattended runs (see
``docs/robustness.md``):

* ``checkpoint_every``/``checkpoint_dir`` write periodic **atomic**
  checkpoints (``ckpt-<rounds>.npz``) via
  :func:`repro.core.serialization.save_network`;
* a **NaN/Inf loss guard** rolls the network back to the last good
  checkpoint, decays the learning rate, and re-runs the lost rounds —
  ``train.rollbacks`` in the metrics registry counts every rollback;
  runs diverging more than ``max_rollbacks`` times raise
  :class:`TrainingDiverged`;
* an installed :class:`repro.resilience.FaultPlan` can corrupt the
  loss (family ``"loss"``) to exercise the guard.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.network import Network
from repro.observability.metrics import get_registry
from repro.resilience.faults import active_plan

__all__ = ["Sample", "DataProvider", "Trainer", "TrainingReport",
           "TrainingDiverged", "measure_seconds_per_update"]

#: One training example: (inputs, targets) in the formats Network accepts.
Sample = Tuple[object, object]


class TrainingDiverged(RuntimeError):
    """The loss went non-finite and recovery was impossible (no
    checkpoint to roll back to) or futile (rollback budget exhausted)."""


class DataProvider(Protocol):
    """The data-provider interface: yields one (inputs, targets) pair
    per call — the paper's task that 'obtains a training sample used
    for a single round of training'."""

    def sample(self) -> Sample:  # pragma: no cover - protocol
        ...


@dataclass
class TrainingReport:
    """Losses and timing gathered by :class:`Trainer.run`."""

    losses: List[float] = field(default_factory=list)
    round_seconds: List[float] = field(default_factory=list)
    #: (round index, validation loss) pairs when validation is enabled.
    validations: List[Tuple[int, float]] = field(default_factory=list)
    #: Times the NaN/Inf guard rolled back to a checkpoint.
    rollbacks: int = 0
    #: Checkpoint paths written, in order.
    checkpoints: List[str] = field(default_factory=list)
    #: Process count the run started with (1 = sequential trainer).
    workers: int = 1
    #: Global minibatch size per round (1 = sequential trainer).
    batch: int = 1
    #: Worker processes lost (and survived) during the run.
    worker_deaths: int = 0

    @property
    def rounds(self) -> int:
        return len(self.losses)

    @property
    def mean_seconds_per_update(self) -> float:
        return float(np.mean(self.round_seconds)) if self.round_seconds else 0.0

    def smoothed_losses(self, window: int = 10) -> List[float]:
        """Running mean of the loss curve (for monitoring convergence)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        out: List[float] = []
        for i in range(len(self.losses)):
            lo = max(0, i - window + 1)
            out.append(float(np.mean(self.losses[lo:i + 1])))
        return out


class Trainer:
    """Runs gradient-learning rounds on a network."""

    def __init__(self, network: Network, provider: DataProvider) -> None:
        self.network = network
        self.provider = provider

    def run(self, rounds: int, warmup: int = 0,
            callback=None, lr_schedule=None,
            val_provider=None, validate_every: int = 0,
            val_samples: int = 4,
            checkpoint_every: int = 0,
            checkpoint_dir=None,
            max_rollbacks: int = 3,
            rollback_lr_decay: float = 0.5) -> TrainingReport:
        """Train for *rounds* recorded rounds after *warmup* unrecorded
        ones.

        *callback(round_index, loss)* is invoked per recorded round;
        *lr_schedule(round_index) -> float*, if given, sets the
        network's learning rate before each recorded round (e.g. step
        decay ``lambda i: 1e-3 * 0.5 ** (i // 100)``).

        With *val_provider* and ``validate_every > 0``, the network is
        evaluated (forward passes only — no weight updates) on
        *val_samples* held-out samples every *validate_every* rounds;
        results land in ``report.validations``.

        With ``checkpoint_every > 0`` (requires *checkpoint_dir*) an
        atomic checkpoint is written after every ``checkpoint_every``
        recorded rounds, plus once before the first round and once at
        the end — the files ``repro train --resume`` restarts from.  A
        non-finite loss then rolls the run back to the last checkpoint
        (re-running the lost rounds) with the learning rate scaled by
        ``rollback_lr_decay``; more than ``max_rollbacks`` rollbacks
        raise :class:`TrainingDiverged`, as does any non-finite loss
        when checkpointing is off.
        """
        if rounds < 0 or warmup < 0:
            raise ValueError("rounds and warmup must be >= 0")
        if validate_every and val_provider is None:
            raise ValueError("validate_every needs a val_provider")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        if not 0.0 < rollback_lr_decay <= 1.0:
            raise ValueError(
                f"rollback_lr_decay must be in (0, 1], got {rollback_lr_decay}")
        from repro.core.serialization import load_network, save_network

        reg = get_registry()
        m_rounds = reg.counter("train.rounds")
        m_loss = reg.gauge("train.loss")
        m_seconds = reg.histogram("train.seconds_per_update")
        m_rollbacks = reg.counter("train.rollbacks")
        for _ in range(warmup):
            inputs, targets = self.provider.sample()
            self.network.train_step(inputs, targets)
        report = TrainingReport()

        checkpointing = checkpoint_every > 0
        last_ckpt: Optional[Tuple[str, int]] = None  # (path, recorded rounds)
        lr_scale = 1.0

        def write_checkpoint() -> None:
            nonlocal last_ckpt
            path = os.path.join(
                os.fspath(checkpoint_dir),
                f"ckpt-{self.network.rounds:08d}.npz")
            save_network(self.network, path)
            last_ckpt = (path, len(report.losses))
            report.checkpoints.append(path)

        if checkpointing:
            os.makedirs(os.fspath(checkpoint_dir), exist_ok=True)
            write_checkpoint()  # rollback target before the first round

        while len(report.losses) < rounds:
            i = len(report.losses)
            if lr_schedule is not None:
                self.network.set_learning_rate(
                    float(lr_schedule(i)) * lr_scale)
            inputs, targets = self.provider.sample()
            t0 = time.perf_counter()
            loss = self.network.train_step(inputs, targets)
            seconds = time.perf_counter() - t0
            plan = active_plan()
            if plan is not None:
                loss = plan.corrupt("loss", loss, name=f"round {i}")
            if not np.isfinite(loss):
                report.rollbacks += 1
                m_rollbacks.inc()
                if report.rollbacks > max_rollbacks:
                    raise TrainingDiverged(
                        f"loss non-finite after {max_rollbacks} rollbacks "
                        f"(round {i})")
                if last_ckpt is None:
                    raise TrainingDiverged(
                        f"loss became non-finite at round {i} and no "
                        "checkpoint exists to roll back to (enable "
                        "checkpoint_every)")
                # Drain poisoned deferred updates before restoring, so
                # they cannot fire later and re-corrupt the weights.
                self.network.synchronize()
                load_network(self.network, last_ckpt[0])
                del report.losses[last_ckpt[1]:]
                del report.round_seconds[last_ckpt[1]:]
                report.validations = [
                    (r, v) for r, v in report.validations if r < last_ckpt[1]]
                lr_scale *= rollback_lr_decay
                if lr_schedule is None:
                    self.network.set_learning_rate(
                        self.network.optimizer.learning_rate
                        * rollback_lr_decay)
                continue
            report.round_seconds.append(seconds)
            report.losses.append(loss)
            m_rounds.inc()
            m_loss.set(loss)
            m_seconds.observe(seconds)
            if callback is not None:
                callback(i, loss)
            if validate_every and (i + 1) % validate_every == 0:
                report.validations.append(
                    (i, self.validate(val_provider, val_samples)))
            if checkpointing and len(report.losses) % checkpoint_every == 0:
                write_checkpoint()
        if checkpointing and last_ckpt[1] != len(report.losses):
            write_checkpoint()  # final partial interval
        return report

    def validate(self, provider: DataProvider, samples: int = 4) -> float:
        """Mean loss over *samples* held-out samples, without training
        (forward passes only; weights untouched)."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        net = self.network
        total = 0.0
        for _ in range(samples):
            inputs, targets = provider.sample()
            outputs = net.forward(inputs)
            targets = net._normalize_targets(targets)
            value, _ = net.loss.joint_value_and_gradient(outputs, targets)
            total += value
        return total / samples


def measure_seconds_per_update(network: Network, provider: DataProvider,
                               warmup: int = 5, rounds: int = 50) -> float:
    """The paper's timing protocol: warm up, then average wall time per
    update over the measured rounds."""
    report = Trainer(network, provider).run(rounds=rounds, warmup=warmup)
    return report.mean_seconds_per_update
