"""Tiled dense inference over large volumes.

The connectomics deployments of ZNN ([21], [23]) run trained networks
over volumes far larger than one forward pass can hold.  The standard
technique tiles the volume into overlapping input blocks — each block
extends the output tile by the network's field of view minus one, so
adjacent tiles produce *identical* values on their shared boundary (the
networks are translation covariant) and the dense outputs concatenate
seamlessly.

:func:`tiled_forward` handles the block arithmetic, ragged edge tiles,
and stitching, for any single-input/single-output dense network.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.utils.shapes import Shape3, as_shape3
from repro.utils.validation import check_array3

__all__ = ["field_of_view_of", "tile_plan", "tiled_forward"]


def field_of_view_of(network: Network) -> Shape3:
    """The network's field of view: input size − output size + 1."""
    if len(network.input_nodes) != 1 or len(network.output_nodes) != 1:
        raise ValueError("tiled inference needs exactly one input and "
                         "one output node")
    in_shape = network.input_nodes[0].shape
    out_shape = network.output_nodes[0].shape
    fov = tuple(i - o + 1 for i, o in zip(in_shape, out_shape))
    if any(f < 1 for f in fov):
        raise ValueError(f"invalid field of view {fov}")
    return fov  # type: ignore[return-value]


def tile_plan(volume_shape: Sequence[int], input_shape: Sequence[int],
              output_shape: Sequence[int]
              ) -> Iterator[Tuple[Tuple[int, int, int],
                                  Tuple[int, int, int]]]:
    """Yield ``(input_corner, output_corner)`` pairs covering the
    volume's dense output region.

    The dense output of the whole volume has shape
    ``volume − fov + 1``.  Interior tiles step by the network's output
    size; the final tile per axis is shifted back so it ends exactly at
    the volume boundary (re-computing a few voxels rather than running
    a ragged partial tile).
    """
    v = as_shape3(volume_shape, name="volume_shape")
    i = as_shape3(input_shape, name="input_shape")
    o = as_shape3(output_shape, name="output_shape")
    if any(vd < id_ for vd, id_ in zip(v, i)):
        raise ValueError(f"volume {v} smaller than network input {i}")

    starts_per_axis = []
    for vd, id_, od in zip(v, i, o):
        last = vd - id_  # last valid input corner
        starts = list(range(0, last + 1, od))
        if starts[-1] != last:
            starts.append(last)
        starts_per_axis.append(starts)

    for z in starts_per_axis[0]:
        for y in starts_per_axis[1]:
            for x in starts_per_axis[2]:
                yield (z, y, x), (z, y, x)


def tiled_forward(network: Network, volume: np.ndarray,
                  progress: Optional[callable] = None) -> np.ndarray:
    """Dense inference over *volume* by overlapping tiles.

    Returns the full dense output of shape ``volume − fov + 1`` per
    axis; every voxel equals what a (hypothetical) single forward pass
    over the whole volume would produce.  ``progress(done, total)`` is
    called after each tile.
    """
    vol = check_array3(volume, "volume")
    in_shape = network.input_nodes[0].shape
    out_shape = network.output_nodes[0].shape
    fov = field_of_view_of(network)
    dense_shape = tuple(v - f + 1 for v, f in zip(vol.shape, fov))
    out_name = network.output_nodes[0].name

    plan = list(tile_plan(vol.shape, in_shape, out_shape))
    dense = np.empty(dense_shape, dtype=np.float64)
    for index, (ic, oc) in enumerate(plan):
        block = vol[ic[0]:ic[0] + in_shape[0],
                    ic[1]:ic[1] + in_shape[1],
                    ic[2]:ic[2] + in_shape[2]]
        tile = network.forward(block)[out_name]
        dense[oc[0]:oc[0] + out_shape[0],
              oc[1]:oc[1] + out_shape[1],
              oc[2]:oc[2] + out_shape[2]] = tile
        if progress is not None:
            progress(index + 1, len(plan))
    return dense
