"""Loss functions and their gradients (Section III, step 3).

ZNN "implements several possibilities for the loss function, such as
the Euclidean distance between the actual and desired outputs".  We
provide:

* :class:`EuclideanLoss` — ``0.5 * sum((o - t)^2)``, the paper's default;
* :class:`BinaryLogisticLoss` — per-voxel sigmoid cross-entropy on
  linear outputs (the standard choice for boundary detection, the
  paper's motivating connectomics application);
* :class:`SoftmaxCrossEntropyLoss` — softmax across the output *nodes*
  per voxel (multi-class labelling).

A loss is evaluated over the network's output nodes.  ``per_node``
losses decompose over nodes, so the network can spawn one loss-gradient
task per output node as soon as that node's forward sum completes (the
dark-red tasks of Fig 3); cross-node losses (softmax) need every output
first and produce a single joined task.

All gradients are with respect to the network outputs (the images the
backward pass is seeded with).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = [
    "Loss",
    "EuclideanLoss",
    "BinaryLogisticLoss",
    "SoftmaxCrossEntropyLoss",
    "get_loss",
]


class Loss:
    """Base class.  Subclasses either implement
    :meth:`node_value_and_gradient` (``per_node = True``) or
    :meth:`joint_value_and_gradient` (``per_node = False``)."""

    per_node: bool = True

    def node_value_and_gradient(self, output: np.ndarray, target: np.ndarray
                                ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def joint_value_and_gradient(self, outputs: Mapping[str, np.ndarray],
                                 targets: Mapping[str, np.ndarray]
                                 ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Default joint evaluation: sum of per-node losses."""
        total = 0.0
        grads: Dict[str, np.ndarray] = {}
        for name, output in outputs.items():
            value, grad = self.node_value_and_gradient(output, targets[name])
            total += value
            grads[name] = grad
        return total, grads

    @staticmethod
    def _check(output: np.ndarray, target: np.ndarray) -> None:
        if output.shape != target.shape:
            raise ValueError(
                f"output shape {output.shape} != target shape {target.shape}")


class EuclideanLoss(Loss):
    """Squared Euclidean distance: ``0.5 * sum((o - t)^2)``."""

    per_node = True

    def node_value_and_gradient(self, output, target):
        self._check(output, target)
        diff = output - target
        return 0.5 * float(np.sum(diff * diff)), diff


class BinaryLogisticLoss(Loss):
    """Per-voxel sigmoid cross-entropy on *linear* outputs.

    ``loss = sum(softplus(o) - t * o)`` with gradient
    ``sigmoid(o) - t``; numerically stable for large ``|o|``.
    Targets must lie in [0, 1].
    """

    per_node = True

    def node_value_and_gradient(self, output, target):
        self._check(output, target)
        # softplus(o) = log(1 + exp(o)) = max(o, 0) + log1p(exp(-|o|))
        softplus = np.maximum(output, 0.0) + np.log1p(np.exp(-np.abs(output)))
        value = float(np.sum(softplus - target * output))
        sigmoid = np.empty_like(output)
        pos = output >= 0
        sigmoid[pos] = 1.0 / (1.0 + np.exp(-output[pos]))
        ex = np.exp(output[~pos])
        sigmoid[~pos] = ex / (1.0 + ex)
        return value, sigmoid - target


class SoftmaxCrossEntropyLoss(Loss):
    """Per-voxel softmax over the output nodes, cross-entropy against
    one-hot (or soft) targets given per node.

    Needs all outputs jointly, so ``per_node`` is False and the network
    spawns a single loss-gradient task once the last output completes.
    """

    per_node = False

    def joint_value_and_gradient(self, outputs, targets):
        names = sorted(outputs)
        if sorted(targets) != names:
            raise ValueError(
                f"targets {sorted(targets)} do not match outputs {names}")
        stack = np.stack([outputs[n] for n in names], axis=0)
        tstack = np.stack([targets[n] for n in names], axis=0)
        stack = stack - np.max(stack, axis=0, keepdims=True)
        exp = np.exp(stack)
        probs = exp / np.sum(exp, axis=0, keepdims=True)
        value = -float(np.sum(tstack * np.log(np.clip(probs, 1e-300, None))))
        grads = probs - tstack
        return value, {n: np.ascontiguousarray(grads[i])
                       for i, n in enumerate(names)}


_LOSSES = {
    "euclidean": EuclideanLoss,
    "binary-logistic": BinaryLogisticLoss,
    "softmax": SoftmaxCrossEntropyLoss,
}


def get_loss(name: str | Loss) -> Loss:
    """Look up a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    try:
        return _LOSSES[name]()
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; "
                         f"available: {sorted(_LOSSES)}") from None
