"""Multi-scale and scale-invariant networks (Sections II-A and XI).

ZNN's sparsity control enables two extensions the paper highlights:

* **multi-scale** networks [14], [16] — parallel convolution paths at
  different sparsities whose outputs are summed at a common node,
  combining features of several receptive-field scales *without*
  up/down-sampling (max-filtering preserves resolution);
* **scale-invariant** convolution [15] — the same *shared* kernel
  applied at each scale (weight sharing across the parallel edges).

:func:`build_multiscale_graph` constructs the graph: an input trunk,
``len(scales)`` parallel sparse-conv branches converging on a sum node,
and an output head.  :func:`make_scale_invariant` ties the parallel
kernels of a built network together.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.network import Network
from repro.graph.computation_graph import ComputationGraph
from repro.utils.shapes import as_shape3, effective_kernel_shape

__all__ = ["build_multiscale_graph", "branch_edge_names",
           "make_scale_invariant"]


def build_multiscale_graph(kernel: int | Sequence[int] = 3,
                           scales: Sequence[int] = (1, 2, 4),
                           width: int = 4,
                           transfer: str = "relu") -> ComputationGraph:
    """A three-stage multi-scale graph.

    Structure per width-channel ``j``::

        input → conv(k, s=1) → T →  conv(k, sparsity=s_i)  ┐
                                      … one per scale …     ├→ (sum) → T → conv → output
                                                            ┘

    The parallel branches all produce the same output shape, which
    requires *trimming*: branch ``i`` is padded to the slowest branch's
    shrinkage with an extra valid convolution of kernel 1 — instead we
    simply require all scales to shrink equally by choosing per-branch
    kernels.  Concretely each branch uses the same kernel size ``k``
    but sparsity ``s_i``, so the shrinkage differs; we equalise by
    giving faster branches an extra max-filter of the right window.
    """
    k = as_shape3(kernel, name="kernel")
    scales = [int(s) for s in scales]
    if any(s < 1 for s in scales):
        raise ValueError(f"scales must be >= 1, got {scales}")

    g = ComputationGraph()
    g.add_node("input", layer=0)

    # Shared trunk.
    trunk: List[str] = []
    for j in range(width):
        g.add_node(f"trunk_{j}", layer=1)
        g.add_edge(f"conv_trunk_{j}", "input", f"trunk_{j}", "conv", kernel=k)
        g.add_node(f"trunkT_{j}", layer=2)
        g.add_edge(f"xfer_trunk_{j}", f"trunk_{j}", f"trunkT_{j}", "transfer",
                   transfer=transfer)
        trunk.append(f"trunkT_{j}")

    # Parallel scale branches, equalised to the largest footprint.
    eff = [effective_kernel_shape(k, s) for s in scales]
    max_eff = tuple(max(e[d] for e in eff) for d in range(3))
    merged: List[str] = []
    for j in range(width):
        g.add_node(f"merge_{j}", layer=4)
        for i, s in enumerate(scales):
            pad = tuple(me - e + 1 for me, e in zip(max_eff, eff[i]))
            if pad == (1, 1, 1):
                # Shrinks exactly like the largest scale: direct edge.
                for src in trunk:
                    g.add_edge(f"conv_s{s}_{src}_to_{j}", src, f"merge_{j}",
                               "conv", kernel=k, sparsity=s)
            else:
                # Equalise with a max-filter of the residual window.
                mid = f"branch_s{s}_{j}"
                g.add_node(mid, layer=3)
                for src in trunk:
                    g.add_edge(f"conv_s{s}_{src}_to_{j}", src, mid,
                               "conv", kernel=k, sparsity=s)
                g.add_edge(f"filt_s{s}_{j}", mid, f"merge_{j}", "filter",
                           window=pad)
        merged.append(f"merge_{j}")

    # Output head.
    g.add_node("head", layer=6)
    for j, src in enumerate(merged):
        mid = f"mergeT_{j}"
        g.add_node(mid, layer=5)
        g.add_edge(f"xfer_merge_{j}", src, mid, "transfer", transfer=transfer)
        g.add_edge(f"conv_head_{j}", mid, "head", "conv", kernel=1)
    g.add_node("output", layer=7)
    g.add_edge("xfer_out", "head", "output", "transfer", transfer="linear")

    g.validate()
    return g


def branch_edge_names(graph: ComputationGraph, src: str, dst_channel: int
                      ) -> Dict[int, str]:
    """The parallel conv edges from trunk node *src* into merge channel
    *dst_channel*, keyed by scale."""
    out: Dict[int, str] = {}
    prefix = "conv_s"
    for name in graph.edges:
        if name.startswith(prefix) and f"_{src}_to_{dst_channel}" in name:
            scale = int(name[len(prefix):name.index("_", len(prefix))])
            out[scale] = name
    return out


def make_scale_invariant(network: Network, graph: ComputationGraph,
                         trunk_width: int, merge_width: int) -> int:
    """Tie the kernels of each (trunk node → merge channel) group of
    parallel scale edges together.  Returns the number of tied groups."""
    tied = 0
    for j in range(merge_width):
        for t in range(trunk_width):
            names = branch_edge_names(graph, f"trunkT_{t}", j)
            if len(names) >= 2:
                network.share_kernels([names[s] for s in sorted(names)])
                tied += 1
    return tied
