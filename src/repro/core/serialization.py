"""Network checkpointing.

Saves/restores every trainable parameter (conv kernels and transfer
biases) plus momentum velocities and the round counter to a compressed
``.npz``, keyed by edge name so checkpoints survive as long as the
architecture (edge names and kernel shapes) does.  The ZNN release
persisted networks the same way — parameters by edge, architecture from
the spec file.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.network import Network

__all__ = ["save_network", "load_network", "network_state"]

_KERNEL = "kernel::"
_BIAS = "bias::"
_VELOCITY = "velocity::"
_META = "__meta__"


def network_state(network: Network) -> Dict[str, np.ndarray]:
    """Flat name->array mapping of every persistent quantity."""
    state: Dict[str, np.ndarray] = {}
    seen_kernels = set()
    for name, edge in network.edges.items():
        if hasattr(edge, "kernel"):
            state[_KERNEL + name] = np.array(edge.kernel.array)
            if (id(edge.kernel) not in seen_kernels
                    and edge.kernel.state.velocity is not None):
                state[_VELOCITY + name] = np.array(
                    edge.kernel.state.velocity)
            seen_kernels.add(id(edge.kernel))
        if hasattr(edge, "bias"):
            state[_BIAS + name] = np.array(edge.bias)
            if isinstance(edge.state.velocity, float):
                state[_VELOCITY + name] = np.array(edge.state.velocity)
    state[_META] = np.array([network.rounds], dtype=np.int64)
    return state


def save_network(network: Network, path) -> None:
    """Write a checkpoint; pending updates are drained first so the
    snapshot is consistent."""
    network.synchronize()
    np.savez_compressed(path, **network_state(network))


def load_network(network: Network, path) -> int:
    """Restore parameters into an architecture-compatible *network*.

    Returns the stored round counter.  Raises ``KeyError`` if the
    checkpoint misses a trainable edge of the network and ``ValueError``
    on shape mismatches.
    """
    with np.load(path) as data:
        for name, edge in network.edges.items():
            if hasattr(edge, "kernel"):
                key = _KERNEL + name
                if key not in data:
                    raise KeyError(f"checkpoint missing kernel for {name!r}")
                kernel = data[key]
                if kernel.shape != edge.kernel.array.shape:
                    raise ValueError(
                        f"kernel {name!r}: checkpoint shape {kernel.shape} "
                        f"!= network {edge.kernel.array.shape}")
                edge.kernel.array[...] = kernel
                vkey = _VELOCITY + name
                if vkey in data:
                    edge.kernel.state.velocity = np.array(data[vkey])
            if hasattr(edge, "bias"):
                key = _BIAS + name
                if key not in data:
                    raise KeyError(f"checkpoint missing bias for {name!r}")
                edge.bias = float(data[key])
                vkey = _VELOCITY + name
                if vkey in data:
                    edge.state.velocity = float(data[vkey])
        rounds = int(data[_META][0]) if _META in data else 0
    network.rounds = rounds
    return rounds
