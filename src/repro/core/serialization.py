"""Network checkpointing.

Saves/restores every trainable parameter (conv kernels and transfer
biases) plus momentum velocities and the round counter to a compressed
``.npz``, keyed by edge name so checkpoints survive as long as the
architecture (edge names and kernel shapes) does.  The ZNN release
persisted networks the same way — parameters by edge, architecture from
the spec file.

Writes are **atomic**: the state is serialized to a temporary file in
the checkpoint's directory and moved into place with ``os.replace``, so
a crash mid-save can never leave a torn, unloadable checkpoint — the
invariant the Trainer's rollback and ``repro train --resume`` depend on
(see ``docs/robustness.md``).

Velocity keys: a kernel shared by several edges (weight sharing) stores
its momentum velocity once, under ``kvel::`` + the *alphabetically
first* sharing edge's name — a stable id, so restoring cannot silently
drop momentum however the edge dict happens to be ordered.  Bias
velocities live under ``bvel::`` + edge name.  Checkpoints written by
older versions (a single order-dependent ``velocity::`` key per
parameter) still load.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from typing import Dict, List, Optional

import numpy as np

from repro.core.network import Network

__all__ = [
    "save_network",
    "load_network",
    "network_state",
    "state_digest",
    "checkpoint_digest",
    "latest_checkpoint",
    "load_latest_checkpoint",
]

_KERNEL = "kernel::"
_BIAS = "bias::"
_KERNEL_VELOCITY = "kvel::"
_BIAS_VELOCITY = "bvel::"
_LEGACY_VELOCITY = "velocity::"
_META = "__meta__"


def _kernel_groups(network: Network) -> Dict[int, List[str]]:
    """id(kernel) -> sorted names of the edges sharing that kernel."""
    groups: Dict[int, List[str]] = {}
    for name, edge in network.edges.items():
        if hasattr(edge, "kernel"):
            groups.setdefault(id(edge.kernel), []).append(name)
    return {kid: sorted(names) for kid, names in groups.items()}


def network_state(network: Network) -> Dict[str, np.ndarray]:
    """Flat name->array mapping of every persistent quantity."""
    state: Dict[str, np.ndarray] = {}
    groups = _kernel_groups(network)
    seen_kernels = set()
    for name, edge in network.edges.items():
        if hasattr(edge, "kernel"):
            state[_KERNEL + name] = np.array(edge.kernel.array)
            kid = id(edge.kernel)
            if (kid not in seen_kernels
                    and edge.kernel.state.velocity is not None):
                state[_KERNEL_VELOCITY + groups[kid][0]] = np.array(
                    edge.kernel.state.velocity)
            seen_kernels.add(kid)
        if hasattr(edge, "bias"):
            state[_BIAS + name] = np.array(edge.bias)
            if isinstance(edge.state.velocity, float):
                state[_BIAS_VELOCITY + name] = np.array(edge.state.velocity)
    state[_META] = np.array([network.rounds], dtype=np.int64)
    return state


def _digest_state(state: Dict[str, np.ndarray]) -> str:
    digest = hashlib.sha256()
    for name in sorted(state):
        arr = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.dtype.str.encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


# deterministic
def state_digest(network: Network) -> str:
    """sha256 over every persistent quantity of *network*, in sorted
    key order with shape and dtype mixed in.

    Hashing the *state arrays* rather than checkpoint file bytes makes
    the digest independent of npz/zlib framing, so golden values stay
    valid across numpy releases; two networks have equal digests iff
    their parameters, velocities and round counters are bitwise equal —
    the data-parallel determinism contract's verification primitive.
    """
    network.synchronize()
    return _digest_state(network_state(network))


def checkpoint_digest(path) -> str:
    """The :func:`state_digest` a network restored from *path* would
    have (computed without building a network)."""
    with np.load(path) as data:
        state = {name: np.array(data[name]) for name in data.files}
    return _digest_state(state)


def save_network(network: Network, path) -> None:
    """Write a checkpoint atomically; pending updates are drained first
    so the snapshot is consistent.

    The bytes land in a temporary file in the target directory which is
    fsynced and then ``os.replace``d over *path*: readers only ever see
    the old complete checkpoint or the new complete one.
    """
    network.synchronize()
    state = network_state(network)
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **state)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def load_network(network: Network, path) -> int:
    """Restore parameters into an architecture-compatible *network*.

    Returns the stored round counter.  Raises ``KeyError`` if the
    checkpoint misses a trainable edge of the network and ``ValueError``
    on shape mismatches.
    """
    groups = _kernel_groups(network)
    restored_kernels = set()
    with np.load(path) as data:
        for name, edge in network.edges.items():
            if hasattr(edge, "kernel"):
                key = _KERNEL + name
                if key not in data:
                    raise KeyError(f"checkpoint missing kernel for {name!r}")
                kernel = data[key]
                if kernel.shape != edge.kernel.array.shape:
                    raise ValueError(
                        f"kernel {name!r}: checkpoint shape {kernel.shape} "
                        f"!= network {edge.kernel.array.shape}")
                edge.kernel.array[...] = kernel
                kid = id(edge.kernel)
                if kid not in restored_kernels:
                    restored_kernels.add(kid)
                    members = groups[kid]
                    vkey = _KERNEL_VELOCITY + members[0]
                    if vkey in data:
                        edge.kernel.state.velocity = np.array(data[vkey])
                    else:
                        # Legacy checkpoints keyed the velocity under
                        # whichever sharing edge the saver visited
                        # first; scan every member.
                        for member in members:
                            legacy = _LEGACY_VELOCITY + member
                            if legacy in data:
                                edge.kernel.state.velocity = np.array(
                                    data[legacy])
                                break
            if hasattr(edge, "bias"):
                key = _BIAS + name
                if key not in data:
                    raise KeyError(f"checkpoint missing bias for {name!r}")
                edge.bias = float(data[key])
                for vkey in (_BIAS_VELOCITY + name, _LEGACY_VELOCITY + name):
                    if vkey in data:
                        edge.state.velocity = float(data[vkey])
                        break
        rounds = int(data[_META][0]) if _META in data else 0
    network.rounds = rounds
    return rounds


def latest_checkpoint(directory) -> Optional[str]:
    """Path of the newest ``.npz`` checkpoint in *directory*, by the
    round number embedded in the filename (``ckpt-00000042.npz``) with
    modification time as tiebreaker; None when there is none."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return None
    entries = []
    for fname in os.listdir(directory):
        if not fname.endswith(".npz"):
            continue
        full = os.path.join(directory, fname)
        digits = re.findall(r"(\d+)", fname)
        round_no = int(digits[-1]) if digits else -1
        entries.append((round_no, os.path.getmtime(full), full))
    if not entries:
        return None
    return max(entries)[2]


def load_latest_checkpoint(network: Network, directory) -> Optional[str]:
    """Restore *network* from the newest checkpoint in *directory*.

    Returns the loaded checkpoint's path, or None when the directory
    holds no checkpoint (the network is left untouched).
    """
    path = latest_checkpoint(directory)
    if path is None:
        return None
    load_network(network, path)
    return path
