"""Stochastic gradient descent (Section III, step 5).

The paper's update is plain SGD — ``params -= eta * G`` (Algorithm 3,
line 2) with a per-edge learning rate ``e.eta``.  We keep that exact
form as the default and add the two standard extensions shipped with
the ZNN release: momentum and weight decay.

The optimizer is stateless across parameters: per-parameter state
(momentum velocity) is held in an :class:`UpdateState` owned by the
edge, so edges can be updated concurrently without sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["SGD", "UpdateState"]


@dataclass
class UpdateState:
    """Per-parameter optimizer state (the momentum velocity buffer)."""

    velocity: Optional[np.ndarray] = None


@dataclass(frozen=True)
class SGD:
    """SGD with optional momentum and weight decay.

    ``v = momentum * v - eta * (G + weight_decay * W);  W += v``

    With ``momentum == 0`` and ``weight_decay == 0`` this reduces to the
    paper's ``W -= eta * G`` without allocating a velocity buffer.
    """

    learning_rate: float = 0.01
    momentum: float = 0.0
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate < 0:
            raise ValueError(
                f"learning_rate must be >= 0, got {self.learning_rate}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")

    def update(self, params: np.ndarray, gradient: np.ndarray,
               state: UpdateState, eta: Optional[float] = None) -> None:
        """Apply one in-place update; *eta* overrides the global rate
        (the paper's per-edge learning-rate parameter)."""
        lr = self.learning_rate if eta is None else float(eta)
        grad = gradient
        if self.weight_decay:
            grad = grad + self.weight_decay * params
        if self.momentum:
            if state.velocity is None:
                state.velocity = np.zeros_like(params)
            state.velocity *= self.momentum
            state.velocity -= lr * grad
            params += state.velocity
        else:
            params -= lr * grad

    def update_scalar(self, value: float, gradient: float,
                      state: UpdateState, eta: Optional[float] = None) -> float:
        """Scalar variant for biases; returns the new value."""
        lr = self.learning_rate if eta is None else float(eta)
        grad = gradient + self.weight_decay * value
        if self.momentum:
            vel = state.velocity if isinstance(state.velocity, float) else 0.0
            vel = self.momentum * vel - lr * grad
            state.velocity = vel  # type: ignore[assignment]
            return value + vel
        return value - lr * grad
