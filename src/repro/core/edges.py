"""Runtime edge types: the forward/backward/update transforms.

One class per computation-graph edge kind.  Each edge exposes:

* ``forward(image)`` — the FORWARD-TRANSFORM of Algorithm 1, returning
  the contribution to the destination node's forward sum (a spatial
  image or, in FFT mode feeding a spectral-domain node, a half
  spectrum);
* ``backward(grad)`` — the BACKWARD-TRANSFORM of Algorithm 2;
* ``capture_update()`` — called during the backward task of a trainable
  edge: snapshots the images/spectra the gradient needs (Algorithm 2
  lines 3–4 pass them into CREATE-TASK) and returns the zero-argument
  update closure (Algorithm 3's COMPUTE-GRADIENT + parameter step).
  The closure owns its inputs, so the update can be deferred across the
  round boundary and FORCEd by the next forward pass without hazard.

Convolution edges run in ``direct`` or ``fft`` mode.  FFT mode pulls
image/gradient/kernel spectra through the network-wide
:class:`repro.tensor.TransformCache`, realising the memoization column
of Table II; kernels may be *shared* between edges
(:class:`SharedKernel`) for scale-invariant multi-scale networks, in
which case the parameter step runs under the kernel's lock.

FFT mode **degrades gracefully** (see ``docs/robustness.md``): the
first FFT failure on an edge permanently flips that edge to direct
convolution (``resilience.fft_fallback`` counter, a warning, and the
edge's ``on_degrade`` callback so the network can record the new mode
in its autotune state).  When the neighbouring node sums contributions
in the spectral domain, the fallback result is wrapped with a forward
transform — exact by linearity, since the node's finaliser is inverse
transform + head crop.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable, Optional

import numpy as np

from repro.core.nodes import RuntimeNode
from repro.core.optimizer import SGD, UpdateState
from repro.graph.computation_graph import EdgeSpec
from repro.tensor.conv_direct import (
    conv_backward_input,
    conv_kernel_gradient,
    correlate_valid,
)
from repro.observability.metrics import get_registry
from repro.observability.profile import get_profiler
from repro.observability.tracing import flight_dump, flight_note
from repro.tensor.conv_fft import FftConvPlan
from repro.tensor.fft_cache import TransformCache
from repro.tensor.fourier import forward_transform
from repro.tensor.filtering import max_filter_backward, max_filter_forward
from repro.tensor.pooling import max_pool_backward, max_pool_forward
from repro.tensor.transfer import get_transfer
from repro.utils.rng import kernel_init

__all__ = [
    "RuntimeEdge",
    "SharedKernel",
    "ConvEdge",
    "TransferEdge",
    "MaxPoolEdge",
    "MaxFilterEdge",
    "DropoutEdge",
    "CustomEdge",
    "make_runtime_edge",
]


class SharedKernel:
    """A kernel parameter, possibly shared by several conv edges.

    Sharing is how ZNN expresses scale-invariant convolutions: the same
    weights applied at several sparsities.  Updates from different
    edges may race, so the parameter step runs under ``lock``.
    """

    __slots__ = ("array", "state", "lock", "eta")

    def __init__(self, array: np.ndarray, eta: Optional[float] = None) -> None:
        self.array = np.asarray(array, dtype=np.float64)
        self.state = UpdateState()
        self.lock = threading.Lock()
        self.eta = eta


class RuntimeEdge:
    """Base runtime edge; subclasses implement the three transforms."""

    is_trainable = False
    mode = "n/a"
    plan: Optional[FftConvPlan] = None

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode) -> None:
        self.spec = spec
        self.src = src
        self.dst = dst
        self.fwd_priority = 0
        self.bwd_priority = 0
        #: Last round's update task (None until first backward) — the
        #: task the FORCE protocol targets.
        self.update_task = None

    @property
    def name(self) -> str:
        return self.spec.name

    def forward(self, image: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def capture_update(self, optimizer: SGD) -> Optional[Callable[[], None]]:
        """Snapshot gradient inputs and return the update closure
        (None for non-trainable edges)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class ConvEdge(RuntimeEdge):
    """Sparse valid convolution with a trainable kernel (Section II)."""

    is_trainable = True

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode,
                 kernel: SharedKernel, mode: str = "direct",
                 cache: Optional[TransformCache] = None,
                 fast_sizes: bool = False) -> None:
        super().__init__(spec, src, dst)
        if mode not in ("direct", "fft"):
            raise ValueError(f"conv mode must be direct|fft, got {mode!r}")
        self.kernel = kernel
        self.mode = mode
        self.sparsity = spec.sparsity
        self.cache = cache if cache is not None else TransformCache(enabled=False)
        self.plan = FftConvPlan(src.shape, spec.kernel, spec.sparsity,
                                fast_sizes=fast_sizes) \
            if mode == "fft" else None
        #: False once an FFT failure degraded this edge to direct
        #: convolution (the plan is kept: neighbouring spectral-domain
        #: nodes still finalize through it).
        self.fft_ok = True
        #: Called with this edge on first degradation (Network records
        #: the effective mode in its autotune state).
        self.on_degrade: Optional[Callable[["ConvEdge"], None]] = None

    def _degrade(self, exc: BaseException) -> None:
        """Flip this edge to direct convolution after an FFT failure."""
        self.fft_ok = False
        get_registry().counter("resilience.fft_fallback").inc()
        flight_note("FFT degradation", edge=self.name,
                    error=f"{type(exc).__name__}: {exc}")
        flight_dump(f"fft-degraded-{self.name}")
        warnings.warn(
            f"FFT convolution failed on edge {self.name!r} "
            f"({type(exc).__name__}: {exc}); falling back to direct "
            "convolution for the rest of the run", RuntimeWarning,
            stacklevel=3)
        if self.on_degrade is not None:
            self.on_degrade(self)

    @property
    def effective_mode(self) -> str:
        """The mode actually executing: ``mode`` unless degraded."""
        return "direct" if self.mode == "direct" or not self.fft_ok \
            else "fft"

    # -- spectra (FFT mode) -------------------------------------------------

    def _image_spectrum(self, image: np.ndarray) -> np.ndarray:
        return self.cache.get_or_compute(
            "img", self.src.name, lambda: self.plan.image_spectrum(image))

    def _grad_spectrum(self, grad: np.ndarray) -> np.ndarray:
        return self.cache.get_or_compute(
            "grad", self.dst.name, lambda: self.plan.grad_spectrum(grad))

    def _kernel_spectrum(self) -> np.ndarray:
        return self.cache.get_or_compute(
            "ker", self.name, lambda: self.plan.kernel_spectrum(self.kernel.array))

    # -- profiled entry points ------------------------------------------------
    # Thin timing brackets around the real transforms; the disabled
    # profiler costs one attribute read (docs/observability.md
    # "Cost model").

    def forward(self, image: np.ndarray) -> np.ndarray:
        profiler = get_profiler()
        if not profiler.enabled:
            return self._forward(image)
        t0 = time.monotonic()
        try:
            return self._forward(image)
        finally:
            profiler.record_conv(self.name, self.effective_mode, "fwd",
                                 time.monotonic() - t0, self.src.shape,
                                 self.spec.kernel, self.sparsity)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        profiler = get_profiler()
        if not profiler.enabled:
            return self._backward(grad)
        t0 = time.monotonic()
        try:
            return self._backward(grad)
        finally:
            profiler.record_conv(self.name, self.effective_mode, "bwd",
                                 time.monotonic() - t0, self.src.shape,
                                 self.spec.kernel, self.sparsity)

    def capture_update(self, optimizer: SGD) -> Callable[[], None]:
        update = self._capture_update(optimizer)

        def profiled_update() -> None:
            profiler = get_profiler()
            if not profiler.enabled:
                update()
                return
            t0 = time.monotonic()
            try:
                update()
            finally:
                profiler.record_conv(
                    self.name, self.effective_mode, "upd",
                    time.monotonic() - t0, self.src.shape,
                    self.spec.kernel, self.sparsity)
        return profiled_update

    # -- transforms -----------------------------------------------------------

    def _forward(self, image: np.ndarray) -> np.ndarray:
        if self.mode == "fft" and self.fft_ok:
            try:
                product = self.plan.forward_product(
                    self._image_spectrum(image), self._kernel_spectrum())
                if self.dst.forward_domain == "spectral":
                    return product
                return self.plan.finalize_forward(product)
            except Exception as exc:
                self._degrade(exc)
        result = correlate_valid(image, self.kernel.array, self.sparsity)
        if self.mode == "fft" and self.dst.forward_domain == "spectral":
            # The node sums spectra; contribute the exact spectrum of
            # the direct result (finalize = inverse + head crop undoes
            # the zero padding).
            return forward_transform(result, self.plan.transform_shape)
        return result

    def _backward(self, grad: np.ndarray) -> np.ndarray:
        if self.mode == "fft" and self.fft_ok:
            try:
                product = self.plan.backward_product(
                    self._grad_spectrum(grad), self._kernel_spectrum())
                if self.src.backward_domain == "spectral":
                    return product
                return self.plan.finalize_backward(product)
            except Exception as exc:
                self._degrade(exc)
        result = conv_backward_input(grad, self.kernel.array, self.sparsity)
        if self.mode == "fft" and self.src.backward_domain == "spectral":
            return forward_transform(result, self.plan.transform_shape)
        return result

    def _capture_update(self, optimizer: SGD) -> Callable[[], None]:
        kernel = self.kernel
        image = self.src.fwd_image
        grad = self.dst.bwd_image
        sparsity = self.sparsity
        if self.mode == "fft" and self.fft_ok:
            try:
                # Memoized spectra: both exist in this round's cache
                # (the forward pass computed FI, this backward pass
                # computed FdO).
                plan = self.plan
                image_spec = self._image_spectrum(image)
                grad_spec = self._grad_spectrum(grad)

                def update() -> None:
                    try:
                        g = plan.finalize_update(
                            plan.update_product(image_spec, grad_spec))
                    except Exception as exc:
                        self._degrade(exc)
                        g = conv_kernel_gradient(image, grad, sparsity)
                    with kernel.lock:
                        optimizer.update(kernel.array, g, kernel.state,
                                         kernel.eta)
                return update
            except Exception as exc:
                self._degrade(exc)

        def update() -> None:
            g = conv_kernel_gradient(image, grad, sparsity)
            with kernel.lock:
                optimizer.update(kernel.array, g, kernel.state, kernel.eta)
        return update


class TransferEdge(RuntimeEdge):
    """Bias + nonlinearity; the bias is the edge's trainable parameter."""

    is_trainable = True

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode,
                 bias: float = 0.0, eta: Optional[float] = None) -> None:
        super().__init__(spec, src, dst)
        self.fn = get_transfer(spec.transfer)
        self.bias = float(bias)
        self.eta = eta
        self.state = UpdateState()
        self._bias_gradient = 0.0

    def forward(self, image: np.ndarray) -> np.ndarray:
        return self.fn.apply(image, self.bias)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # The forward output of this edge is the destination image.
        out = self.fn.backward(grad, self.dst.fwd_image)
        # Bias gradient: sum of the backward image this edge produces
        # (Section III-B "Bias update").
        self._bias_gradient = float(np.sum(out))
        return out

    def capture_update(self, optimizer: SGD) -> Callable[[], None]:
        gradient = self._bias_gradient

        def update() -> None:
            self.bias = optimizer.update_scalar(self.bias, gradient,
                                                self.state, self.eta)
        return update


class MaxPoolEdge(RuntimeEdge):
    """Max-pooling: n^3 -> (n/p)^3 with winner routing for the Jacobian."""

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode) -> None:
        super().__init__(spec, src, dst)
        self.window = spec.window
        self._argmax: Optional[np.ndarray] = None

    def forward(self, image: np.ndarray) -> np.ndarray:
        pooled, self._argmax = max_pool_forward(image, self.window)
        return pooled

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError(f"backward before forward on {self.name!r}")
        return max_pool_backward(grad, self._argmax, self.window)


class MaxFilterEdge(RuntimeEdge):
    """Sparse max-filtering (resolution-preserving; Fig 2)."""

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode) -> None:
        super().__init__(spec, src, dst)
        self.window = spec.window
        self.sparsity = spec.sparsity
        self._argmax: Optional[np.ndarray] = None

    def forward(self, image: np.ndarray) -> np.ndarray:
        filtered, self._argmax = max_filter_forward(image, self.window,
                                                    self.sparsity)
        return filtered

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError(f"backward before forward on {self.name!r}")
        return max_filter_backward(grad, self._argmax, self.src.shape)


class DropoutEdge(RuntimeEdge):
    """Inverted dropout (the ZNN-repository extension [25]).

    At train time voxels are zeroed with probability ``rate`` and the
    survivors scaled by ``1/(1-rate)``; at inference the edge is the
    identity.  The mask is resampled per round and reused by the
    Jacobian.
    """

    def __init__(self, spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode,
                 rng: np.random.Generator) -> None:
        super().__init__(spec, src, dst)
        if not 0.0 <= spec.rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {spec.rate}")
        self.rate = spec.rate
        self.rng = rng
        self.training = True
        self._mask: Optional[np.ndarray] = None

    def forward(self, image: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return image + 0.0
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(image.shape) < keep) / keep
        return image * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad + 0.0
        return grad * self._mask


class CustomEdge(RuntimeEdge):
    """A user-registered operation (Section XI extensibility).

    The op's serial forward/backward functions run inside ordinary
    tasks; a per-edge ``state`` dict carries whatever the forward needs
    to hand its Jacobian (masks, winner positions, ...), reset each
    forward call.
    """

    def __init__(self, spec: EdgeSpec, src: RuntimeNode,
                 dst: RuntimeNode) -> None:
        super().__init__(spec, src, dst)
        from repro.core.custom import get_custom_op
        self.op = get_custom_op(spec.op)
        self.state: dict = {}
        self._input: Optional[np.ndarray] = None
        self._output: Optional[np.ndarray] = None

    def forward(self, image: np.ndarray) -> np.ndarray:
        self.state = {}
        self._input = image
        self._output = self.op.forward(image, self.state)
        if self._output.shape != self.dst.shape:
            raise ValueError(
                f"custom op {self.op.name!r} produced shape "
                f"{self._output.shape}, expected {self.dst.shape}")
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError(f"backward before forward on {self.name!r}")
        return self.op.backward(grad, self._input, self._output, self.state)


def make_runtime_edge(spec: EdgeSpec, src: RuntimeNode, dst: RuntimeNode,
                      mode: str = "direct",
                      cache: Optional[TransformCache] = None,
                      rng: Optional[np.random.Generator] = None,
                      kernel: Optional[SharedKernel] = None,
                      fast_sizes: bool = False) -> RuntimeEdge:
    """Factory: build the runtime edge for *spec*.

    For conv edges a fresh He-initialised :class:`SharedKernel` is
    created unless *kernel* is provided (weight sharing).
    """
    if spec.kind == "conv":
        if kernel is None:
            if rng is None:
                rng = np.random.default_rng()
            fan_in = int(np.prod(spec.kernel)) * max(len(dst.spec.in_edges), 1)
            kernel = SharedKernel(kernel_init(rng, spec.kernel, fan_in))
        return ConvEdge(spec, src, dst, kernel, mode=mode, cache=cache,
                        fast_sizes=fast_sizes)
    if spec.kind == "transfer":
        return TransferEdge(spec, src, dst)
    if spec.kind == "pool":
        return MaxPoolEdge(spec, src, dst)
    if spec.kind == "filter":
        return MaxFilterEdge(spec, src, dst)
    if spec.kind == "dropout":
        if rng is None:
            rng = np.random.default_rng()
        return DropoutEdge(spec, src, dst, rng)
    if spec.kind == "custom":
        return CustomEdge(spec, src, dst)
    raise ValueError(f"unknown edge kind {spec.kind!r}")
