"""Core library: the paper's contribution — task-parallel ConvNet
training with direct/FFT autotuned convolution, FFT memoization,
priority scheduling, wait-free summation and dense-output inference."""

from repro.core.autotune import (
    autotune_graph,
    autotune_layer,
    crossover_kernel_size,
    layer_crossover_kernel_size,
    time_direct,
    time_fft,
)
from repro.core.custom import (
    CustomOp,
    get_custom_op,
    register_custom_op,
    registered_custom_ops,
    unregister_custom_op,
)
from repro.core.gradcheck import GradCheckReport, check_gradients
from repro.core.edges import (
    ConvEdge,
    CustomEdge,
    DropoutEdge,
    MaxFilterEdge,
    MaxPoolEdge,
    RuntimeEdge,
    SharedKernel,
    TransferEdge,
    make_runtime_edge,
)
from repro.core.inference import (
    copy_parameters,
    dense_equivalent_network,
    dense_network_field_of_view,
    pooling_period,
    sliding_window_forward,
    sparse_lattice,
)
from repro.core.loss import (
    BinaryLogisticLoss,
    EuclideanLoss,
    Loss,
    SoftmaxCrossEntropyLoss,
    get_loss,
)
from repro.core.multiscale import (
    branch_edge_names,
    build_multiscale_graph,
    make_scale_invariant,
)
from repro.core.network import Network
from repro.core.nodes import RuntimeNode
from repro.core.optimizer import SGD, UpdateState
from repro.core.serialization import (
    checkpoint_digest,
    latest_checkpoint,
    load_latest_checkpoint,
    load_network,
    network_state,
    save_network,
    state_digest,
)
from repro.core.tiling import field_of_view_of, tile_plan, tiled_forward
from repro.core.training import (
    DataProvider,
    Sample,
    Trainer,
    TrainingDiverged,
    TrainingReport,
    measure_seconds_per_update,
)

__all__ = [
    "autotune_graph",
    "autotune_layer",
    "crossover_kernel_size",
    "layer_crossover_kernel_size",
    "time_direct",
    "time_fft",
    "GradCheckReport",
    "check_gradients",
    "CustomOp",
    "get_custom_op",
    "register_custom_op",
    "registered_custom_ops",
    "unregister_custom_op",
    "ConvEdge",
    "CustomEdge",
    "DropoutEdge",
    "MaxFilterEdge",
    "MaxPoolEdge",
    "RuntimeEdge",
    "SharedKernel",
    "TransferEdge",
    "make_runtime_edge",
    "copy_parameters",
    "dense_equivalent_network",
    "dense_network_field_of_view",
    "pooling_period",
    "sliding_window_forward",
    "sparse_lattice",
    "BinaryLogisticLoss",
    "EuclideanLoss",
    "Loss",
    "SoftmaxCrossEntropyLoss",
    "get_loss",
    "branch_edge_names",
    "build_multiscale_graph",
    "make_scale_invariant",
    "Network",
    "RuntimeNode",
    "SGD",
    "UpdateState",
    "checkpoint_digest",
    "latest_checkpoint",
    "load_latest_checkpoint",
    "load_network",
    "network_state",
    "save_network",
    "state_digest",
    "field_of_view_of",
    "tile_plan",
    "tiled_forward",
    "DataProvider",
    "Sample",
    "Trainer",
    "TrainingDiverged",
    "TrainingReport",
    "measure_seconds_per_update",
]
