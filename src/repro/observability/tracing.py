"""Hierarchical, request-scoped tracing with context propagation.

The flat per-task records of :class:`repro.scheduler.TraceRecorder`
answer "what did each worker run when", but the open ROADMAP items
(per-layer algorithm selection, autoscaling) need *causal* structure:
which request did a conv task belong to, how long did the request wait
in admission before its first tile ran, which training round produced
this worker's gradient pass.  This module provides that structure:

* :class:`Span` — one named interval with a ``trace_id`` (the request /
  round it belongs to), a ``span_id``, and a ``parent_id`` forming a
  tree;
* :class:`SpanContext` — the picklable ``(trace_id, span_id)`` pair
  that crosses thread, engine-task and process boundaries.  A task
  captures the creating thread's context at construction time; a
  spawned worker process receives the coordinator's context in the
  round message and ships its spans back over the pipe;
* :class:`Tracer` — the process-global span sink: a bounded ring
  buffer, a thread-local context stack, and exporters (Chrome trace,
  span-tree text view, per-process trace files that merge onto a
  shared timeline);
* :class:`FlightRecorder` — a small always-cheap ring of the most
  recent spans and notes, dumped to disk when something goes wrong
  (task failure, FFT degradation, worker death) so the moments *before*
  a crash are inspectable after it.

Tracing is **off by default**: every entry point checks
``tracer.enabled`` first, so the disabled fast path is one attribute
read and a branch (budgeted at <=5% overhead in CI's trace-smoke
lane).  Enable with ``REPRO_TRACING=1`` or ``get_tracer().enable()``.

Timestamps are *epoch-aligned monotonic*: each process captures one
``(wall, monotonic)`` origin pair and records spans at
``wall_origin + (monotonic() - mono_origin)``.  Within a process that
clock never goes backwards; across processes on one host the traces
align to wall-clock accuracy, which is what lets ``repro trace
--merge`` place coordinator and worker spans on one timeline.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.runtime import make_lock
from repro.observability.metrics import get_registry

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "FlightRecorder",
    "get_tracer",
    "set_tracer",
    "current_context",
    "get_flight_recorder",
    "flight_note",
    "flight_dump",
    "spans_to_chrome_trace",
    "render_span_tree",
    "write_trace_file",
    "read_trace_file",
    "merge_trace_files",
]

#: Schema tag of per-process trace files (``write_trace_file``).
TRACE_SCHEMA = "repro.trace/v1"

#: Default ring-buffer capacity of the tracer (spans) and flight
#: recorder (events).  Spans beyond the cap evict the oldest —
#: ``tracing.dropped`` counts them.
DEFAULT_MAX_SPANS = 100_000
DEFAULT_FLIGHT_EVENTS = 512


class SpanContext(NamedTuple):
    """The propagatable identity of a span: ``(trace_id, span_id)``.

    Plain strings, so a context pickles across the spawn boundary and
    serialises into HTTP headers (``X-Trace-Id``).
    """

    trace_id: str
    span_id: str


@dataclass(slots=True)
class Span:
    """One recorded interval in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    category: str
    start: float
    end: float
    #: Which process recorded the span ("coordinator", "worker-1",
    #: "serve", ...) — the stable pid axis of merged Chrome traces.
    process: str
    #: Native thread id within the recording process.
    thread: int
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "process": self.process,
            "thread": self.thread,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload["name"]),
            category=str(payload.get("category", "")),
            start=float(payload["start"]),
            end=float(payload["end"]),
            process=str(payload.get("process", "unknown")),
            thread=int(payload.get("thread", 0)),
            status=str(payload.get("status", "ok")),
            attrs=dict(payload.get("attrs", {})),
        )


class _ActiveSpan:
    """Handle for an in-flight span opened by :meth:`Tracer.span`.

    Usable as a context manager; ``set`` attaches attributes and
    ``fail`` marks the error status before the span closes.
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "category", "start", "attrs", "status", "end",
                 "process", "thread")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, category: str,
                 attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = time.monotonic() + tracer._offset
        self.attrs = attrs
        self.status = "ok"

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    # Once closed (end/process/thread filled in by Tracer._finish) the
    # handle itself is the stored record; readers materialise a Span
    # lazily so the close path builds no second object.

    def to_span(self) -> Span:
        return Span(self.trace_id, self.span_id, self.parent_id,
                    self.name, self.category, self.start, self.end,
                    self.process, self.thread, self.status, self.attrs)

    def to_dict(self) -> dict:
        return self.to_span().to_dict()

    def set(self, **attrs: object) -> "_ActiveSpan":
        self.attrs.update(attrs)
        return self

    def fail(self, status: str = "error") -> None:
        self.status = status

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)


class _NoopSpan:
    """The disabled-tracer stand-in: absorbs the whole span API."""

    __slots__ = ()

    context: Optional[SpanContext] = None
    span_id = ""
    trace_id = ""

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def fail(self, status: str = "error") -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _RemoteParent:
    """Context-stack entry adopting a foreign :class:`SpanContext`
    (a request accepted on another thread, a coordinator round in a
    worker process) as the parent of subsequently opened spans."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, ctx: SpanContext) -> None:
        self.trace_id = ctx.trace_id
        self.span_id = ctx.span_id

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)


class _Activation:
    """Context manager produced by :meth:`Tracer.activate`."""

    __slots__ = ("_tracer", "_entry")

    def __init__(self, tracer: "Tracer",
                 entry: Optional[_RemoteParent]) -> None:
        self._tracer = tracer
        self._entry = entry

    def __enter__(self) -> "_Activation":
        if self._entry is not None:
            self._tracer._push(self._entry)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._entry is not None:
            self._tracer._pop(self._entry)


class Tracer:
    """Process-global span collector with a thread-local context stack.

    Every mutation is gated on :attr:`enabled`; a disabled tracer costs
    one branch per instrumentation site.  Spans are kept in a bounded
    ring (oldest evicted, counted by ``tracing.dropped``), so tracing a
    long-lived server cannot grow without bound.
    """

    def __init__(self, enabled: Optional[bool] = None,
                 process: Optional[str] = None,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_TRACING", "0").lower() in (
                "1", "true", "on", "yes")
        self.enabled = bool(enabled)
        self.process = process if process is not None \
            else f"pid-{os.getpid()}"
        self._lock = make_lock("observability.tracer")
        self._spans: Deque[Span] = deque(maxlen=max_spans)  # guarded-by: _lock
        self._tls = threading.local()
        self._ids = itertools.count(1)
        # Epoch-aligned monotonic origin (see module docstring).
        self._origin_wall = time.time()
        self._origin_mono = time.monotonic()
        self._offset = self._origin_wall - self._origin_mono
        # Id pieces precomputed once: id generation is on the per-span
        # hot path.
        self._trace_id_fix = (
            f"t-{os.getpid():x}-",
            f"-{int(self._origin_wall * 1e3) & 0xffffff:x}")
        self._span_id_prefix = self.process + ":"
        reg = get_registry()
        self._m_spans = reg.counter("tracing.spans")
        self._m_dropped = reg.counter("tracing.dropped")
        # Hot-path tallies; folded into the counters by _sync_metrics
        # so recording a span never touches the metrics registry.
        self._recorded = 0    # guarded-by: _lock
        self._dropped = 0     # guarded-by: _lock
        self._synced = 0
        self._synced_dropped = 0
        self.flight: Optional[FlightRecorder] = None

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def set_process(self, label: str) -> None:
        """Relabel this process ("coordinator", "worker-3", ...)."""
        self.process = str(label)
        self._span_id_prefix = self.process + ":"

    def clear(self) -> None:
        self._sync_metrics()
        with self._lock:
            self._spans.clear()

    # -- time ----------------------------------------------------------

    def now(self) -> float:
        """The tracer clock: epoch-aligned monotonic seconds."""
        return time.monotonic() + self._offset

    def from_monotonic(self, t: float) -> float:
        """Map a raw ``time.monotonic()`` stamp onto the tracer clock."""
        return t + self._offset

    # -- context stack -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, entry) -> None:
        self._stack().append(entry)

    def _pop(self, entry) -> None:
        stack = self._stack()
        if stack and stack[-1] is entry:
            stack.pop()
            if entry.__class__ is _ActiveSpan:
                self._finish(entry)
            return
        # Unbalanced exit (a span closed out of order) — drop down to
        # the entry, finishing any skipped active spans so nothing
        # leaks.
        while stack:
            top = stack.pop()
            if top.__class__ is _ActiveSpan:
                self._finish(top)
            if top is entry:
                return

    def current_context(self) -> Optional[SpanContext]:
        """The active span/parent context on this thread, or None."""
        if not self.enabled:
            return None
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return None
        return stack[-1].context

    def activate(self, ctx: Optional[SpanContext]) -> _Activation:
        """Adopt *ctx* (e.g. a pickled remote parent) as the current
        context for the duration of the returned context manager."""
        if not self.enabled or ctx is None:
            return _Activation(self, None)
        return _Activation(self, _RemoteParent(SpanContext(*ctx)))

    # -- span creation -------------------------------------------------

    def new_trace_id(self) -> str:
        """A fresh trace id, unique across processes on this host."""
        head, tail = self._trace_id_fix
        return head + format(next(self._ids), "x") + tail

    def _new_span_id(self) -> str:
        return self._span_id_prefix + str(next(self._ids))

    def span(self, name: str, category: str = "",
             parent: Optional[SpanContext] = None,
             trace_id: Optional[str] = None, **attrs: object):
        """Open a span as a context manager.

        The parent defaults to the thread's current context; with no
        parent and no *trace_id* a fresh trace is started (the span is
        a root).
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is None:
            # Inlined current_context(): stack entries (_ActiveSpan /
            # _RemoteParent) expose trace_id/span_id directly, so the
            # hot path skips building an intermediate SpanContext.
            stack = getattr(self._tls, "stack", None)
            if stack:
                parent = stack[-1]
        if parent is not None:
            tid = parent.trace_id if trace_id is None else trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            tid = trace_id if trace_id is not None else self.new_trace_id()
            parent_id = None
        # **attrs is already a fresh dict owned by this call.
        return _ActiveSpan(self, tid, self._new_span_id(), parent_id,
                           name, category, attrs)

    def task_span(self, task, worker: Optional[int] = None):
        """The engine hook: a span for one scheduler task, parented on
        the context captured when the task was created."""
        if not self.enabled:
            return _NOOP_SPAN
        ctx = getattr(task, "span_context", None)
        name = task.name or "(anonymous)"
        category = name.partition(":")[0] or "task"
        if worker is None:
            return self.span(name, category=category, parent=ctx)
        return self.span(name, category=category, parent=ctx,
                         worker=worker)

    def record(self, name: str, start: float, end: float,
               category: str = "",
               parent: Optional[SpanContext] = None,
               trace_id: Optional[str] = None,
               context: Optional[SpanContext] = None,
               status: str = "ok", **attrs: object
               ) -> Optional[SpanContext]:
        """Record a completed span directly (for intervals measured
        outside the context-manager discipline, e.g. a request's
        admission wait, whose start and end happen on different
        threads).  *start*/*end* are tracer-clock seconds
        (:meth:`now` / :meth:`from_monotonic`)."""
        if not self.enabled:
            return None
        if context is not None:
            tid, span_id = context
        else:
            tid = trace_id
            if tid is None:
                tid = (parent.trace_id if parent is not None
                       else self.new_trace_id())
            span_id = self._new_span_id()
        span = Span(trace_id=tid, span_id=span_id,
                    parent_id=parent.span_id if parent is not None else None,
                    name=name, category=category, start=float(start),
                    end=float(end), process=self.process,
                    thread=threading.get_ident(), status=status,
                    attrs=attrs)
        self._store(span)
        return SpanContext(tid, span_id)

    def make_context(self, trace_id: Optional[str] = None) -> SpanContext:
        """Allocate a context (e.g. a request root) whose span body
        will be recorded later via ``record(context=...)``."""
        tid = trace_id if trace_id else self.new_trace_id()
        return SpanContext(tid, self._new_span_id())

    def _finish(self, active: _ActiveSpan) -> None:
        active.end = time.monotonic() + self._offset
        active.process = self.process
        active.thread = threading.get_ident()
        self._store(active)

    def _store(self, span) -> None:
        # *span* is a closed _ActiveSpan (hot path) or a Span
        # (record()); both expose the same fields and to_dict().
        spans = self._spans
        with self._lock:
            if len(spans) == spans.maxlen:
                self._dropped += 1
            spans.append(span)
            self._recorded += 1
        flight = self.flight
        if flight is not None:
            flight.record_span(span)

    def _sync_metrics(self) -> None:
        """Fold the hot-path span/drop tallies into the registry
        counters.  Runs on every read-side API (and as a registry read
        hook), so snapshots stay accurate while recording a span never
        touches the metrics registry."""
        with self._lock:
            d_spans = self._recorded - self._synced
            d_dropped = self._dropped - self._synced_dropped
            self._synced = self._recorded
            self._synced_dropped = self._dropped
        if d_spans:
            self._m_spans.inc(d_spans)
        if d_dropped:
            self._m_dropped.inc(d_dropped)

    # -- ingestion / export --------------------------------------------

    def ingest(self, payloads: Iterable[dict],
               process: Optional[str] = None) -> int:
        """Adopt foreign spans (shipped from a worker process or read
        from a trace file); returns the count ingested."""
        count = 0
        spans = []
        for payload in payloads:
            span = Span.from_dict(payload)
            if process is not None:
                span.process = process
            spans.append(span)
            count += 1
        with self._lock:
            self._spans.extend(spans)
        return count

    def spans(self) -> List[Span]:
        self._sync_metrics()
        with self._lock:
            raw = list(self._spans)
        return [s if s.__class__ is Span else s.to_span() for s in raw]

    def drain(self) -> List[dict]:
        """Remove and return all buffered spans as dicts (the worker →
        coordinator shipping payload)."""
        self._sync_metrics()
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return [s.to_dict() for s in spans]

    def __len__(self) -> int:
        self._sync_metrics()
        with self._lock:
            return len(self._spans)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of recent spans and notes, dumped on trouble.

    The recorder is cheap enough to leave on whenever tracing is on
    (one deque append per completed span).  :meth:`dump` writes the
    ring plus a metrics snapshot; :func:`flight_dump` is the trigger
    hook instrumented subsystems call on crash/degradation — it writes
    into ``REPRO_FLIGHT_DIR`` when that is set and is a no-op
    otherwise, so production opt-in is one environment variable.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_EVENTS) -> None:
        # deque appends are atomic under the GIL; no lock needed on the
        # hot path.
        self._events: Deque[dict] = deque(maxlen=capacity)
        self._dump_lock = make_lock("observability.flight")
        self.dumps = 0

    def record_span(self, span) -> None:
        # Raw span record (Span or closed _ActiveSpan); serialised
        # lazily in events()/dump() so the per-span hot path is one
        # deque append, no dict building.
        self._events.append(span)

    def note(self, message: str, **attrs: object) -> None:
        self._events.append({"kind": "note", "time": time.time(),
                             "message": str(message), "attrs": attrs})

    def events(self) -> List[dict]:
        return [e if isinstance(e, dict)
                else {"kind": "span", **e.to_dict()}
                for e in self._events]

    def clear(self) -> None:
        self._events.clear()

    def dump(self, path: str, reason: str = "manual") -> str:
        """Write the ring (plus a metrics snapshot) to *path*."""
        events = self.events()
        try:
            get_tracer()._sync_metrics()
            snapshot = get_registry().snapshot()
        except Exception:  # pragma: no cover - metrics must not block
            snapshot = {}
        doc = {
            "schema": "repro.flight/v1",
            "reason": reason,
            "time": time.time(),
            "process": get_tracer().process,
            "pid": os.getpid(),
            "events": events,
            "metrics": snapshot,
        }
        payload = json.dumps(doc)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
        with self._dump_lock:
            self.dumps += 1
        get_registry().counter("flight.dumps").inc()
        return path


# ---------------------------------------------------------------------------
# Process-global instances
# ---------------------------------------------------------------------------

_global_tracer = Tracer()
_global_flight = FlightRecorder()
_global_tracer.flight = _global_flight


def _sync_global_tracer_metrics() -> None:
    _global_tracer._sync_metrics()


# Fold deferred span tallies in whenever the registry is read, so
# exporters (snapshot, /metrics) see up-to-date tracing counters.
get_registry().add_read_hook(_sync_global_tracer_metrics)


def get_tracer() -> Tracer:
    """The process-global tracer instrumented code defaults to."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests); returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    if tracer.flight is None:
        tracer.flight = _global_flight
    _global_tracer = tracer
    return previous


def current_context() -> Optional[SpanContext]:
    """The calling thread's active span context (None when tracing is
    off or no span is open) — the one-liner task constructors use."""
    tracer = _global_tracer
    if not tracer.enabled:
        return None
    return tracer.current_context()


def get_flight_recorder() -> FlightRecorder:
    return _global_flight


def flight_note(message: str, **attrs: object) -> None:
    """Append a note to the flight ring (cheap; always available)."""
    _global_flight.note(message, **attrs)


def flight_dump(reason: str, directory: Optional[str] = None
                ) -> Optional[str]:
    """Crash/degradation trigger: dump the flight ring.

    Writes into *directory* or ``$REPRO_FLIGHT_DIR``; with neither set
    this is a no-op returning None (the production default — recording
    stays cheap, dumping is opt-in).
    """
    target = directory if directory is not None \
        else os.environ.get("REPRO_FLIGHT_DIR")
    if not target:
        return None
    safe = "".join(c if c.isalnum() or c in "-._" else "-"
                   for c in reason)[:80]
    path = os.path.join(
        target, f"flight-{os.getpid()}-{safe or 'event'}.json")
    try:
        return _global_flight.dump(path, reason=reason)
    except OSError:  # pragma: no cover - dump target unwritable
        return None


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _stable_pids(processes: Sequence[str]) -> Dict[str, int]:
    """Deterministic pid assignment for merged traces: the coordinator
    is pid 0, ``worker-N`` is pid N, anything else gets the next free
    pid in sorted order."""
    pids: Dict[str, int] = {}
    leftovers = []
    for process in sorted(set(processes)):
        if process in ("coordinator", "serve", "main"):
            pids[process] = 0
        elif process.startswith("worker-"):
            suffix = process.rsplit("-", 1)[-1]
            if suffix.isdigit():
                pids[process] = int(suffix)
            else:
                leftovers.append(process)
        else:
            leftovers.append(process)
    used = set(pids.values())
    next_pid = 0
    for process in leftovers:
        while next_pid in used:
            next_pid += 1
        pids[process] = next_pid
        used.add(next_pid)
    return pids


def spans_to_chrome_trace(spans: Sequence[Span]) -> dict:
    """Render spans as Chrome Trace Event JSON (complete events).

    One trace *process* per recording process (stable pids: see
    :func:`_stable_pids`), one trace *thread* per native thread, and
    trace/span/parent ids attached as args so the viewer's detail pane
    shows the causal identity of every slice.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(s.start for s in spans)
    pids = _stable_pids([s.process for s in spans])
    events: List[dict] = []
    for process, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": process}})
    threads: Dict[Tuple[str, int], int] = {}
    for span in spans:
        key = (span.process, span.thread)
        if key not in threads:
            tid = len([k for k in threads if k[0] == span.process])
            threads[key] = tid
            events.append({
                "name": "thread_name", "ph": "M",
                "pid": pids[span.process], "tid": tid,
                "args": {"name": f"{span.process}/t{tid}"}})
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "pid": pids[span.process],
            "tid": threads[(span.process, span.thread)],
            "ts": (span.start - t0) * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
                **span.attrs,
            },
        }
        if span.status != "ok":
            event["cname"] = "terrible"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_span_tree(spans: Sequence[Span],
                     trace_id: Optional[str] = None) -> str:
    """Text view of span trees — one indented block per trace.

    Orphans (parents evicted from the ring or recorded in a process
    whose spans were lost) are promoted to roots, so a tree is always
    printable."""
    selected = [s for s in spans
                if trace_id is None or s.trace_id == trace_id]
    if not selected:
        return "(no spans)"
    by_id = {s.span_id: s for s in selected}
    children: Dict[Optional[str], List[Span]] = {}
    roots: List[Span] = []
    for span in selected:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.trace_id, s.start, s.span_id))
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        status = "" if span.status == "ok" else f"  [{span.status}]"
        lines.append(
            f"{'  ' * depth}{span.name}  "
            f"{span.duration * 1e3:.2f}ms  "
            f"({span.process}){status}")
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    last_trace = None
    for root in roots:
        if root.trace_id != last_trace:
            lines.append(f"trace {root.trace_id}")
            last_trace = root.trace_id
        emit(root, 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-process trace files + merge
# ---------------------------------------------------------------------------


def write_trace_file(path: str, tracer: Optional[Tracer] = None,
                     spans: Optional[Sequence[Span]] = None) -> str:
    """Write one process's spans as a mergeable trace file."""
    if tracer is None:
        tracer = get_tracer()
    if spans is None:
        spans = tracer.spans()
    doc = {
        "schema": TRACE_SCHEMA,
        "process": tracer.process,
        "pid": os.getpid(),
        "origin_wall": tracer._origin_wall,
        "spans": [s.to_dict() for s in spans],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def read_trace_file(path: str) -> List[Span]:
    """Load the spans of one per-process trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: not a {TRACE_SCHEMA} trace file "
            f"(schema={doc.get('schema')!r})")
    default_process = str(doc.get("process", "unknown"))
    spans = []
    for payload in doc.get("spans", []):
        span = Span.from_dict(payload)
        if span.process == "unknown":
            span.process = default_process
        spans.append(span)
    return spans


def merge_trace_files(paths: Sequence[str],
                      out_path: Optional[str] = None) -> dict:
    """Merge per-process trace files into one Chrome trace.

    Span timestamps are already epoch-aligned per process (see the
    module docstring), so merging is concatenation onto the shared
    origin; pid/tid naming is stable (coordinator = 0, worker-N = N).
    Writes the Chrome JSON to *out_path* when given; returns the trace
    document either way.
    """
    spans: List[Span] = []
    for path in paths:
        spans.extend(read_trace_file(path))
    spans.sort(key=lambda s: (s.start, s.process, s.span_id))
    doc = spans_to_chrome_trace(spans)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    return doc
