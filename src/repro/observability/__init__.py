"""Unified observability: metrics registry + trace/snapshot exporters.

The measurement substrate behind the paper's Sections VIII–IX numbers:
every subsystem on a hot path (scheduler queue, task engine, FFT
memoization cache, pooled allocators, training loop) publishes counters,
gauges and histograms into a process-global :class:`MetricsRegistry`,
and recorded task spans export to ``chrome://tracing`` JSON.

See ``docs/observability.md`` for the metric-name catalog and usage.
"""

from repro.observability.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_snapshot,
    render_metrics,
    write_chrome_trace,
    write_metrics_json,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "chrome_trace",
    "chrome_trace_events",
    "metrics_snapshot",
    "render_metrics",
    "write_chrome_trace",
    "write_metrics_json",
]
