"""Unified observability: metrics, spans, cost profiling, SLOs.

The measurement substrate behind the paper's Sections VIII–IX numbers:
every subsystem on a hot path (scheduler queue, task engine, FFT
memoization cache, pooled allocators, training loop) publishes counters,
gauges and histograms into a process-global :class:`MetricsRegistry`;
request-scoped **spans** (:mod:`repro.observability.tracing`) add the
causal structure across threads, tasks and worker processes; the
**cost profiler** (:mod:`repro.observability.profile`) turns timed
conv passes into the versioned cost model the autotuner consumes; and
**SLO accounting** (:mod:`repro.observability.slo`) reports
p50/p95/p99 serving latencies against deadlines.

See ``docs/observability.md`` for the metric-name catalog and usage.
"""

from repro.observability.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_snapshot,
    prometheus_text,
    render_metrics,
    write_chrome_trace,
    write_metrics_json,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.profile import (
    COST_MODEL_SCHEMA,
    CostModelError,
    CostProfiler,
    get_profiler,
    load_cost_model,
    render_cost_model,
    set_profiler,
    validate_cost_model,
    write_cost_model,
)
from repro.observability.slo import SLOTracker, render_slo_report
from repro.observability.tracing import (
    FlightRecorder,
    Span,
    SpanContext,
    Tracer,
    current_context,
    flight_dump,
    flight_note,
    get_flight_recorder,
    get_tracer,
    merge_trace_files,
    read_trace_file,
    render_span_tree,
    set_tracer,
    spans_to_chrome_trace,
    write_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "chrome_trace",
    "chrome_trace_events",
    "metrics_snapshot",
    "prometheus_text",
    "render_metrics",
    "write_chrome_trace",
    "write_metrics_json",
    "Span",
    "SpanContext",
    "Tracer",
    "FlightRecorder",
    "get_tracer",
    "set_tracer",
    "current_context",
    "get_flight_recorder",
    "flight_note",
    "flight_dump",
    "spans_to_chrome_trace",
    "render_span_tree",
    "write_trace_file",
    "read_trace_file",
    "merge_trace_files",
    "COST_MODEL_SCHEMA",
    "CostProfiler",
    "CostModelError",
    "get_profiler",
    "set_profiler",
    "validate_cost_model",
    "write_cost_model",
    "load_cost_model",
    "render_cost_model",
    "SLOTracker",
    "render_slo_report",
]
