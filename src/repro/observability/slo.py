"""SLO accounting: serving deadlines -> quantile-capable latency report.

The serving pipeline already *enforces* per-request deadlines
(:class:`repro.serving.DeadlineExceeded`); this module *accounts* for
them.  :class:`SLOTracker` feeds the three latency components of every
finished request into quantile-capable histograms

* ``slo.admission_wait_seconds`` — accepted -> dequeued,
* ``slo.service_seconds`` — dequeued -> stitched output,
* ``slo.e2e_seconds`` — accepted -> resolved,

plus deadline-attainment counters (``slo.requests.ok`` /
``slo.requests.violated``), and renders p50/p95/p99 estimates from the
bucket counts (:meth:`repro.observability.Histogram.quantile`).  The
histograms live in the process-global registry, so the numbers ride
the existing ``/metrics`` endpoint (JSON and Prometheus) for free; the
``repro slo`` command prints the same report for a synthetic workload.

Quantiles are *estimates*: linear interpolation inside the histogram
bucket the quantile falls in, exact at bucket boundaries — the same
contract Prometheus's ``histogram_quantile`` gives, chosen here for
the same reason (bounded memory, mergeable across threads).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "SLOTracker",
    "render_slo_report",
]

_COMPONENTS = ("admission_wait", "service", "e2e")


class SLOTracker:
    """Aggregates per-request latency components and deadline outcomes.

    One instance per :class:`~repro.serving.InferenceServer`; all state
    lives in registry metrics (wait-free shards), so ``observe`` takes
    no lock of its own and a disabled registry makes it a no-op.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 objective_seconds: Optional[float] = None) -> None:
        reg = registry if registry is not None else get_registry()
        #: Declared latency objective (used by :meth:`report` to count
        #: attainment even for requests that carried no deadline).
        self.objective_seconds = objective_seconds
        self._h = {
            "admission_wait": reg.histogram("slo.admission_wait_seconds"),
            "service": reg.histogram("slo.service_seconds"),
            "e2e": reg.histogram("slo.e2e_seconds"),
        }
        self._ok = reg.counter("slo.requests.ok")
        self._violated = reg.counter("slo.requests.violated")

    def observe(self, admission_wait: float, service: Optional[float],
                e2e: Optional[float],
                deadline_met: Optional[bool] = None) -> None:
        """Record one finished request.

        *service*/*e2e* are None for requests that never ran (deadline
        expired in the queue).  *deadline_met* is None when the request
        carried no deadline — it then counts against
        :attr:`objective_seconds` when that is set, else as ok.
        """
        self._h["admission_wait"].observe(admission_wait)
        if service is not None:
            self._h["service"].observe(service)
        if e2e is not None:
            self._h["e2e"].observe(e2e)
        if deadline_met is None:
            if self.objective_seconds is not None and e2e is not None:
                deadline_met = e2e <= self.objective_seconds
            else:
                deadline_met = True
        if deadline_met:
            self._ok.inc()
        else:
            self._violated.inc()

    # -- reporting -----------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Quantile estimates per component + deadline attainment."""
        out: Dict[str, object] = {}
        for component in _COMPONENTS:
            hist = self._h[component]
            merged = hist.snapshot()
            out[component] = {
                "count": merged["count"],
                "mean": merged["mean"],
                "max": merged["max"],
                "p50": merged["p50"],
                "p95": merged["p95"],
                "p99": merged["p99"],
            }
        ok = self._ok.value
        violated = self._violated.value
        total = ok + violated
        out["deadline"] = {
            "ok": ok,
            "violated": violated,
            "attainment": ok / total if total else None,
            "objective_seconds": self.objective_seconds,
        }
        return out


def render_slo_report(report: Dict[str, object]) -> str:
    """Fixed-width table of a :meth:`SLOTracker.report` (repro slo)."""
    from repro import reporting

    def fmt(value) -> str:
        return f"{value * 1e3:.3f}" if value is not None else "-"

    rows = []
    for component in _COMPONENTS:
        stats = report[component]
        rows.append([
            component, str(stats["count"]), fmt(stats["mean"]),
            fmt(stats["p50"]), fmt(stats["p95"]), fmt(stats["p99"]),
            fmt(stats["max"]),
        ])
    deadline = report["deadline"]
    attainment = deadline["attainment"]
    rows.append([
        "deadline", str(deadline["ok"] + deadline["violated"]),
        "-", "-", "-", "-",
        f"{attainment * 100:.1f}%" if attainment is not None else "-",
    ])
    return reporting.render_table(
        "SLO report (milliseconds)",
        ["component", "n", "mean", "p50", "p95", "p99", "max"],
        rows)
