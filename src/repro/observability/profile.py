"""Per-layer cost profiling: measured (edge, backend) -> time/FLOPs.

The paper's Tables II–III give *analytic* per-layer costs; the ROADMAP's
ZNNi item (arXiv:1606.05688, per-layer algorithm and patch-size
selection) needs *measured* ones — direct vs. FFT crossover depends on
cache behaviour and transform sizes in ways the FLOP formulas cannot
see.  Mathieu et al. made the same point for FFT training: crossover
decisions must be driven by per-layer timings.

:class:`CostProfiler` aggregates timed samples keyed by
``(edge, backend, op)`` — op is ``fwd``/``bwd``/``upd`` — carrying the
measured seconds plus the analytic FLOPs and bytes for the recorded
shapes (so the consumer can compute achieved FLOP/s per primitive).
The result serialises as a versioned ``cost_model.json``
(:data:`COST_MODEL_SCHEMA`), the input contract of the future
autotuner.

Profiling is **off by default**; enable with ``REPRO_PROFILE=1`` or
``get_profiler().enable()``.  The disabled fast path is one attribute
read, same discipline as metrics and tracing.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runtime import make_lock
from repro.observability.metrics import get_registry

__all__ = [
    "COST_MODEL_SCHEMA",
    "CostProfiler",
    "CostModelError",
    "get_profiler",
    "set_profiler",
    "conv_pass_flops",
    "conv_pass_bytes",
    "validate_cost_model",
    "write_cost_model",
    "load_cost_model",
    "render_cost_model",
]

#: Schema tag of emitted cost-model documents.
COST_MODEL_SCHEMA = "repro.cost_model/v1"


class CostModelError(ValueError):
    """A document failed :func:`validate_cost_model`."""


# ---------------------------------------------------------------------------
# Analytic annotations for the conv primitives.  The formulas live with
# the primitives themselves (:func:`repro.tensor.conv_direct.
# direct_pass_cost`, :meth:`repro.tensor.conv_fft.FftConvPlan.
# pass_cost`); these wrappers just dispatch on the backend string the
# instrumented edges carry.
# ---------------------------------------------------------------------------


def _conv_pass_cost(op: str, backend: str,
                    image_shape: Sequence[int],
                    kernel_shape: Sequence[int],
                    sparsity: int | Sequence[int] = 1) -> dict:
    # Imported lazily: repro.tensor pulls in repro.resilience, which
    # imports this package back — a cycle at module-import time only.
    from repro.tensor.conv_direct import direct_pass_cost
    from repro.tensor.conv_fft import FftConvPlan

    if op not in ("fwd", "bwd", "upd"):
        raise ValueError(f"unknown conv pass {op!r}")
    if backend == "direct":
        return direct_pass_cost(image_shape, kernel_shape, sparsity)
    if backend == "fft":
        return FftConvPlan(image_shape, kernel_shape, sparsity).pass_cost()
    raise ValueError(f"unknown conv backend {backend!r}")


def conv_pass_flops(op: str, backend: str,
                    image_shape: Sequence[int],
                    kernel_shape: Sequence[int],
                    sparsity: int | Sequence[int] = 1) -> float:
    """FLOPs of one conv-edge pass at the given shapes (Table II
    applied to the shapes the edge actually ran)."""
    return float(_conv_pass_cost(op, backend, image_shape, kernel_shape,
                                 sparsity)["flops"])


def conv_pass_bytes(op: str, backend: str,
                    image_shape: Sequence[int],
                    kernel_shape: Sequence[int],
                    sparsity: int | Sequence[int] = 1) -> float:
    """Bytes read+written by one conv-edge pass (float64 arrays)."""
    return float(_conv_pass_cost(op, backend, image_shape, kernel_shape,
                                 sparsity)["bytes"])


# ---------------------------------------------------------------------------
# The profiler
# ---------------------------------------------------------------------------


class _Entry:
    """Aggregated samples of one (edge, backend, op) triple."""

    __slots__ = ("edge", "backend", "op", "count", "seconds", "flops",
                 "bytes", "image_shape", "kernel_shape")

    def __init__(self, edge: str, backend: str, op: str) -> None:
        self.edge = edge
        self.backend = backend
        self.op = op
        self.count = 0
        self.seconds = 0.0
        self.flops = 0.0
        self.bytes = 0.0
        self.image_shape: Optional[Tuple[int, ...]] = None
        self.kernel_shape: Optional[Tuple[int, ...]] = None

    def to_dict(self) -> dict:
        seconds = self.seconds
        mean = seconds / self.count if self.count else 0.0
        flop_rate = self.flops / seconds if seconds > 0 else 0.0
        return {
            "edge": self.edge,
            "backend": self.backend,
            "op": self.op,
            "count": self.count,
            "seconds": seconds,
            "mean_seconds": mean,
            "flops": self.flops,
            "flops_per_second": flop_rate,
            "bytes": self.bytes,
            "image_shape": list(self.image_shape)
            if self.image_shape else None,
            "kernel_shape": list(self.kernel_shape)
            if self.kernel_shape else None,
        }


class CostProfiler:
    """Aggregates (edge, backend, op) -> time/FLOPs/bytes samples.

    Instrumentation sites time their own pass (``time.monotonic``
    brackets around the primitive) and call :meth:`record`; the
    profiler only aggregates, so the enabled hot path is one dict
    lookup and a few adds under a short lock, and the disabled path is
    one attribute read.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_PROFILE", "0").lower() in (
                "1", "true", "on", "yes")
        self.enabled = bool(enabled)
        self._lock = make_lock("observability.profiler")
        self._entries: Dict[Tuple[str, str, str], _Entry] = {}  # guarded-by: _lock
        self._m_samples = get_registry().counter("profile.samples")

    def enable(self) -> "CostProfiler":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def record(self, edge: str, backend: str, op: str, seconds: float,
               flops: float = 0.0, bytes_moved: float = 0.0,
               image_shape: Optional[Sequence[int]] = None,
               kernel_shape: Optional[Sequence[int]] = None) -> None:
        """Add one timed sample for an (edge, backend, op) triple."""
        if not self.enabled:
            return
        self._m_samples.inc()
        key = (edge, backend, op)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry(edge, backend, op)
            entry.count += 1
            entry.seconds += float(seconds)
            entry.flops += float(flops)
            entry.bytes += float(bytes_moved)
            if image_shape is not None:
                entry.image_shape = tuple(int(v) for v in image_shape)
            if kernel_shape is not None:
                entry.kernel_shape = tuple(int(v) for v in kernel_shape)

    def record_conv(self, edge: str, backend: str, op: str, seconds: float,
                    image_shape: Sequence[int],
                    kernel_shape: Sequence[int],
                    sparsity: int | Sequence[int] = 1) -> None:
        """Record a conv pass, deriving FLOPs/bytes from the shapes."""
        if not self.enabled:
            return
        self.record(
            edge, backend, op, seconds,
            flops=conv_pass_flops(op, backend, image_shape, kernel_shape,
                                  sparsity),
            bytes_moved=conv_pass_bytes(op, backend, image_shape,
                                        kernel_shape, sparsity),
            image_shape=image_shape, kernel_shape=kernel_shape)

    # -- export --------------------------------------------------------

    def entries(self) -> List[dict]:
        with self._lock:
            entries = list(self._entries.values())
        entries.sort(key=lambda e: (e.edge, e.backend, e.op))
        return [e.to_dict() for e in entries]

    def cost_model(self) -> dict:
        """The versioned cost-model document (see docs/observability.md
        for the schema the autotuner consumes)."""
        return {
            "schema": COST_MODEL_SCHEMA,
            "created": time.time(),
            "entries": self.entries(),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# Cost-model document I/O + validation (hand-rolled: no jsonschema dep)
# ---------------------------------------------------------------------------

_ENTRY_NUMBER_FIELDS = ("count", "seconds", "mean_seconds", "flops",
                        "flops_per_second", "bytes")


def validate_cost_model(doc: object) -> dict:
    """Check *doc* against :data:`COST_MODEL_SCHEMA`; returns it.

    Raises :class:`CostModelError` naming the first offending field —
    the contract consumers (the autotuner, CI's trace-smoke lane) rely
    on instead of a jsonschema dependency.
    """
    if not isinstance(doc, dict):
        raise CostModelError(f"cost model must be an object, got "
                             f"{type(doc).__name__}")
    if doc.get("schema") != COST_MODEL_SCHEMA:
        raise CostModelError(
            f"schema must be {COST_MODEL_SCHEMA!r}, got "
            f"{doc.get('schema')!r}")
    if not isinstance(doc.get("created"), (int, float)):
        raise CostModelError("created must be a unix timestamp")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise CostModelError("entries must be a list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise CostModelError(f"entries[{i}] must be an object")
        for field in ("edge", "backend", "op"):
            if not isinstance(entry.get(field), str) or not entry[field]:
                raise CostModelError(
                    f"entries[{i}].{field} must be a non-empty string")
        if entry["op"] not in ("fwd", "bwd", "upd"):
            raise CostModelError(
                f"entries[{i}].op must be fwd|bwd|upd, got "
                f"{entry['op']!r}")
        for field in _ENTRY_NUMBER_FIELDS:
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise CostModelError(
                    f"entries[{i}].{field} must be a non-negative "
                    f"number, got {value!r}")
        for field in ("image_shape", "kernel_shape"):
            value = entry.get(field)
            if value is not None and not (
                    isinstance(value, list)
                    and all(isinstance(v, int) and v > 0 for v in value)):
                raise CostModelError(
                    f"entries[{i}].{field} must be null or a list of "
                    f"positive ints, got {value!r}")
    return doc


def write_cost_model(path: str,
                     profiler: Optional[CostProfiler] = None) -> str:
    """Validate and write the profiler's cost model; returns *path*."""
    if profiler is None:
        profiler = get_profiler()
    doc = validate_cost_model(profiler.cost_model())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    return path


def load_cost_model(path: str) -> dict:
    """Read and validate a ``cost_model.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_cost_model(json.load(fh))


def render_cost_model(doc: dict) -> str:
    """Fixed-width table of a cost model (the ``repro profile`` view)."""
    from repro import reporting

    rows = []
    for entry in doc.get("entries", []):
        rows.append([
            entry["edge"], entry["backend"], entry["op"],
            str(entry["count"]),
            f"{entry['mean_seconds'] * 1e3:.3f}",
            f"{entry['flops']:.4g}",
            f"{entry['flops_per_second'] / 1e9:.3f}",
        ])
    return reporting.render_table(
        "per-layer cost model",
        ["edge", "backend", "op", "n", "mean ms", "flops", "gflop/s"],
        rows)


# ---------------------------------------------------------------------------
# Process-global profiler
# ---------------------------------------------------------------------------

_global_profiler = CostProfiler()


def get_profiler() -> CostProfiler:
    """The process-global profiler instrumented edges default to."""
    return _global_profiler


def set_profiler(profiler: CostProfiler) -> CostProfiler:
    """Swap the global profiler (tests); returns the previous one."""
    global _global_profiler
    previous = _global_profiler
    _global_profiler = profiler
    return previous
