"""Thread-safe metrics primitives and the process-global registry.

The paper's whole evaluation (Sections VIII–IX) is about *measured*
per-subsystem behaviour — queue contention, worker utilization, FFT
memoization effectiveness, allocator pressure.  This module provides the
dependency-free substrate those measurements hang off:

* :class:`Counter` — monotonically increasing count (int or float, e.g.
  accumulated busy seconds), incremented wait-free via per-thread
  shards (the same idea as the paper's Algorithm 4 summation);
* :class:`Gauge` — a value that can go up and down (queue depth,
  memoized bytes, outstanding pooled chunks);
* :class:`Histogram` — observations bucketed into fixed boundaries
  (per-task queue wait, seconds per training round);
* :class:`MetricsRegistry` — a labeled-family registry handing out the
  above, with a :meth:`~MetricsRegistry.snapshot` for exporters.

A process-global registry (:func:`get_registry`) is what the
instrumented subsystems (``sync.priority_queue``, ``scheduler.engine``,
``tensor.fft_cache``, ``memory.pools``, ``core.training``) write to by
default.  Set the environment variable ``REPRO_METRICS=0`` (or call
``get_registry().disable()``) to turn every metric operation into a
no-op — benchmarks use this to measure instrumentation overhead.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Default histogram boundaries — latencies in seconds, spanning the
#: sub-millisecond queue waits of Section VII-A up to multi-second
#: training rounds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


def _render_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared machinery: a lock and a reference to the owning registry
    (whose ``enabled`` flag gates every mutation)."""

    __slots__ = ("name", "_lock", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._registry = registry


class Counter(_Metric):
    """Monotonically increasing counter (ints or float quantities such
    as accumulated seconds).

    Increments are *wait-free*, in the spirit of the paper's Algorithm 4
    summation: each thread accumulates into its own shard (keyed by
    thread id), so the hot path takes no lock and concurrent totals stay
    exact — only the owning thread ever read-modify-writes its shard.
    ``value`` sums the shards.
    """

    __slots__ = ("_shards",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._shards: Dict[int, int | float] = {}

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        shards = self._shards
        tid = threading.get_ident()
        shards[tid] = shards.get(tid, 0) + amount

    @property
    def value(self) -> int | float:
        while True:  # a new thread may add its shard mid-iteration
            try:
                return sum(self._shards.values())
            except RuntimeError:
                continue

    def reset(self) -> None:
        self._shards.clear()

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge(_Metric):
    """A value that can move both ways (depth, bytes, outstanding)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._value = 0

    def set(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        self._value = value  # single store: atomic under the GIL

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class _HistogramShard:
    """One thread's private accumulation state."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


class Histogram(_Metric):
    """Observations bucketed into fixed boundaries.

    ``buckets`` are the inclusive upper bounds of each bucket; an
    implicit ``+inf`` bucket catches the rest.  ``snapshot`` reports the
    per-bucket counts plus count/sum/min/max/mean.  Like
    :class:`Counter`, observations go into per-thread shards so the hot
    path is wait-free and concurrent counts stay exact; readers merge
    the shards.
    """

    __slots__ = ("buckets", "_shards")

    def __init__(self, name: str, registry: "MetricsRegistry",
                 buckets: Optional[Iterable[float]] = None) -> None:
        super().__init__(name, registry)
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self.buckets = bounds
        self._shards: Dict[int, _HistogramShard] = {}

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        tid = threading.get_ident()
        shard = self._shards.get(tid)
        if shard is None:
            shard = self._shards[tid] = _HistogramShard(len(self.buckets) + 1)
        shard.counts[bisect.bisect_left(self.buckets, value)] += 1
        shard.count += 1
        shard.sum += value
        if shard.min is None or value < shard.min:
            shard.min = value
        if shard.max is None or value > shard.max:
            shard.max = value

    def _merged(self) -> _HistogramShard:
        total = _HistogramShard(len(self.buckets) + 1)
        while True:  # a new thread may add its shard mid-iteration
            try:
                shards = list(self._shards.values())
                break
            except RuntimeError:
                continue
        for shard in shards:
            total.counts = [a + b for a, b in zip(total.counts, shard.counts)]
            total.count += shard.count
            total.sum += shard.sum
            if shard.min is not None and (total.min is None
                                          or shard.min < total.min):
                total.min = shard.min
            if shard.max is not None and (total.max is None
                                          or shard.max > total.max):
                total.max = shard.max
        return total

    @property
    def count(self) -> int:
        return self._merged().count

    @property
    def sum(self) -> float:
        return self._merged().sum

    @property
    def mean(self) -> float:
        merged = self._merged()
        return merged.sum / merged.count if merged.count else 0.0

    def reset(self) -> None:
        self._shards.clear()

    def _quantile_from(self, merged: _HistogramShard, q: float
                       ) -> Optional[float]:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if merged.count == 0:
            return None
        target = q * merged.count
        cumulative = 0
        for i, bucket_count in enumerate(merged.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count < target:
                cumulative += bucket_count
                continue
            # The quantile lands in bucket i: interpolate linearly
            # between its bounds (clamped to the observed min/max, so
            # single-bucket distributions don't report the boundary).
            lo = self.buckets[i - 1] if i > 0 else merged.min
            hi = self.buckets[i] if i < len(self.buckets) else merged.max
            lo = max(lo, merged.min) if merged.min is not None else lo
            hi = min(hi, merged.max) if merged.max is not None else hi
            if hi <= lo:
                return lo
            fraction = (target - cumulative) / bucket_count
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        return merged.max  # pragma: no cover - counts always sum up

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile from the bucket counts (linear
        interpolation within the containing bucket; None when empty).

        Same estimator contract as Prometheus ``histogram_quantile``:
        exact at bucket boundaries, bounded error inside a bucket."""
        return self._quantile_from(self._merged(), q)

    def snapshot(self) -> dict:
        merged = self._merged()
        labels = [f"le={b:g}" for b in self.buckets] + ["le=+inf"]
        return {
            "count": merged.count,
            "sum": merged.sum,
            "mean": merged.sum / merged.count if merged.count else 0.0,
            "min": merged.min,
            "max": merged.max,
            "p50": self._quantile_from(merged, 0.50),
            "p95": self._quantile_from(merged, 0.95),
            "p99": self._quantile_from(merged, 0.99),
            "buckets": dict(zip(labels, merged.counts)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"sum={self.sum:.6g})")


class MetricsRegistry:
    """Process-wide home of labeled metric families.

    ``counter/gauge/histogram`` return the existing metric when called
    again with the same name and labels, so instrumentation sites can
    fetch them cheaply at construction time and callers elsewhere (e.g.
    exporters) can look the same family up by name::

        reg = get_registry()
        pops = reg.counter("queue.pop")
        fwd = reg.counter("engine.tasks", family="fwd")

    When ``enabled`` is False every metric mutation is a no-op (the
    objects stay registered, so re-enabling resumes counting).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}
        self._read_hooks: list = []
        self.enabled = bool(enabled)

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Turn every metric operation into a no-op (benchmark mode)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every registered metric (registrations survive)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    # -- factories -----------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, str],
                       **kwargs) -> _Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(_render_name(name, key[1]), self, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {metric.name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels: str) -> Histogram:
        metric = self._get_or_create(Histogram, name, labels, buckets=buckets)
        if buckets is not None and metric.buckets != tuple(
                sorted(float(b) for b in buckets)):
            raise ValueError(
                f"histogram {metric.name!r} already registered with "
                f"buckets {metric.buckets}")
        return metric

    # -- introspection -------------------------------------------------

    def add_read_hook(self, hook) -> None:
        """Register a callable invoked before reads (:meth:`metrics`,
        :meth:`snapshot`).  Hot-path subsystems that tally privately
        (e.g. the tracer's per-span count) use this to fold their
        deferred totals into the counters lazily, keeping the record
        path free of registry traffic."""
        self._read_hooks.append(hook)

    def metrics(self) -> Dict[str, _Metric]:
        """All registered metrics keyed by rendered name."""
        for hook in self._read_hooks:
            try:
                hook()
            except Exception:  # pragma: no cover - hooks must not block
                pass
        with self._lock:
            return {m.name: m for m in self._metrics.values()}

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time values: numbers for counters/gauges, dicts for
        histograms; sorted by rendered name."""
        return {name: metric.snapshot()
                for name, metric in sorted(self.metrics().items())}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(enabled={self.enabled}, "
                f"metrics={len(self)})")


# ---------------------------------------------------------------------------
# The process-global registry the instrumented subsystems default to.
# ---------------------------------------------------------------------------

_global_registry = MetricsRegistry(
    enabled=os.environ.get("REPRO_METRICS", "1").lower()
    not in ("0", "false", "off", "no"))


def get_registry() -> MetricsRegistry:
    """The process-global registry (what instrumented code defaults to)."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one.

    Instrumented objects capture their metrics at construction time, so
    swap *before* building engines/networks whose metrics you care
    about.
    """
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous
