"""Exporters: Chrome-trace JSON from a recorded span, metrics snapshots.

Two consumable artifacts come out of an instrumented run:

* a **trace** — the :class:`repro.scheduler.TraceRecorder`'s per-task
  records rendered as Chrome Trace Event JSON.  Load the file in
  ``chrome://tracing`` (or https://ui.perfetto.dev) to see the paper's
  Fig 3 task cascade laid out per worker, with queue-wait and status
  attached to every slice;
* a **metrics snapshot** — the registry's counters/gauges/histograms as
  a plain dict, JSON file, or fixed-width text table (via
  :func:`repro.reporting.render_table`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_snapshot",
    "render_metrics",
    "write_metrics_json",
]


def chrome_trace_events(records: Sequence) -> List[dict]:
    """Convert :class:`repro.scheduler.TaskRecord` entries to Chrome
    Trace Event dicts (complete events, ``ph="X"``).

    Timestamps are microseconds relative to the earliest recorded start,
    one trace thread per worker.  Queue wait and task status travel in
    ``args`` so they show up in the trace viewer's detail pane.
    """
    if not records:
        return []
    t0 = min(r.start for r in records)
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": "repro task engine"}},
    ]
    for worker in sorted({r.worker for r in records}):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": worker, "args": {"name": f"worker-{worker}"}})
    for r in records:
        event = {
            "name": r.name or "(anonymous)",
            "cat": r.family,
            "ph": "X",
            "pid": 0,
            "tid": r.worker,
            "ts": (r.start - t0) * 1e6,
            "dur": r.duration * 1e6,
            "args": {
                "queue_wait_us": getattr(r, "queue_wait", 0.0) * 1e6,
                "status": getattr(r, "status", "ok"),
            },
        }
        if getattr(r, "status", "ok") != "ok":
            event["cname"] = "terrible"  # red slice in the viewer
        events.append(event)
    return events


def chrome_trace(recorder_or_records) -> dict:
    """The full Chrome-trace JSON object for a recorder or record list."""
    records = (recorder_or_records.records()
               if hasattr(recorder_or_records, "records")
               else list(recorder_or_records))
    return {"traceEvents": chrome_trace_events(records),
            "displayTimeUnit": "ms"}


def write_chrome_trace(recorder_or_records, path: str) -> str:
    """Write ``chrome://tracing`` JSON for a recorded span; returns
    *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder_or_records), fh)
    return path


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------


def metrics_snapshot(registry: Optional[MetricsRegistry] = None
                     ) -> Dict[str, object]:
    """Point-in-time values of every metric in *registry* (default: the
    process-global registry)."""
    return (registry if registry is not None else get_registry()).snapshot()


def _format_value(value) -> str:
    if isinstance(value, dict):  # histogram
        mean = value.get("mean", 0.0) or 0.0
        vmax = value.get("max")
        vmax_s = f"{vmax:.6g}" if vmax is not None else "-"
        return (f"count={value.get('count', 0)} "
                f"sum={value.get('sum', 0.0):.6g} "
                f"mean={mean:.6g} max={vmax_s}")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics(snapshot: Optional[Dict[str, object]] = None,
                   registry: Optional[MetricsRegistry] = None,
                   title: str = "metrics snapshot") -> str:
    """Fixed-width text table of a snapshot (computed from *registry*
    when not given)."""
    from repro import reporting

    if snapshot is None:
        snapshot = metrics_snapshot(registry)
    header, rows = reporting.metrics_table(snapshot)
    return reporting.render_table(title, header, rows)


def write_metrics_json(path: str,
                       snapshot: Optional[Dict[str, object]] = None,
                       registry: Optional[MetricsRegistry] = None) -> str:
    """Dump a snapshot as JSON; returns *path*."""
    if snapshot is None:
        snapshot = metrics_snapshot(registry)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
    return path
