"""Exporters: Chrome-trace JSON from a recorded span, metrics snapshots.

Two consumable artifacts come out of an instrumented run:

* a **trace** — the :class:`repro.scheduler.TraceRecorder`'s per-task
  records rendered as Chrome Trace Event JSON.  Load the file in
  ``chrome://tracing`` (or https://ui.perfetto.dev) to see the paper's
  Fig 3 task cascade laid out per worker, with queue-wait and status
  attached to every slice;
* a **metrics snapshot** — the registry's counters/gauges/histograms as
  a plain dict, JSON file, or fixed-width text table (via
  :func:`repro.reporting.render_table`).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_snapshot",
    "render_metrics",
    "write_metrics_json",
    "prometheus_text",
]


def chrome_trace_events(records: Sequence) -> List[dict]:
    """Convert :class:`repro.scheduler.TaskRecord` entries to Chrome
    Trace Event dicts (complete events, ``ph="X"``).

    Timestamps are microseconds relative to the earliest recorded start,
    one trace thread per worker.  Queue wait and task status travel in
    ``args`` so they show up in the trace viewer's detail pane.
    """
    if not records:
        return []
    t0 = min(r.start for r in records)
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": "repro task engine"}},
    ]
    for worker in sorted({r.worker for r in records}):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": worker, "args": {"name": f"worker-{worker}"}})
    for r in records:
        event = {
            "name": r.name or "(anonymous)",
            "cat": r.family,
            "ph": "X",
            "pid": 0,
            "tid": r.worker,
            "ts": (r.start - t0) * 1e6,
            "dur": r.duration * 1e6,
            "args": {
                "queue_wait_us": getattr(r, "queue_wait", 0.0) * 1e6,
                "status": getattr(r, "status", "ok"),
            },
        }
        if getattr(r, "status", "ok") != "ok":
            event["cname"] = "terrible"  # red slice in the viewer
        events.append(event)
    return events


def chrome_trace(recorder_or_records) -> dict:
    """The full Chrome-trace JSON object for a recorder or record list."""
    records = (recorder_or_records.records()
               if hasattr(recorder_or_records, "records")
               else list(recorder_or_records))
    return {"traceEvents": chrome_trace_events(records),
            "displayTimeUnit": "ms"}


def write_chrome_trace(recorder_or_records, path: str) -> str:
    """Write ``chrome://tracing`` JSON for a recorded span; returns
    *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder_or_records), fh)
    return path


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------


def metrics_snapshot(registry: Optional[MetricsRegistry] = None
                     ) -> Dict[str, object]:
    """Point-in-time values of every metric in *registry* (default: the
    process-global registry)."""
    return (registry if registry is not None else get_registry()).snapshot()


def _format_value(value) -> str:
    if isinstance(value, dict):  # histogram
        mean = value.get("mean", 0.0) or 0.0
        vmax = value.get("max")
        vmax_s = f"{vmax:.6g}" if vmax is not None else "-"
        return (f"count={value.get('count', 0)} "
                f"sum={value.get('sum', 0.0):.6g} "
                f"mean={mean:.6g} max={vmax_s}")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics(snapshot: Optional[Dict[str, object]] = None,
                   registry: Optional[MetricsRegistry] = None,
                   title: str = "metrics snapshot") -> str:
    """Fixed-width text table of a snapshot (computed from *registry*
    when not given)."""
    from repro import reporting

    if snapshot is None:
        snapshot = metrics_snapshot(registry)
    header, rows = reporting.metrics_table(snapshot)
    return reporting.render_table(title, header, rows)


def write_metrics_json(path: str,
                       snapshot: Optional[Dict[str, object]] = None,
                       registry: Optional[MetricsRegistry] = None) -> str:
    """Dump a snapshot as JSON; returns *path*."""
    if snapshot is None:
        snapshot = metrics_snapshot(registry)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Characters legal in a Prometheus metric name; everything else in a
#: catalog name (the dots) maps to ``_``.  Label *mapping* is
#: documented in docs/observability.md: ``engine.tasks{family=fwd}``
#: exposes as ``repro_engine_tasks{family="fwd"}``.
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_RENDERED_NAME = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _split_rendered(rendered: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Undo ``_render_name``: ``"a.b{k=v,k2=v2}"`` -> name + pairs."""
    match = _RENDERED_NAME.match(rendered)
    assert match is not None  # _render_name output always matches
    labels_part = match.group("labels")
    labels = []
    if labels_part:
        for item in labels_part.split(","):
            key, _, value = item.partition("=")
            labels.append((key, value))
    return match.group("name"), labels


def _prom_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_PROM_NAME_BAD.sub("_", k)}="{_escape_label(v)}"'
        for k, v in pairs)
    return f"{{{rendered}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def _prom_number(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render *registry* in the Prometheus text exposition format.

    Counters expose as ``<name>_total``, gauges as ``<name>``, and
    histograms as the standard cumulative ``_bucket``/``_sum``/
    ``_count`` triple with ``le`` labels.  Families sharing a catalog
    name but differing in labels merge under one TYPE header, as the
    format requires.
    """
    if registry is None:
        registry = get_registry()
    families: Dict[str, List[Tuple[List[Tuple[str, str]], object]]] = {}
    kinds: Dict[str, str] = {}
    for rendered, metric in sorted(registry.metrics().items()):
        name, labels = _split_rendered(rendered)
        if isinstance(metric, Counter):
            kinds[name] = "counter"
        elif isinstance(metric, Histogram):
            kinds[name] = "histogram"
        elif isinstance(metric, Gauge):
            kinds[name] = "gauge"
        else:  # pragma: no cover - no other metric kinds exist
            continue
        families.setdefault(name, []).append((labels, metric))
    lines: List[str] = []
    for name in sorted(families):
        kind = kinds[name]
        base = _prom_name(name)
        if kind == "counter":
            base += "_total"
        lines.append(f"# TYPE {base} {kind}")
        for labels, metric in families[name]:
            if kind == "histogram":
                snap = metric.snapshot()
                cumulative = 0
                bounds = [f"{b:g}" for b in metric.buckets] + ["+Inf"]
                for bound, count in zip(bounds,
                                        snap["buckets"].values()):
                    cumulative += count
                    bucket_labels = _prom_labels(
                        list(labels) + [("le", bound)])
                    lines.append(
                        f"{base}_bucket{bucket_labels} {cumulative}")
                suffix = _prom_labels(labels)
                lines.append(
                    f"{base}_sum{suffix} {_prom_number(snap['sum'])}")
                lines.append(f"{base}_count{suffix} {snap['count']}")
            else:
                lines.append(f"{base}{_prom_labels(labels)} "
                             f"{_prom_number(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""
