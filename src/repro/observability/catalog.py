"""The observability catalog: every metric name this repo may emit.

``repro lint``'s ``metrics-name`` rule checks each string-literal name
passed to ``registry.counter/gauge/histogram`` against this set, so a
new instrumentation site cannot ship without being catalogued here —
and the table in ``docs/observability.md`` (which mirrors this module)
cannot silently rot.

Names are the *unlabelled* family names; labelled variants
(``engine.tasks{family=fwd}``) share their family's entry.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["METRIC_NAMES"]

METRIC_NAMES: FrozenSet[str] = frozenset({
    # sync/priority_queue.py (§VII-A)
    "queue.push",
    "queue.pop",
    "queue.skipped",
    "queue.depth",
    "queue.wait_seconds",
    # scheduler/engine.py, scheduler/serial.py (§VI)
    "engine.tasks",
    "engine.tasks.retried",
    "engine.tasks.timed_out",
    "engine.failed",
    "engine.busy_seconds",
    "engine.idle_seconds",
    # tensor/fft_cache.py (§IV memoization)
    "fft_cache.hit",
    "fft_cache.miss",
    "fft_cache.evicted",
    "fft_cache.lru_evicted",
    "fft_cache.bytes",
    "fft_cache.entries",
    "fft_cache.max_bytes",
    # memory/pools.py (§VII-C)
    "pool.alloc",
    "pool.reuse",
    "pool.free",
    "pool.held_bytes",
    "pool.outstanding",
    # core/training.py
    "train.rounds",
    "train.loss",
    "train.seconds_per_update",
    "train.rollbacks",
    # resilience (docs/robustness.md)
    "resilience.faults_injected",
    "resilience.fft_fallback",
    "resilience.engine_degraded",
    # serving/pipeline.py + serving/registry.py (docs/serving.md)
    "serving.queue.depth",
    "serving.requests.accepted",
    "serving.requests.rejected",
    "serving.requests.completed",
    "serving.requests.failed",
    "serving.requests.deadline_missed",
    "serving.requests.retried",
    "serving.requests.shed",
    "serving.requests.specialized",
    "serving.queue_wait_seconds",
    "serving.run_seconds",
    "serving.latency_seconds",
    "serving.batch_size",
    "serving.model_cache.hit",
    "serving.model_cache.miss",
    "serving.model_cache.evicted",
    "serving.model_cache.entries",
    "serving.service.ewma_seconds",
    # serving/fleet.py + serving/supervisor.py (docs/serving.md
    # "Serving fleet")
    "fleet.workers",
    "fleet.workers.healthy",
    "fleet.workers.quarantined",
    "fleet.worker_deaths",
    "fleet.restarts",
    "fleet.heartbeats.missed",
    "fleet.queue.depth",
    "fleet.requests.dispatched",
    "fleet.requests.requeued",
    "fleet.requests.shed",
    "fleet.requests.failover",
    "fleet.worker.served",
    "fleet.worker.inflight",
    "fleet.scale_ups",
    "fleet.scale_downs",
    # loadgen/autoscale.py (docs/serving.md "Capacity planning")
    "autoscale.decisions",
    "autoscale.workers.target",
    # analysis/runtime.py (docs/static_analysis.md)
    "analysis.lock_order_violations",
    "analysis.race_violations",
    "analysis.tracked_objects",
    # analysis/determinism.py + runtime.py sanitizer
    # (docs/static_analysis.md "Determinism checker")
    "analysis.determinism.findings",
    "analysis.determinism.suppressed",
    "analysis.determinism.probe_runs",
    "analysis.determinism.stages",
    "analysis.determinism.divergences",
    # parallel/trainer.py (docs/parallel.md)
    "parallel.workers",
    "parallel.rounds",
    "parallel.barrier_wait_seconds",
    "parallel.bytes_shared",
    "parallel.worker_deaths",
    "parallel.reassigned_samples",
    # observability/tracing.py (docs/observability.md "Spans")
    "tracing.spans",
    "tracing.dropped",
    "flight.dumps",
    # observability/profile.py (docs/observability.md "Cost model")
    "profile.samples",
    # observability/slo.py (docs/observability.md "SLO accounting")
    "slo.admission_wait_seconds",
    "slo.service_seconds",
    "slo.e2e_seconds",
    "slo.requests.ok",
    "slo.requests.violated",
})
