"""Machine models — Table V and the thread-throughput behaviour of
Section VIII.

This host has a single core, so the paper's four benchmark machines are
*modelled*: a machine is (physical cores, hardware threads, and the
marginal throughput of threads beyond the core count).  Section VIII
describes the empirical shape we encode:

* multicore Xeons: "speedup increases linearly until the number of
  worker threads equals the number of cores.  After that the increase
  continues at a slower rate" up to the hyperthread count;
* Xeon Phi: linear to 60 cores, "then more slowly until double that
  number, and then even slower until the number of hardware threads"
  (240).

With ``W`` worker threads the machine's aggregate throughput (in units
of one core) is::

    throughput(W) = min(W, cores)
                  + yield_tier1 * clamp(W - cores,   0, cores)
                  + yield_tier2 * clamp(W - 2*cores, 0, threads - 2*cores)

and each thread runs at ``throughput(W) / W`` — contention slows every
thread equally.  ``sync_overhead`` is a per-task FLOP-equivalent charge
for queue operations and sum synchronisation.

The ``flops_per_core`` figures (used by the CPU-vs-GPU cost models) are
rough single-precision FMA throughputs of the parts in Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MachineSpec", "MACHINES", "get_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory machine model (one row of Table V)."""

    name: str
    cores: int
    threads: int
    ghz: float
    #: Marginal throughput (core-equivalents) of each thread in
    #: (cores, 2*cores] — SMT / first extra hardware thread.
    yield_tier1: float = 0.25
    #: Marginal throughput of each thread beyond 2*cores (Xeon Phi's
    #: 3rd/4th hardware threads).
    yield_tier2: float = 0.10
    #: Effective GFLOP/s of one core (for absolute-time models).
    gflops_per_core: float = 20.0
    #: Per-task scheduling overhead in FLOP-equivalents.
    sync_overhead: float = 2000.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads < self.cores:
            raise ValueError(
                f"invalid machine: cores={self.cores}, threads={self.threads}")

    def throughput(self, num_threads: int) -> float:
        """Aggregate throughput of *num_threads* workers, in units of
        one full core."""
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        w = min(num_threads, self.threads)  # extra software threads add nothing
        base = min(w, self.cores)
        tier1 = self.yield_tier1 * max(0, min(w, 2 * self.cores) - self.cores)
        tier2 = self.yield_tier2 * max(0, w - 2 * self.cores)
        return base + tier1 + tier2

    def thread_speed(self, num_threads: int) -> float:
        """Per-thread speed (fraction of a full core) with
        *num_threads* workers running."""
        return self.throughput(num_threads) / max(num_threads, 1)

    def max_speedup(self) -> float:
        """Throughput at the full hardware thread count — the ceiling of
        the achieved-speedup curves (the paper: 'equal to the number of
        cores or a bit larger')."""
        return self.throughput(self.threads)

    @property
    def total_gflops(self) -> float:
        return self.cores * self.gflops_per_core


#: Table V.  (The paper's Figs 5–7 legend lists an "i7-5820K" for the
#: 40-core machine; Table V identifies it as the 4-way Xeon E7-4850 —
#: we follow Table V.)
MACHINES: Dict[str, MachineSpec] = {
    "xeon-8": MachineSpec(
        name="Intel Xeon E5-2666 v3 (8 cores / 16 threads)",
        cores=8, threads=16, ghz=2.9,
        yield_tier1=0.30, yield_tier2=0.0, gflops_per_core=45.0),
    "xeon-18": MachineSpec(
        name="Intel Xeon E5-2666 v3 (18 cores / 36 threads)",
        cores=18, threads=36, ghz=2.9,
        yield_tier1=0.30, yield_tier2=0.0, gflops_per_core=45.0),
    "xeon-40": MachineSpec(
        name="Intel Xeon E7-4850 (40 cores / 80 threads)",
        cores=40, threads=80, ghz=2.0,
        yield_tier1=0.25, yield_tier2=0.0, gflops_per_core=16.0),
    "xeon-phi": MachineSpec(
        name="Intel Xeon Phi 5110P (60 cores / 240 threads)",
        cores=60, threads=240, ghz=1.053,
        yield_tier1=0.45, yield_tier2=0.12, gflops_per_core=16.0),
}


def get_machine(name: str) -> MachineSpec:
    """Look up a Table V machine by key."""
    try:
        return MACHINES[name]
    except KeyError:
        raise ValueError(f"unknown machine {name!r}; "
                         f"available: {sorted(MACHINES)}") from None
