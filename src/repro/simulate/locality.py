"""Temporal-locality analysis of simulated schedules (Section VI-A).

The paper's priority design argues two locality effects:

* "the strict ordering of the tasks with the same distance increases
  temporal locality by assuring that when multiple tasks with the same
  distance are scheduled we prefer to execute ones computing 3D images
  that have to be accumulated in the same sum";
* forcing updates right before the forward task that consumes their
  result "increases the memory locality".

We quantify the first effect on DES timelines: for each worker, walk
its executed tasks in order and count *switches* — consecutive
forward (or backward) tasks whose results accumulate into different
node sums.  Fewer switches per task means contributions to one sum run
back-to-back, keeping the accumulator hot in cache.  The benchmark
compares the priority policy against FIFO/LIFO/random on this metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.computation_graph import ComputationGraph
from repro.graph.taskgraph import TaskGraph
from repro.simulate.des import SimulationResult

__all__ = ["LocalityReport", "accumulation_target", "locality_report"]


def accumulation_target(task_name: str,
                        graph: ComputationGraph) -> Optional[str]:
    """The node sum a task's result is accumulated into, or None for
    tasks that do not contribute to a sum (updates, FFT transforms,
    provider, loss gradients)."""
    kind, _, rest = task_name.partition(":")
    if kind in ("fwd", "prod_fwd"):
        edge = graph.edges.get(rest)
        return f"fwd-sum:{edge.dst}" if edge is not None else None
    if kind in ("bwd", "prod_bwd"):
        edge = graph.edges.get(rest)
        return f"bwd-sum:{edge.src}" if edge is not None else None
    return None


@dataclass(frozen=True)
class LocalityReport:
    """Sum-locality statistics of one simulated schedule.

    Tasks are ordered by start time *globally* — the accumulator buffer
    lives in the shared cache, so what matters is how many distinct
    sums are touched in any short span of execution, regardless of
    which core ran which contribution.
    """

    accumulating_tasks: int
    switches: int
    mean_working_set: float

    @property
    def switch_rate(self) -> float:
        """Sum switches per accumulating task (lower = better
        locality)."""
        if self.accumulating_tasks == 0:
            return 0.0
        return self.switches / self.accumulating_tasks


def locality_report(result: SimulationResult,
                    graph: ComputationGraph,
                    window: int = 32) -> LocalityReport:
    """Compute sum-locality statistics from a recorded timeline.

    ``mean_working_set`` is the average number of *distinct* sums
    touched per consecutive window of *window* accumulating tasks —
    roughly, how many partial-sum buffers compete for cache at once.
    """
    if not result.timeline:
        raise ValueError("simulate with record_timeline=True first")
    ordered = sorted(result.timeline, key=lambda st: st.start)
    targets = []
    for st in ordered:
        target = accumulation_target(st.name, graph)
        if target is not None:
            targets.append(target)
    switches = sum(1 for a, b in zip(targets, targets[1:]) if a != b)
    if len(targets) >= window:
        sets = [len(set(targets[i:i + window]))
                for i in range(0, len(targets) - window + 1, window)]
        working = sum(sets) / len(sets)
    else:
        working = float(len(set(targets)))
    return LocalityReport(accumulating_tasks=len(targets),
                          switches=switches,
                          mean_working_set=working)
