"""Machine simulation substrate: Table V machine models, discrete-event
list scheduler, Fig 5–7 speedup sweeps."""

from repro.simulate.des import (ScheduledTask, SimulationResult,
                                simulate_schedule)
from repro.simulate.locality import (
    LocalityReport,
    accumulation_target,
    locality_report,
)
from repro.simulate.machine import MACHINES, MachineSpec, get_machine
from repro.simulate.speedup import (
    PAPER_WIDTHS,
    SpeedupSweep,
    default_thread_counts,
    max_speedup_vs_width,
    paper_graph_2d,
    paper_graph_3d,
    paper_task_graph,
    speedup_vs_threads,
)

__all__ = [
    "ScheduledTask",
    "SimulationResult",
    "simulate_schedule",
    "LocalityReport",
    "accumulation_target",
    "locality_report",
    "MACHINES",
    "MachineSpec",
    "get_machine",
    "PAPER_WIDTHS",
    "SpeedupSweep",
    "default_thread_counts",
    "max_speedup_vs_width",
    "paper_graph_2d",
    "paper_graph_3d",
    "paper_task_graph",
    "speedup_vs_threads",
]
