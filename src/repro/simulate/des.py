"""Discrete-event list-scheduling simulator.

Executes a :class:`repro.graph.TaskGraph` on a modelled machine
(:class:`repro.simulate.MachineSpec`) with ``W`` worker threads and a
pluggable ready-queue policy, and reports the makespan.  This is the
substitute for the paper's physical 8/18/40-core Xeons and the Xeon Phi
(see DESIGN.md): the *same* task graphs and the *same* priority policy
as the live engine, with per-task costs from the paper's own FLOP
model, scheduled by the classic event-driven list scheduler:

* a worker that frees up takes the most urgent ready task;
* a task occupies one worker for ``(cost + sync_overhead) / speed``
  time units, where ``speed`` is the machine's per-thread speed at the
  given thread count (capturing hyper-thread sharing);
* speedup is ``sum(cost) / makespan`` — serial work over parallel time,
  the paper's "speedup relative to the serial algorithm" (the serial
  run pays neither queue overhead nor SMT contention).

Policies: ``"priority"`` (the paper's scheduler), ``"fifo"``,
``"lifo"``, ``"random"`` (a stand-in for work-stealing's arbitrary
victim order in a centralised simulator).
"""

from __future__ import annotations

import heapq
import random as _random
from dataclasses import dataclass
from typing import List, Optional

from repro.graph.taskgraph import TaskGraph
from repro.simulate.machine import MachineSpec

__all__ = ["SimulationResult", "simulate_schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement in the simulated schedule."""

    task_id: int
    name: str
    worker: int
    start: float
    end: float


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated round."""

    makespan: float
    serial_work: float
    num_threads: int
    tasks: int
    busy_time: float
    timeline: Optional[List[ScheduledTask]] = None

    @property
    def speedup(self) -> float:
        """Speedup over the serial algorithm (T_1 / T_W)."""
        return self.serial_work / self.makespan if self.makespan else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent executing tasks."""
        denom = self.makespan * self.num_threads
        return self.busy_time / denom if denom else 0.0

    def gantt(self, width: int = 72, max_workers: int = 16) -> str:
        """Text Gantt chart of the schedule (requires
        ``record_timeline=True`` at simulation time).

        An un-recorded timeline (``None``) and a recorded-but-empty
        one (zero tasks) are different situations and say so; lanes
        past *max_workers* are elided with an explicit note instead
        of silently truncating.
        """
        if self.timeline is None:
            return "(no timeline recorded)"
        if not self.timeline:
            return "(no tasks)"
        span = self.makespan or 1.0
        lanes: dict[int, list] = {}
        for st_ in self.timeline:
            lanes.setdefault(st_.worker, []).append(st_)
        workers = sorted(lanes)
        lines = []
        for worker in workers[:max_workers]:
            row = [" "] * width
            for st_ in lanes[worker]:
                a = int(st_.start / span * (width - 1))
                b = max(int(st_.end / span * (width - 1)), a)
                for i in range(a, b + 1):
                    row[i] = "#"
            lines.append(f"w{worker:<3}|{''.join(row)}|")
        if len(workers) > max_workers:
            elided = len(workers) - max_workers
            lines.append(f"... ({elided} more worker"
                         f"{'s' if elided != 1 else ''} elided)")
        return "\n".join(lines)


def _ready_key(policy: str, tg: TaskGraph, seq: int, tid: int,
               rng: Optional[_random.Random]):
    if policy == "priority":
        return (tg.priorities[tid], seq)
    if policy == "fifo":
        return (seq,)
    if policy == "lifo":
        return (-seq,)
    if policy == "random":
        assert rng is not None
        return (rng.random(),)
    raise ValueError(f"unknown policy {policy!r}; "
                     "use priority|fifo|lifo|random")


def simulate_schedule(tg: TaskGraph, machine: MachineSpec,
                      num_threads: int, policy: str = "priority",
                      seed: int = 0,
                      record_timeline: bool = False) -> SimulationResult:
    """Simulate one round of *tg* on *machine* with *num_threads*.

    ``record_timeline=True`` additionally returns every task's
    (worker, start, end) placement — memory-proportional to the task
    count, so leave it off for the big sweeps.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    n = len(tg)
    if n == 0:
        return SimulationResult(0.0, 0.0, num_threads, 0, 0.0,
                                timeline=[] if record_timeline else None)

    speed = machine.thread_speed(num_threads)
    overhead = machine.sync_overhead
    rng = _random.Random(seed) if policy == "random" else None

    indeg = list(tg.indegree)
    ready: List[tuple] = []   # (key..., tid)
    seq = 0
    for tid in range(n):
        if indeg[tid] == 0:
            heapq.heappush(ready, (*_ready_key(policy, tg, seq, tid, rng), tid))
            seq += 1

    events: List[tuple] = []  # (finish_time, worker, tid)
    free_workers = list(range(num_threads - 1, -1, -1))
    now = 0.0
    done = 0
    busy = 0.0
    serial_work = tg.total_cost
    timeline: Optional[List[ScheduledTask]] = [] if record_timeline else None

    while done < n:
        # Fill free workers with the most urgent ready tasks.
        while free_workers and ready:
            entry = heapq.heappop(ready)
            tid = entry[-1]
            worker = free_workers.pop()
            duration = (tg.costs[tid] + overhead) / speed
            heapq.heappush(events, (now + duration, worker, tid))
            busy += duration
            if timeline is not None:
                timeline.append(ScheduledTask(tid, tg.names[tid], worker,
                                              now, now + duration))
        if not events:
            raise RuntimeError(
                "deadlock: no running tasks but graph incomplete "
                "(cycle or disconnected dependency)")
        now, worker, tid = heapq.heappop(events)
        free_workers.append(worker)
        done += 1
        for succ in tg.successors[tid]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(ready,
                               (*_ready_key(policy, tg, seq, succ, rng), succ))
                seq += 1

    return SimulationResult(makespan=now, serial_work=serial_work,
                            num_threads=num_threads, tasks=n,
                            busy_time=busy, timeline=timeline)
