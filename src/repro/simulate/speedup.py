"""Scalability sweeps — Figures 5, 6 and 7.

Reconstructs the paper's two benchmark architectures (Section VIII):

* **3D**: ``CTMCTMCTCT`` — four fully-connected conv layers with
  3x3x3 kernels, rectified-linear transfer layers, two 2x2x2
  max-filtering layers, output patch 12^3, *direct* convolution;
* **2D**: ``CTMCTMCTCTCTCT`` — six conv layers with 11x11 kernels, two
  2x2 max-filterings, output patch 48^2, *FFT* convolution (2D is 3D
  with one singleton dimension).

For each width the computation graph is unrolled into the task
dependency graph and scheduled on a modelled Table V machine by the
discrete-event simulator with the live engine's priority policy;
speedup is measured against the serial work exactly as in the paper
("measurements of the speedup achieved by our proposed parallel
algorithm relative to the serial algorithm").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.builders import build_layered_network
from repro.graph.computation_graph import ComputationGraph
from repro.graph.taskgraph import TaskGraph, build_task_graph
from repro.simulate.des import simulate_schedule
from repro.simulate.machine import MACHINES, MachineSpec, get_machine
from repro.utils.shapes import input_shape_for_output

__all__ = [
    "PAPER_WIDTHS",
    "paper_graph_3d",
    "paper_graph_2d",
    "paper_task_graph",
    "speedup_vs_threads",
    "max_speedup_vs_width",
    "default_thread_counts",
    "SpeedupSweep",
]

#: The widths of Fig 5's lines ("5, 10, 15, 20, 25, 30, 40, 50, 60, 80,
#: 100, 120, from bottom to top").
PAPER_WIDTHS = (5, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100, 120)

_SPEC_3D = "CTMCTMCTCT"
_SPEC_2D = "CTMCTMCTCTCTCT"


def _skip_kernel_layers(spec: str, kernel, window):
    """(kind, window, sparsity) sequence of a skip-kernel net, for
    computing the input size that yields the requested output patch."""
    layers = []
    sparsity = (1, 1, 1)
    for c in spec:
        if c == "C":
            layers.append(("conv", kernel, sparsity))
        elif c == "M":
            layers.append(("filter", window, sparsity))
            sparsity = tuple(s * w for s, w in
                             zip(sparsity, (window,) * 3 if isinstance(window, int)
                                 else window))
        elif c == "T":
            layers.append(("transfer", 1, 1))
    return layers


def paper_graph_3d(width: int, output_patch: int = 12) -> ComputationGraph:
    """The Section VIII 3D benchmark network at *width*."""
    layers = _skip_kernel_layers(_SPEC_3D, kernel=3, window=2)
    in_size = input_shape_for_output((output_patch,) * 3, layers)
    graph = build_layered_network(_SPEC_3D, width=width, kernel=3, window=2,
                                  skip_kernels=True)
    graph.propagate_shapes(in_size)
    return graph


def paper_graph_2d(width: int, output_patch: int = 48) -> ComputationGraph:
    """The Section VIII 2D benchmark network at *width*."""
    layers = _skip_kernel_layers(_SPEC_2D, kernel=(1, 11, 11),
                                 window=(1, 2, 2))
    in_size = input_shape_for_output((1, output_patch, output_patch), layers)
    graph = build_layered_network(_SPEC_2D, width=width, kernel=(1, 11, 11),
                                  window=(1, 2, 2), skip_kernels=True)
    graph.propagate_shapes(in_size)
    return graph


def paper_task_graph(dims: int, width: int) -> TaskGraph:
    """Task graph of the paper's 2D (FFT) or 3D (direct) benchmark net."""
    if dims == 3:
        graph = paper_graph_3d(width)
        mode = "direct"
    elif dims == 2:
        graph = paper_graph_2d(width)
        mode = "fft"
    else:
        raise ValueError(f"dims must be 2 or 3, got {dims}")
    return build_task_graph(graph, conv_mode=mode)


def default_thread_counts(machine: MachineSpec,
                          points: int = 8) -> List[int]:
    """A sensible sweep: dense up to the core count, then the SMT range
    up to the hardware thread count."""
    counts = sorted({1, 2, max(machine.cores // 2, 1), machine.cores,
                     (machine.cores + machine.threads) // 2,
                     machine.threads})
    if points > len(counts):
        step = max(machine.cores // max(points - len(counts), 1), 1)
        extra = set(range(step, machine.cores, step))
        counts = sorted(set(counts) | extra)
    return counts


def speedup_vs_threads(tg: TaskGraph, machine: MachineSpec,
                       thread_counts: Sequence[int],
                       policy: str = "priority") -> List[Tuple[int, float]]:
    """One line of Fig 5: (threads, speedup) for a fixed network."""
    return [(w, simulate_schedule(tg, machine, w, policy=policy).speedup)
            for w in thread_counts]


def max_speedup_vs_width(dims: int, widths: Sequence[int],
                         machine: MachineSpec,
                         policy: str = "priority"
                         ) -> List[Tuple[int, float]]:
    """One line of Fig 6 (2D) / Fig 7 (3D): maximal achieved speedup
    (at the full hardware thread count) per network width."""
    out: List[Tuple[int, float]] = []
    for width in widths:
        tg = paper_task_graph(dims, width)
        result = simulate_schedule(tg, machine, machine.threads,
                                   policy=policy)
        out.append((width, result.speedup))
    return out


@dataclass
class SpeedupSweep:
    """Full Fig 5 panel: speedup vs thread count for several widths on
    one machine."""

    machine_key: str
    dims: int
    data: Dict[int, List[Tuple[int, float]]] = field(default_factory=dict)

    @classmethod
    def run(cls, machine_key: str, dims: int,
            widths: Sequence[int] = PAPER_WIDTHS,
            thread_counts: Optional[Sequence[int]] = None,
            policy: str = "priority") -> "SpeedupSweep":
        machine = get_machine(machine_key)
        if thread_counts is None:
            thread_counts = default_thread_counts(machine)
        sweep = cls(machine_key=machine_key, dims=dims)
        for width in widths:
            tg = paper_task_graph(dims, width)
            sweep.data[width] = speedup_vs_threads(tg, machine,
                                                   thread_counts, policy)
        return sweep

    def rows(self) -> List[Tuple[int, int, float]]:
        """Flat (width, threads, speedup) rows for printing."""
        out = []
        for width in sorted(self.data):
            for threads, speedup in self.data[width]:
                out.append((width, threads, speedup))
        return out
