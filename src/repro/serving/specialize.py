"""Per-layer inference specialization (ZNNi, arXiv:1606.05688 part a).

ZNNi's observation: inference throughput is maximised by choosing the
convolution algorithm and the output-patch size **per layer**, not once
per network — the direct/FFT crossover moves with depth because image
and inverse FFTs amortise over a layer's ``f * f'`` edges differently
at each shape (Mathieu/Henaff/LeCun, arXiv:1312.5851).  This module is
the serving-side planner:

* enumerate candidate 5-smooth input tiles between the dense twin's
  field of view and the request volume (:func:`enumerate_candidate_tiles`);
* for each candidate, walk the twin's layer stack, price every conv
  layer under both backends with the paper's Table I/II FLOP formulas
  divided by a throughput rate — measured per edge from a ``repro
  profile`` cost model (``repro.cost_model/v1``) when one is given,
  the uniform analytic rate otherwise — and keep the cheaper backend
  per layer (:func:`evaluate_candidate`);
* account the candidate's peak working set from the twin's buffer
  shapes (forward images, plus pinned kernel / cached image / summed
  output half-spectra for FFT layers) and reject candidates over the
  memory budget;
* return the throughput-optimal :class:`SpecializationPlan`
  (:func:`plan_specialization`), a pure function of
  ``(spec, cost model, budgets, volume)`` whose JSON serialisation is
  byte-identical across runs.

Cost accounting (per input tile, forward pass only — serving never
runs backward):

* direct conv layer: ``f * f' * n_out^3 * k^3`` FLOPs (Table II);
* FFT conv layer at transform shape ``T`` (the layer's input shape —
  serving builds warm models without transform padding):
  ``C·|T|·log2|T| · (f + f')`` for the ``f`` image FFTs and ``f'``
  inverse FFTs plus ``4·|T| · f·f'`` pointwise products.  Kernel
  spectra are **excluded**: the warm-model registry pins them, so in
  steady state they are transformed once per process, not per tile;
* filtering / transfer / dropout layers: Table I forward FLOPs at the
  layer's input shape, priced at the overall measured rate.

Memory accounting (bytes, per candidate tile):

* ``8 · |tile|`` for the request's input block, plus ``8 · f' · |out|``
  for every layer's forward image (the twin holds all of them);
* per FFT conv layer: ``16 · |rfft(T)| · (f·f' + f + f')`` — pinned
  kernel spectra, cached image spectra and the per-node spectral
  accumulators (half-spectra are complex128).

The determinism contract is layered (docs/serving.md):

* *plan purity* — same (spec, cost model, budgets, volume) in, byte
  identical plan JSON out;
* *bitwise given a plan* — serving under a fixed plan is bitwise
  reproducible across runs, thread counts and tile order;
* *all-direct plans* are bitwise identical to the unspecialized
  direct-mode whole-volume output at **any** tile shape (fixed
  tap-order accumulation is translation covariant), which the golden
  serving digests pin;
* plans that flip an edge to FFT match the direct reference only to
  rounding (an FFT convolution is not bitwise a direct one), and are
  covered by tolerance + reproducibility tests instead.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.builders import LayeredSpec, pool_to_filter_spec
from repro.observability.profile import validate_cost_model
from repro.pram.costs import (
    direct_conv_task_cost,
    fft_cost,
    filter_task_cost,
    pointwise_product_cost,
    transfer_task_cost,
)
from repro.serving.tiler import (
    DEFAULT_TILE_VOXELS,
    PlanInfeasible,
    largest_fast_len,
    normalize_conv_modes,
)
from repro.tensor.fourier import rfft_shape
from repro.utils.shapes import Shape3, as_shape3, valid_conv_shape, voxels

__all__ = [
    "SPECIALIZE_SCHEMA",
    "PlanInfeasible",
    "CostModel",
    "SpecializationPlan",
    "enumerate_candidate_tiles",
    "evaluate_candidate",
    "plan_specialization",
]

SPECIALIZE_SCHEMA = "repro.specialize/v1"

#: Candidate tile lengths kept per axis (largest-first, deterministic
#: thinning).  6 per axis caps the sweep at 216 candidates while always
#: retaining the whole-volume and fov endpoints.
MAX_AXIS_CANDIDATES = 6

_BYTES_REAL = 8  # float64 voxel
_BYTES_COMPLEX = 16  # complex128 half-spectrum voxel


class CostModel:
    """Throughput rates (FLOP/s) for pricing the analytic FLOP counts.

    With no measured document every backend runs at the uniform rate
    1.0, so costs reduce to the paper's pure FLOP comparison.  With a
    ``repro.cost_model/v1`` document (``repro profile``), a layer is
    priced at the achieved rate of its own edges' forward entries when
    present, falling back to the backend's global forward rate, then to
    the overall forward rate — measured data refines, never blocks.

    When every edge of a layer additionally carries a profiled
    ``image_shape``, :meth:`layer_sample` exposes the layer's *measured
    wall-clock per forward* at that shape.  The planner prefers it over
    rate pricing because the per-edge FLOP attribution double-counts
    shared work (each FFT edge is billed a full image transform even
    when the transform cache shares it across the layer's edges), which
    skews a blended rate near the crossover; measured seconds scaled by
    the analytic layer-formula ratio cancel that mismatch.
    """

    def __init__(self, doc: Optional[dict] = None,
                 source: str = "analytic") -> None:
        self.source = source
        # (edge, backend) -> [flops, seconds]; backend -> [flops, seconds]
        self._edge: Dict[Tuple[str, str], List[float]] = {}
        self._backend: Dict[str, List[float]] = {}
        # (edge, backend) -> [seconds, count, image_shape or None]
        self._fwd: Dict[Tuple[str, str], List] = {}
        self._overall = [0.0, 0.0]
        if doc is not None:
            validate_cost_model(doc)
            for entry in doc["entries"]:
                if entry.get("op") != "fwd":
                    continue
                flops = float(entry.get("flops", 0.0))
                seconds = float(entry.get("seconds", 0.0))
                if flops <= 0.0 or seconds <= 0.0:
                    continue
                edge = str(entry["edge"])
                backend = str(entry["backend"])
                self._add(self._edge.setdefault((edge, backend),
                                                [0.0, 0.0]), flops, seconds)
                self._add(self._backend.setdefault(backend, [0.0, 0.0]),
                          flops, seconds)
                self._add(self._overall, flops, seconds)
                shape = entry.get("image_shape")
                shape = tuple(int(v) for v in shape) if shape else None
                sample = self._fwd.setdefault((edge, backend),
                                              [0.0, 0, shape])
                sample[0] += seconds
                sample[1] += int(entry.get("count", 0)) or 1
                if sample[2] != shape:
                    sample[2] = None  # conflicting shapes: unusable

    @staticmethod
    def _add(bucket: List[float], flops: float, seconds: float) -> None:
        bucket[0] += flops
        bucket[1] += seconds

    @classmethod
    def from_file(cls, path: str) -> "CostModel":
        from repro.observability.profile import load_cost_model

        return cls(load_cost_model(path), source=str(path))

    @property
    def measured(self) -> bool:
        return self._overall[1] > 0.0

    def base_rate(self) -> float:
        """Rate for non-conv layers: the overall measured forward
        throughput, or 1.0 (pure FLOPs) without measurements."""
        if self._overall[1] > 0.0:
            return self._overall[0] / self._overall[1]
        return 1.0

    def rate(self, edges: Sequence[str], backend: str) -> float:
        """Achieved FLOP/s for *edges* under *backend* (see class
        docstring for the fallback ladder)."""
        flops = seconds = 0.0
        for edge in edges:
            bucket = self._edge.get((edge, backend))
            if bucket is not None:
                flops += bucket[0]
                seconds += bucket[1]
        if seconds > 0.0:
            return flops / seconds
        bucket = self._backend.get(backend)
        if bucket is not None and bucket[1] > 0.0:
            return bucket[0] / bucket[1]
        return self.base_rate()

    def layer_sample(self, edges: Sequence[str], backend: str
                     ) -> Optional[Tuple[float, Shape3]]:
        """``(seconds per forward, profiled image shape)`` summed over
        *edges* under *backend*, or None unless *every* edge has a
        measured forward entry and all entries agree on the shape.

        The sum of per-edge mean wall-clocks is the layer's true
        steady-state forward cost at that shape — transform-cache
        sharing included, because the edge that pays the shared image
        FFT and the edges that hit the cache are summed as measured.
        """
        seconds = 0.0
        shape: Optional[Shape3] = None
        for edge in edges:
            sample = self._fwd.get((edge, backend))
            if sample is None or sample[1] <= 0 or sample[2] is None:
                return None
            if shape is None:
                shape = sample[2]
            elif sample[2] != shape:
                return None
            seconds += sample[0] / sample[1]
        if shape is None or seconds <= 0.0:
            return None
        return seconds, shape


def _as_cost_model(cost_model) -> CostModel:
    if cost_model is None:
        return CostModel()
    if isinstance(cost_model, CostModel):
        return cost_model
    return CostModel(cost_model, source="doc")


# ---------------------------------------------------------------------------
# The dense twin's layer stack, from the spec alone (no graph build).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Layer:
    """One layer of the dense twin, as the cost walk sees it."""

    kind: str  # conv | transfer | filter | dropout
    index: int  # 1-based position in the (P->M) spec string
    f_in: int
    f_out: int
    kernel: Optional[Shape3]  # conv only
    window: Optional[Shape3]  # filter only
    sparsity: Shape3
    edges: Tuple[str, ...]


def _twin_layers(spec: str, builder_kwargs: Mapping[str, object]
                 ) -> Tuple[_Layer, ...]:
    """Layer stack of the dense-equivalent twin of *spec*, mirroring
    :func:`repro.graph.builders.build_layered_network` with
    ``skip_kernels=True`` — including its edge naming, so measured
    cost-model entries and the emitted mode map key by the same
    names the runtime graph uses."""
    kwargs = dict(builder_kwargs)
    schedule = kwargs.pop("sparsity_schedule", None)
    kwargs.pop("skip_kernels", None)
    filter_spec = pool_to_filter_spec(spec)
    parsed = LayeredSpec(filter_spec, skip_kernels=True, **kwargs)
    explicit = None
    if schedule is not None:
        explicit = [as_shape3(s, name="sparsity") for s in schedule]
        if len(explicit) != parsed.spec.count("C"):
            raise ValueError(
                "sparsity_schedule must have one entry per C layer")
    layers: List[_Layer] = []
    width = parsed.input_nodes
    sparsity: Shape3 = (1, 1, 1)
    ci = wi = 0
    for li, c in enumerate(parsed.spec, start=1):
        if c == "C":
            conv_sparsity = explicit[ci] if explicit is not None else sparsity
            f_out = parsed.widths[ci]
            edges = tuple(f"conv_L{li}_{ii}_{j}"
                          for j in range(f_out) for ii in range(width))
            layers.append(_Layer("conv", li, width, f_out,
                                 parsed.kernels[ci], None, conv_sparsity,
                                 edges))
            width = f_out
            ci += 1
        elif c == "T":
            edges = tuple(f"xfer_L{li}_{j}" for j in range(width))
            layers.append(_Layer("transfer", li, width, width,
                                 None, None, sparsity, edges))
        elif c == "M":
            w = parsed.windows[wi]
            edges = tuple(f"filt_L{li}_{j}" for j in range(width))
            layers.append(_Layer("filter", li, width, width,
                                 None, w, sparsity, edges))
            sparsity = tuple(
                s * wd for s, wd in zip(sparsity, w))  # type: ignore[assignment]
            wi += 1
        elif c == "D":
            edges = tuple(f"drop_L{li}_{j}" for j in range(width))
            layers.append(_Layer("dropout", li, width, width,
                                 None, None, sparsity, edges))
    return tuple(layers)


def _layer_output_shape(layer: _Layer, in_shape: Shape3) -> Shape3:
    if layer.kind == "conv":
        return valid_conv_shape(in_shape, layer.kernel, layer.sparsity)
    if layer.kind == "filter":
        return valid_conv_shape(in_shape, layer.window, layer.sparsity)
    return in_shape


# ---------------------------------------------------------------------------
# Candidate enumeration.
# ---------------------------------------------------------------------------

def _axis_candidates(length: int, floor: int, fast_sizes: bool,
                     cap: int) -> List[int]:
    """Candidate tile lengths for one axis, largest first.

    Always contains the whole axis (degenerate fallback) and the fov
    floor; in between, every 5-smooth length (budget-friendly FFT
    transform sizes), deterministically thinned to *cap* values while
    keeping both endpoints.
    """
    values = {length, floor}
    if fast_sizes:
        n = length
        while len(values) < 4 * cap:
            fast = largest_fast_len(n, floor)
            if fast is None:
                break
            values.add(fast)
            n = fast - 1
    ordered = sorted(values, reverse=True)
    if len(ordered) > cap:
        last = len(ordered) - 1
        picks = sorted({round(i * last / (cap - 1)) for i in range(cap)})
        ordered = [ordered[i] for i in picks]
    return ordered


def enumerate_candidate_tiles(volume_shape: Sequence[int],
                              fov: Sequence[int],
                              tile_voxels: Optional[int] = None,
                              fast_sizes: bool = True,
                              per_axis: int = MAX_AXIS_CANDIDATES
                              ) -> Tuple[Shape3, ...]:
    """The specializer's candidate input tiles for *volume_shape*.

    Per axis: the whole axis, the fov floor, and the 5-smooth lengths
    in between (thinned to *per_axis* values); the cross product is
    filtered by the *tile_voxels* input budget.  Degenerate axes
    (volume at or barely above the fov) contribute only themselves, so
    small volumes fall back to a single whole-volume candidate.  Raises
    :class:`PlanInfeasible` when the volume is below the fov or the
    budget cannot even cover a fov-sized tile.
    """
    v = as_shape3(volume_shape, name="volume_shape")
    f = as_shape3(fov, name="fov")
    if any(vd < fd for vd, fd in zip(v, f)):
        raise PlanInfeasible(
            f"volume {v} smaller than the field of view {f}")
    if tile_voxels is None:
        tile_voxels = DEFAULT_TILE_VOXELS
    if voxels(f) > tile_voxels:
        raise PlanInfeasible(
            f"tile budget of {tile_voxels} voxels cannot cover the "
            f"field of view {f} ({voxels(f)} voxels)")
    if per_axis < 2:
        raise ValueError(f"per_axis must be >= 2, got {per_axis}")
    axes = [_axis_candidates(vd, fd, fast_sizes, per_axis)
            for vd, fd in zip(v, f)]
    tiles: List[Shape3] = []
    for a in axes[0]:
        for b in axes[1]:
            for c in axes[2]:
                if a * b * c <= tile_voxels:
                    tiles.append((a, b, c))
    if not tiles:
        # Endpoint combinations can all overshoot the voxel budget even
        # though the fov tile itself fits: fall back to the tiler's
        # shrink-largest-axis walk, which is budget-feasible by the
        # check above.
        from repro.serving.tiler import choose_tile_shape

        tiles.append(choose_tile_shape(v, f, max_voxels=tile_voxels,
                                       fast_sizes=fast_sizes))
    return tuple(tiles)


# ---------------------------------------------------------------------------
# Candidate evaluation: predicted seconds + working set.
# ---------------------------------------------------------------------------

def _tile_count(volume: Shape3, fov: Shape3, tile: Shape3) -> int:
    """Tiles :func:`repro.core.tiling.tile_plan` emits for this
    geometry: per axis ``ceil(dense / output)`` (the final tile shifts
    back instead of running ragged)."""
    count = 1
    for vd, fd, td in zip(volume, fov, tile):
        dense = vd - fd + 1
        out = td - fd + 1
        count *= -(-dense // out)
    return count


def _layer_seconds(model: CostModel, edges: Sequence[str], backend: str,
                   flops: float, layer_flops) -> float:
    """Predicted seconds for one conv layer under *backend*.

    Preferred path: the layer's measured wall-clock per forward
    (:meth:`CostModel.layer_sample`) scaled by the analytic
    layer-formula ratio between the candidate shape and the profiled
    shape — *layer_flops* is that formula, so the per-edge FLOP
    attribution (which double-counts cache-shared FFT transforms)
    never enters.  Fallback: the rate ladder over the same FLOPs.
    """
    sample = model.layer_sample(edges, backend)
    if sample is not None:
        seconds, shape = sample
        reference = layer_flops(shape)
        if reference > 0.0:
            return flops * seconds / reference
    return flops / model.rate(edges, backend)


def evaluate_candidate(spec: str, builder_kwargs: Mapping[str, object],
                       volume_shape: Sequence[int], tile: Sequence[int],
                       cost_model=None) -> dict:
    """Price one candidate input *tile*: per-layer backend choice,
    predicted seconds over the whole volume, and peak working set.

    Pure and deterministic — this is the single cost function both
    :func:`plan_specialization` and the property-test minimality check
    evaluate, so the planner provably returns the argmin of exactly
    what this computes.
    """
    model = _as_cost_model(cost_model)
    v = as_shape3(volume_shape, name="volume_shape")
    t = as_shape3(tile, name="tile")
    layers = _twin_layers(spec, builder_kwargs)
    base_rate = model.base_rate()
    shape = t
    tile_seconds = 0.0
    working_set = _BYTES_REAL * voxels(t)
    conv_modes: Dict[str, str] = {}
    layer_rows: List[dict] = []
    fov_accum = [1, 1, 1]
    for layer in layers:
        out_shape = _layer_output_shape(layer, shape)
        working_set += _BYTES_REAL * layer.f_out * voxels(out_shape)
        if layer.kind == "conv":
            edges = layer.f_in * layer.f_out

            def direct_layer_flops(x, layer=layer, edges=edges):
                return edges * direct_conv_task_cost(x, layer.kernel,
                                                     layer.sparsity)

            def fft_layer_flops(x, layer=layer, edges=edges):
                return (fft_cost(x) * (layer.f_in + layer.f_out)
                        + pointwise_product_cost(x) * edges)

            direct_flops = direct_layer_flops(shape)
            # Serving warm models transform at the layer's input shape
            # (no fast-size padding); kernel spectra are pinned at warm
            # time, hence absent from the steady-state FLOPs.
            fft_flops = fft_layer_flops(shape)
            direct_seconds = _layer_seconds(
                model, layer.edges, "direct", direct_flops,
                direct_layer_flops)
            fft_seconds = _layer_seconds(
                model, layer.edges, "fft", fft_flops, fft_layer_flops)
            # Ties prefer direct: bitwise-deterministic and free of
            # spectra bookkeeping (same tolerance-free tie rule as the
            # training autotuner).
            mode = "fft" if fft_seconds < direct_seconds else "direct"
            if mode == "fft":
                working_set += (_BYTES_COMPLEX * voxels(rfft_shape(shape))
                                * (edges + layer.f_in + layer.f_out))
            for edge in layer.edges:
                conv_modes[edge] = mode
            tile_seconds += min(direct_seconds, fft_seconds)
            layer_rows.append({
                "layer": layer.index,
                "mode": mode,
                "f_in": layer.f_in,
                "f_out": layer.f_out,
                "kernel": list(layer.kernel),
                "sparsity": list(layer.sparsity),
                "input_shape": list(shape),
                "direct_seconds": direct_seconds,
                "fft_seconds": fft_seconds,
            })
        elif layer.kind == "filter":
            tile_seconds += (layer.f_in
                             * filter_task_cost(shape, layer.window)
                             / base_rate)
        else:  # transfer / dropout: n^3 pointwise
            tile_seconds += (layer.f_in * transfer_task_cost(shape)
                             / base_rate)
        if layer.kind == "conv":
            ke = tuple((k - 1) * s + 1
                       for k, s in zip(layer.kernel, layer.sparsity))
        elif layer.kind == "filter":
            ke = tuple((w - 1) * s + 1
                       for w, s in zip(layer.window, layer.sparsity))
        else:
            ke = (1, 1, 1)
        fov_accum = [fa + k - 1 for fa, k in zip(fov_accum, ke)]
        shape = out_shape
    fov: Shape3 = tuple(fov_accum)  # type: ignore[assignment]
    num_tiles = _tile_count(v, fov, t)
    predicted_seconds = tile_seconds * num_tiles
    dense_voxels = voxels(tuple(vd - fd + 1 for vd, fd in zip(v, fov)))
    return {
        "input_tile": t,
        "fov": fov,
        "num_tiles": num_tiles,
        "conv_modes": conv_modes,
        "layers": layer_rows,
        "tile_seconds": tile_seconds,
        "predicted_seconds": predicted_seconds,
        "predicted_voxels_per_second": (
            dense_voxels / predicted_seconds if predicted_seconds > 0.0
            else math.inf),
        "working_set_bytes": int(working_set),
    }


# ---------------------------------------------------------------------------
# The plan.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpecializationPlan:
    """The chosen per-layer backend map and tile for one model.

    Frozen and built from tuples only, so it is hashable, picklable
    (fleet workers carry plans across process respawns) and
    JSON-stable.  ``conv_modes`` is the sorted ``(edge, mode)`` map the
    warm model must be built with; ``predicted_*`` fields are the cost
    model's forecast for ``volume_shape``, recorded for observability
    (they are *inputs* to the decision, not promises).
    """

    model: str
    volume_shape: Shape3
    fov: Shape3
    input_tile: Shape3
    num_tiles: int
    conv_modes: Tuple[Tuple[str, str], ...]
    layer_modes: Tuple[Tuple[int, str], ...]
    predicted_tile_seconds: float
    predicted_seconds: float
    predicted_voxels_per_second: float
    working_set_bytes: int
    tile_voxels: int
    memory_bytes: Optional[int]
    cost_model: str
    candidates: int

    @property
    def conv_mode_map(self) -> Dict[str, str]:
        return dict(self.conv_modes)

    @property
    def output_tile(self) -> Shape3:
        return tuple(t - f + 1  # type: ignore[return-value]
                     for t, f in zip(self.input_tile, self.fov))

    def uses_fft(self) -> bool:
        return any(mode == "fft" for _, mode in self.conv_modes)

    def covers(self, volume_shape: Sequence[int]) -> bool:
        """Can a volume of this shape be served under this plan?  (The
        tile must fit the volume on every axis; the tile grid itself
        adapts per request.)"""
        try:
            shape = as_shape3(volume_shape, name="volume_shape")
        except (TypeError, ValueError):
            return False
        return all(vd >= td for vd, td in zip(shape, self.input_tile))

    def to_doc(self) -> dict:
        return {
            "schema": SPECIALIZE_SCHEMA,
            "model": self.model,
            "volume_shape": list(self.volume_shape),
            "fov": list(self.fov),
            "input_tile": list(self.input_tile),
            "num_tiles": self.num_tiles,
            "conv_modes": {edge: mode for edge, mode in self.conv_modes},
            "layer_modes": [[index, mode]
                            for index, mode in self.layer_modes],
            "predicted_tile_seconds": self.predicted_tile_seconds,
            "predicted_seconds": self.predicted_seconds,
            "predicted_voxels_per_second": self.predicted_voxels_per_second,
            "working_set_bytes": self.working_set_bytes,
            "tile_voxels": self.tile_voxels,
            "memory_bytes": self.memory_bytes,
            "cost_model": self.cost_model,
            "candidates": self.candidates,
        }

    # deterministic
    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, fixed separators —
        byte-identical for equal plans (the purity contract)."""
        return json.dumps(self.to_doc(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_doc(cls, doc: dict) -> "SpecializationPlan":
        if not isinstance(doc, dict):
            raise ValueError(f"plan document must be a dict, got "
                             f"{type(doc).__name__}")
        if doc.get("schema") != SPECIALIZE_SCHEMA:
            raise ValueError(
                f"schema must be {SPECIALIZE_SCHEMA!r}, got "
                f"{doc.get('schema')!r}")
        modes = normalize_conv_modes(doc["conv_modes"])
        assert modes is not None
        memory = doc.get("memory_bytes")
        return cls(
            model=str(doc["model"]),
            volume_shape=tuple(doc["volume_shape"]),
            fov=tuple(doc["fov"]),
            input_tile=tuple(doc["input_tile"]),
            num_tiles=int(doc["num_tiles"]),
            conv_modes=modes,
            layer_modes=tuple((int(i), str(m))
                              for i, m in doc["layer_modes"]),
            predicted_tile_seconds=float(doc["predicted_tile_seconds"]),
            predicted_seconds=float(doc["predicted_seconds"]),
            predicted_voxels_per_second=float(
                doc["predicted_voxels_per_second"]),
            working_set_bytes=int(doc["working_set_bytes"]),
            tile_voxels=int(doc["tile_voxels"]),
            memory_bytes=None if memory is None else int(memory),
            cost_model=str(doc["cost_model"]),
            candidates=int(doc["candidates"]),
        )

    @classmethod
    def from_file(cls, path: str) -> "SpecializationPlan":
        with open(path) as fh:
            return cls.from_doc(json.load(fh))


# deterministic
def plan_specialization(spec, volume_shape: Sequence[int],
                        cost_model=None,
                        tile_voxels: Optional[int] = None,
                        memory_bytes: Optional[int] = None,
                        fast_sizes: bool = True) -> SpecializationPlan:
    """Choose the throughput-optimal per-layer backend map and input
    tile for serving *spec* on volumes of *volume_shape*.

    *spec* is a :class:`repro.serving.registry.ModelSpec`;
    *cost_model* is None (analytic: the paper's FLOP formulas at rate
    1.0), a validated ``repro.cost_model/v1`` dict, or a
    :class:`CostModel`.  *tile_voxels* caps the input tile (the
    tiler's budget); *memory_bytes* additionally caps the estimated
    peak working set of the whole twin.  Raises
    :class:`PlanInfeasible` when no candidate satisfies both.

    A pure function of its arguments: candidates are enumerated and
    priced deterministically, and ties break toward fewer tiles, then
    the larger tile, then lexicographically — so repeated runs emit
    byte-identical plan JSON.
    """
    if tile_voxels is None:
        tile_voxels = DEFAULT_TILE_VOXELS
    model = _as_cost_model(cost_model)
    candidates = enumerate_candidate_tiles(
        volume_shape, spec.fov, tile_voxels=tile_voxels,
        fast_sizes=fast_sizes)
    best = None
    best_key = None
    over_budget = 0
    for tile in candidates:
        result = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                    volume_shape, tile, model)
        if (memory_bytes is not None
                and result["working_set_bytes"] > memory_bytes):
            over_budget += 1
            continue
        key = (result["predicted_seconds"], result["num_tiles"],
               -voxels(tile), tile)
        if best_key is None or key < best_key:
            best, best_key = result, key
    if best is None:
        raise PlanInfeasible(
            f"no candidate tile fits the memory budget of "
            f"{memory_bytes} bytes ({over_budget} candidates tried; "
            f"smallest working sets exceed it)")
    layer_modes = tuple((row["layer"], row["mode"])
                        for row in best["layers"])
    return SpecializationPlan(
        model=spec.name,
        volume_shape=as_shape3(volume_shape, name="volume_shape"),
        fov=best["fov"],
        input_tile=best["input_tile"],
        num_tiles=best["num_tiles"],
        conv_modes=normalize_conv_modes(best["conv_modes"]),  # type: ignore[arg-type]
        layer_modes=layer_modes,
        predicted_tile_seconds=best["tile_seconds"],
        predicted_seconds=best["predicted_seconds"],
        predicted_voxels_per_second=best["predicted_voxels_per_second"],
        working_set_bytes=best["working_set_bytes"],
        tile_voxels=tile_voxels,
        memory_bytes=memory_bytes,
        cost_model=model.source,
        candidates=len(candidates),
    )
