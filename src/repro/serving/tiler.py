"""Tiling planner for dense-inference serving.

A serving request may carry a volume far larger than one forward pass
should hold in memory.  The planner splits it into overlapping input
tiles — each tile extends its output block by the network's field of
view minus one per axis, so adjacent tiles compute *identical* values
on shared voxels (translation covariance) and stitching is exact,
bit for bit in direct-convolution mode.

The tile-shape choice is where ZNNi's output-patch analysis
(arXiv:1606.05688) enters: inference throughput on CPU is maximised by
the largest output patch that fits the memory budget, and FFT-based
layers additionally want transform sizes that are 5-smooth
(:func:`repro.tensor.fourier.next_fast_len`).  :func:`choose_tile_shape`
therefore picks, per axis, the largest 5-smooth input size that fits
the volume, then shrinks axes (largest first, staying 5-smooth where
possible) until the voxel budget is met.  All tiles share one input
shape — the warm model is built once per (model, tile shape) — and the
last tile per axis shifts back to end at the volume boundary,
re-computing a few voxels instead of running a ragged partial tile
(exact for the same covariance reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.tiling import tile_plan
from repro.observability.tracing import get_tracer
from repro.tensor.fourier import next_fast_len
from repro.utils.shapes import Shape3, as_shape3, voxels

__all__ = [
    "DEFAULT_TILE_VOXELS",
    "PlanInfeasible",
    "largest_fast_len",
    "choose_tile_shape",
    "normalize_conv_modes",
    "TilePlan",
    "plan_volume",
    "run_plan",
]

#: Default input-tile voxel budget: 2^21 voxels = 16 MiB of float64 per
#: tile image, a comfortable per-request working set that still keeps
#: FFT transforms well inside L3 on the paper's machines.
DEFAULT_TILE_VOXELS = 1 << 21


class PlanInfeasible(ValueError):
    """No tile plan satisfies the request's geometry or budget.

    Raised when the volume is smaller than the field of view on some
    axis (no output voxel exists), when the voxel budget is below
    ``prod(fov)`` (every tile must cover the fov, so the budget is
    unsatisfiable — silently returning a fov-sized, over-budget tile
    would hide the violation), or when a candidate tile would yield a
    non-positive output extent (``tile < fov`` on an axis: the halo
    math would produce negative core extents).  A subclass of
    :class:`ValueError` so pre-existing callers that caught the old
    geometry errors keep working.
    """


def largest_fast_len(n: int, floor: int = 1) -> Optional[int]:
    """Largest 5-smooth integer in ``[floor, n]``, or None if none
    exists (the dual of :func:`repro.tensor.fourier.next_fast_len`)."""
    if floor > n:
        return None
    for candidate in range(n, floor - 1, -1):
        if next_fast_len(candidate) == candidate:
            return candidate
    return None


def choose_tile_shape(volume_shape: Sequence[int], fov: Sequence[int],
                      max_voxels: Optional[int] = None,
                      fast_sizes: bool = True) -> Shape3:
    """Input tile shape for tiling *volume_shape* with a network of
    field of view *fov*.

    Per axis the tile is at least ``fov`` (the minimum input producing
    any output) and at most the volume.  With *fast_sizes* the planner
    prefers 5-smooth sizes; axes are shrunk largest-first until the
    tile fits *max_voxels*.  fov is a hard floor, so a budget smaller
    than ``prod(fov)`` is unsatisfiable and raises
    :class:`PlanInfeasible` (it used to silently return an over-budget
    fov-sized tile, which hid real memory-budget violations).
    """
    v = as_shape3(volume_shape, name="volume_shape")
    f = as_shape3(fov, name="fov")
    if any(vd < fd for vd, fd in zip(v, f)):
        raise PlanInfeasible(
            f"volume {v} smaller than the field of view {f}")
    if max_voxels is None:
        max_voxels = DEFAULT_TILE_VOXELS
    if voxels(f) > max_voxels:
        raise PlanInfeasible(
            f"tile budget of {max_voxels} voxels cannot cover the "
            f"field of view {f} ({voxels(f)} voxels); every tile must "
            f"be at least fov-sized")

    def best(n: int, floor: int) -> int:
        if not fast_sizes:
            return n
        fast = largest_fast_len(n, floor)
        return fast if fast is not None else n

    tile = [best(vd, fd) for vd, fd in zip(v, f)]
    while voxels(tile) > max_voxels:
        # Shrink the axis with the most room above its fov floor.
        axis = max(range(3), key=lambda a: tile[a] - f[a])
        if tile[axis] <= f[axis]:
            break  # every axis is at its floor
        shrunk = best(tile[axis] - 1, f[axis])
        if shrunk >= tile[axis]:
            shrunk = tile[axis] - 1
        tile[axis] = max(shrunk, f[axis])
    return tuple(tile)  # type: ignore[return-value]


@dataclass(frozen=True)
class TilePlan:
    """A fully-resolved tiling of one volume.

    ``tiles`` are ``(input_corner, output_corner)`` pairs; every tile
    reads ``input_tile`` voxels starting at its input corner and writes
    ``output_tile`` voxels of the dense output starting at its output
    corner (corners coincide because output = input − fov + 1).

    ``conv_modes``, when set, is the per-conv-edge backend map the plan
    was made for (ZNNi per-layer specialization,
    :mod:`repro.serving.specialize`) as a sorted ``(edge, mode)``
    tuple; :func:`run_plan` then refuses a network whose modes
    disagree — running a plan costed for one backend mix on another
    silently voids both the throughput prediction and the determinism
    contract.
    """

    volume_shape: Shape3
    fov: Shape3
    input_tile: Shape3
    output_tile: Shape3
    dense_shape: Shape3
    tiles: List[Tuple[Shape3, Shape3]] = field(repr=False)
    conv_modes: Optional[Tuple[Tuple[str, str], ...]] = None

    def __post_init__(self) -> None:
        if any(o < 1 for o in self.output_tile):
            raise PlanInfeasible(
                f"input tile {self.input_tile} is below the field of "
                f"view {self.fov}: output tile {self.output_tile} has "
                f"a non-positive extent")

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def conv_mode_map(self) -> Optional[dict]:
        """``conv_modes`` as the dict :class:`repro.core.Network`
        accepts, or None when the plan is mode-agnostic."""
        if self.conv_modes is None:
            return None
        return dict(self.conv_modes)

    @property
    def tile_input_voxels(self) -> int:
        return voxels(self.input_tile)

    @property
    def halo(self) -> Shape3:
        """Per-axis overlap between adjacent input tiles."""
        return tuple(f - 1 for f in self.fov)  # type: ignore[return-value]

    @property
    def recompute_fraction(self) -> float:
        """Fraction of tile-input voxels read more than once (the halo
        overhead the ZNNi output-patch trade-off is about)."""
        total = self.num_tiles * self.tile_input_voxels
        return 1.0 - voxels(self.volume_shape) / total if total else 0.0


def normalize_conv_modes(conv_modes: Optional[Mapping[str, str]]
                         ) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Per-edge mode mapping -> the canonical sorted, hashable tuple
    used by :class:`TilePlan` and warm-model cache keys (None passes
    through: mode-agnostic)."""
    if conv_modes is None:
        return None
    pairs = conv_modes.items() if hasattr(conv_modes, "items") \
        else conv_modes
    items = sorted((str(k), str(v)) for k, v in pairs)
    for _, mode in items:
        if mode not in ("direct", "fft"):
            raise ValueError(
                f"conv modes must be direct|fft, got {mode!r}")
    return tuple(items)


def plan_volume(volume_shape: Sequence[int], fov: Sequence[int],
                max_voxels: Optional[int] = None,
                fast_sizes: bool = True,
                conv_modes: Optional[Mapping[str, str]] = None) -> TilePlan:
    """Plan a seam-free tiling of *volume_shape* for a network of field
    of view *fov*.

    *conv_modes* optionally records the per-conv-edge backend map the
    plan is intended for (see :class:`TilePlan.conv_modes`); the tile
    search itself is mode-independent.
    """
    v = as_shape3(volume_shape, name="volume_shape")
    f = as_shape3(fov, name="fov")
    input_tile = choose_tile_shape(v, f, max_voxels=max_voxels,
                                   fast_sizes=fast_sizes)
    output_tile = tuple(t - fd + 1 for t, fd in zip(input_tile, f))
    dense_shape = tuple(vd - fd + 1 for vd, fd in zip(v, f))
    tiles = list(tile_plan(v, input_tile, output_tile))
    return TilePlan(volume_shape=v, fov=f,
                    input_tile=input_tile,  # type: ignore[arg-type]
                    output_tile=output_tile,  # type: ignore[arg-type]
                    dense_shape=dense_shape,  # type: ignore[arg-type]
                    tiles=tiles,
                    conv_modes=normalize_conv_modes(conv_modes))


# deterministic
def run_plan(network, volume: np.ndarray, plan: TilePlan,
             progress=None) -> np.ndarray:
    """Execute *plan* with *network* (whose input shape must equal the
    plan's tile) and stitch the seam-free dense output.

    ``progress(done, total)`` is called after each tile.  In direct
    convolution mode the stitched result is bitwise identical to a
    single forward pass over the whole volume (property-tested in
    ``tests/serving/test_tiled_equivalence.py``).
    """
    if volume.shape != plan.volume_shape:
        raise ValueError(
            f"volume {volume.shape} does not match plan "
            f"{plan.volume_shape}")
    in_shape = network.input_nodes[0].shape
    if tuple(in_shape) != plan.input_tile:
        raise ValueError(
            f"network input {tuple(in_shape)} does not match plan tile "
            f"{plan.input_tile}")
    if plan.conv_modes is not None:
        actual = getattr(network, "conv_modes", {})
        for edge, mode in plan.conv_modes:
            if actual.get(edge) != mode:
                raise ValueError(
                    f"plan expects edge {edge!r} in {mode!r} mode but "
                    f"the network runs it in {actual.get(edge)!r}; "
                    f"build the warm model from the plan's mode map")
    out_name = network.output_nodes[0].name
    o = plan.output_tile
    dense = np.empty(plan.dense_shape, dtype=np.float64)
    tracer = get_tracer()
    for index, (ic, oc) in enumerate(plan.tiles):
        block = volume[ic[0]:ic[0] + in_shape[0],
                       ic[1]:ic[1] + in_shape[1],
                       ic[2]:ic[2] + in_shape[2]]
        block = np.ascontiguousarray(block)
        if tracer.enabled:
            # Child of the caller's span (the serving "serve" span);
            # the network's fwd tasks capture this tile span in turn.
            with tracer.span(f"tile:{index}", category="tile",
                             corner=list(ic), tile=index,
                             tiles=len(plan.tiles)):
                tile = network.forward(block)[out_name]
        else:
            tile = network.forward(block)[out_name]
        dense[oc[0]:oc[0] + o[0],
              oc[1]:oc[1] + o[1],
              oc[2]:oc[2] + o[2]] = tile
        if progress is not None:
            progress(index + 1, len(plan.tiles))
    return dense
