"""Model registry and warm dense-twin cache.

A serving process answers requests with the *dense-equivalent twin*
(Fig 2) of a trained max-pooling network: max-filtering layers plus
skip-kernel convolutions computing the sliding-window output in one
pass.  Building that twin — graph construction, parameter restore,
FFT kernel transforms — is far too slow to repeat per request, so the
registry keeps **warm models**: one fully-built twin per
``(model name, input tile shape)``, kept in an LRU cache.

Warm means warm all the way down:

* the checkpoint is loaded once (trainable edge names are stable under
  the P→M substitution, so a pooling-net checkpoint restores directly
  into the twin without ever instantiating the pooling net);
* the network's :class:`~repro.tensor.fft_cache.TransformCache` has the
  ``"ker"`` kind *pinned* and a throwaway forward pass is run at build
  time, so in FFT mode every kernel spectrum is transformed exactly
  once per process, not once per request (the serving analogue of the
  paper's per-round memoization);
* the tile shape is fixed per warm model (networks have static shapes),
  which is why the tiler quantises volumes onto shared tile shapes.

Networks are not reentrant; each :class:`WarmModel` carries a lock and
all inference goes through :meth:`WarmModel.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.runtime import make_lock
from repro.core.inference import dense_network_field_of_view
from repro.core.network import Network
from repro.core.serialization import load_network
from repro.core.tiling import tile_plan
from repro.graph.builders import build_layered_network, pool_to_filter_spec
from repro.graph.specfile import load_layered_kwargs
from repro.observability.metrics import get_registry
from repro.serving.specialize import SpecializationPlan
from repro.serving.tiler import (
    DEFAULT_TILE_VOXELS,
    TilePlan,
    normalize_conv_modes,
    plan_volume,
    run_plan,
)
from repro.utils.shapes import Shape3, as_shape3

__all__ = ["ModelSpec", "WarmModel", "ModelRegistry"]


@dataclass(frozen=True)
class ModelSpec:
    """Everything needed to (re)build one servable model.

    ``builder_kwargs`` are the layered-builder arguments *minus* the
    spec string (``width``, ``kernel``, ``window``, ...); serving
    always builds the skip-kernel twin, so any ``skip_kernels`` flag
    the training spec carried is dropped.

    ``seed`` fixes the weight initialisation when no checkpoint is
    given.  A spec must rebuild to the *same* network wherever and
    whenever it is built — fleet workers each build their own copy,
    and a restarted worker rebuilds from scratch; unseeded random
    weights would silently break the failover bitwise-identity
    contract for checkpoint-less models.
    """

    name: str
    spec: str
    checkpoint: Optional[str] = None
    conv_mode: str = "fft"
    builder_kwargs: Dict[str, object] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def from_files(cls, name: str, spec_path, checkpoint: Optional[str] = None,
                   conv_mode: str = "fft", seed: int = 0) -> "ModelSpec":
        """Load a :class:`ModelSpec` from a ``[layered]`` spec file."""
        kwargs = dict(load_layered_kwargs(spec_path))
        spec = str(kwargs.pop("spec"))
        kwargs.pop("skip_kernels", None)
        return cls(name=name, spec=spec, checkpoint=checkpoint,
                   conv_mode=conv_mode, builder_kwargs=kwargs, seed=seed)

    @property
    def fov(self) -> Shape3:
        """Field of view of the dense twin (per-axis minimum input)."""
        return dense_network_field_of_view(self.spec, **self.builder_kwargs)


class WarmModel:
    """A dense twin built at one fixed input-tile shape, ready to run.

    Construction does all the slow work: graph build, checkpoint
    restore, kernel-spectrum pinning plus a prewarming forward pass.
    :meth:`run` then only pays per-tile FFTs of the request data.
    """

    def __init__(self, spec: ModelSpec, input_tile,
                 num_workers: int = 1, prewarm: bool = True,
                 conv_modes: Optional[Mapping[str, str]] = None) -> None:
        self.spec = spec
        self.input_tile = as_shape3(input_tile, name="input_tile")
        self.fov = spec.fov
        #: Per-edge backend override (a specialization plan's mode map);
        #: None serves every conv edge in ``spec.conv_mode``.
        self.conv_modes = normalize_conv_modes(conv_modes)
        kwargs = dict(spec.builder_kwargs)
        kwargs.pop("sparsity_schedule", None)
        graph = build_layered_network(pool_to_filter_spec(spec.spec),
                                      skip_kernels=True, **kwargs)
        mode = (dict(self.conv_modes) if self.conv_modes is not None
                else spec.conv_mode)
        self.network = Network(graph, input_shape=self.input_tile,
                               conv_mode=mode,
                               num_workers=num_workers,
                               seed=spec.seed,
                               deterministic_sums=True)
        if spec.checkpoint is not None:
            load_network(self.network, spec.checkpoint)
        self.output_tile: Shape3 = tuple(
            t - f + 1 for t, f in zip(self.input_tile, self.fov)
        )  # type: ignore[assignment]
        self._lock = make_lock("serving.warm_model")
        # Kernels are frozen at serving time: pin their spectra so they
        # survive the per-forward next_round() eviction, then compute
        # them all once with a throwaway pass.  Pin only when the mode
        # map actually uses FFT somewhere — an all-direct twin computes
        # no spectra, so pinning and the throwaway pass would be pure
        # build-time waste.
        uses_fft = "fft" in self.network.conv_modes.values()
        if uses_fft:
            self.network.cache.pin_kind("ker")
            if prewarm:
                self.network.forward(
                    np.zeros(self.input_tile, dtype=np.float64))

    def run(self, volume: np.ndarray, plan: Optional[TilePlan] = None,
            progress=None) -> np.ndarray:
        """Tiled dense inference over *volume* (thread-safe).

        With no *plan* one is derived for this model's tile shape; the
        volume must then tile exactly with ``input_tile`` (the pipeline
        always plans first, via :meth:`plan`).
        """
        if plan is None:
            plan = self.plan(volume.shape)
        with self._lock:
            return run_plan(self.network, volume, plan, progress=progress)

    def plan(self, volume_shape) -> TilePlan:
        """A :class:`~repro.serving.tiler.TilePlan` of *volume_shape*
        using this model's fixed tile (no tile-shape search)."""
        shape = as_shape3(volume_shape, name="volume_shape")
        if any(v < t for v, t in zip(shape, self.input_tile)):
            raise ValueError(
                f"volume {shape} smaller than this warm model's tile "
                f"{self.input_tile}")
        dense_shape: Shape3 = tuple(
            v - f + 1 for v, f in zip(shape, self.fov)
        )  # type: ignore[assignment]
        tiles = list(tile_plan(shape, self.input_tile, self.output_tile))
        return TilePlan(volume_shape=shape, fov=self.fov,
                        input_tile=self.input_tile,
                        output_tile=self.output_tile,
                        dense_shape=dense_shape, tiles=tiles,
                        conv_modes=self.conv_modes)

    def close(self) -> None:
        with self._lock:
            self.network.close()


class ModelRegistry:
    """Named model specs plus an LRU cache of warm models.

    The cache key is ``(model name, input tile shape, mode signature)``:
    the same model served at two tile shapes — or under two
    specialization mode maps — is two warm entries (networks have
    static shapes and static per-edge backends).  ``max_models`` bounds
    the number of warm twins held; building past the cap evicts the
    least-recently-used entry and closes its network.  All mutation
    happens under one lock — a build can take a while, but serialising
    builds also deduplicates them, and steady-state requests only pay a
    dict hit.

    A model may additionally carry one
    :class:`~repro.serving.specialize.SpecializationPlan`
    (:meth:`set_plan`); the pipeline and :meth:`prewarm_all` then build
    its warm twin at the plan's tile with the plan's per-edge modes.
    """

    def __init__(self, max_models: int = 4, num_workers: int = 1,
                 prewarm: bool = True) -> None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        self.max_models = max_models
        self.num_workers = num_workers
        self.prewarm = prewarm
        self._lock = make_lock("serving.registry")
        self._specs: Dict[str, ModelSpec] = {}  # guarded-by: _lock
        self._plans: Dict[str, SpecializationPlan] = {}  # guarded-by: _lock
        self._warm: Dict[Tuple[str, Shape3, Optional[tuple]], WarmModel] = {}  # guarded-by: _lock
        reg = get_registry()
        self._m_hit = reg.counter("serving.model_cache.hit")
        self._m_miss = reg.counter("serving.model_cache.miss")
        self._m_evicted = reg.counter("serving.model_cache.evicted")
        self._m_entries = reg.gauge("serving.model_cache.entries")

    def register(self, spec: ModelSpec) -> ModelSpec:
        """Add (or replace) a model spec; replacing invalidates any
        warm twins built from the old spec — and any specialization
        plan, which was costed for the old spec's graph."""
        with self._lock:
            previous = self._specs.get(spec.name)
            self._specs[spec.name] = spec
            stale = []
            if previous is not None and previous != spec:
                self._plans.pop(spec.name, None)
                stale = [k for k in self._warm if k[0] == spec.name]
                for key in stale:
                    self._warm.pop(key).close()
                    self._m_evicted.inc()
                self._m_entries.set(len(self._warm))
        return spec

    def set_plan(self, plan: SpecializationPlan) -> SpecializationPlan:
        """Attach a specialization plan to its (registered) model.

        The pipeline serves every ``plan.covers()``-compatible request
        for that model under the plan's tile and per-edge modes from
        now on; requests the plan cannot cover (a volume smaller than
        the plan's tile) fall back to the generic single-mode path.
        """
        with self._lock:
            if plan.model not in self._specs:
                raise KeyError(
                    f"unknown model {plan.model!r}; registered: "
                    f"{sorted(self._specs)}")
            self._plans[plan.model] = plan
        return plan

    def plan_for(self, name: str) -> Optional[SpecializationPlan]:
        with self._lock:
            return self._plans.get(name)

    def plans(self) -> list:
        """Every attached plan (model-name-sorted copy) — the fleet
        restart contract's companion to :meth:`specs`: plans are
        picklable, so a respawned worker re-specializes exactly as the
        dead one did."""
        with self._lock:
            return [self._plans[name] for name in sorted(self._plans)]

    def model_names(self):
        with self._lock:
            return sorted(self._specs)

    def specs(self) -> list:
        """Every registered :class:`ModelSpec` (name-sorted copy).

        This is the fleet supervisor's restart contract: specs are
        picklable, so a respawned worker process rebuilds (and
        re-prewarms) exactly the models the dead worker served.
        """
        with self._lock:
            return [self._specs[name] for name in sorted(self._specs)]

    def prewarm_all(self, volume_shape,
                    tile_voxels: int = DEFAULT_TILE_VOXELS) -> dict:
        """Build the warm twin of every registered model at the tile
        shape a *volume_shape* request would use.

        Returns ``{model name: input tile}``.  A restarted fleet worker
        calls this before reporting ready, so the first request it
        serves after a crash pays no cold-build latency.  Models with a
        specialization plan covering *volume_shape* prewarm at the
        plan's tile and per-edge modes — the twin the pipeline will
        actually use.
        """
        tiles = {}
        for name in self.model_names():
            splan = self.plan_for(name)
            if splan is not None and splan.covers(volume_shape):
                self.warm(name, splan.input_tile,
                          conv_modes=splan.conv_mode_map)
                tiles[name] = splan.input_tile
                continue
            plan = plan_volume(volume_shape, self.fov(name),
                               max_voxels=tile_voxels)
            self.warm(name, plan.input_tile)
            tiles[name] = plan.input_tile
        return tiles

    def spec(self, name: str) -> ModelSpec:
        with self._lock:
            try:
                return self._specs[name]
            except KeyError:
                raise KeyError(
                    f"unknown model {name!r}; registered: "
                    f"{sorted(self._specs)}") from None

    def fov(self, name: str) -> Shape3:
        return self.spec(name).fov

    def warm(self, name: str, input_tile,
             conv_modes: Optional[Mapping[str, str]] = None) -> WarmModel:
        """The warm twin of *name* at *input_tile* (and, optionally, a
        specialization mode map), building on miss."""
        tile = as_shape3(input_tile, name="input_tile")
        signature = normalize_conv_modes(conv_modes)
        key = (name, tile, signature)
        with self._lock:
            model = self._warm.get(key)
            if model is not None:
                # Refresh recency: re-insert at the MRU end.
                del self._warm[key]
                self._warm[key] = model
                self._m_hit.inc()
                return model
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(
                    f"unknown model {name!r}; registered: "
                    f"{sorted(self._specs)}")
            self._m_miss.inc()
            model = WarmModel(spec, tile, num_workers=self.num_workers,
                              prewarm=self.prewarm, conv_modes=signature)
            while len(self._warm) >= self.max_models:
                _, evicted = self._pop_lru_locked()
                evicted.close()
                self._m_evicted.inc()
            self._warm[key] = model
            self._m_entries.set(len(self._warm))
            return model

    def _pop_lru_locked(self) -> Tuple[tuple, WarmModel]:
        key = next(iter(self._warm))
        return key, self._warm.pop(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._warm)

    def close(self) -> None:
        """Close every warm model and forget the cache."""
        with self._lock:
            warm = list(self._warm.values())
            self._warm.clear()
            self._m_entries.set(0)
        for model in warm:
            model.close()
