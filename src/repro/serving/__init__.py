"""Dense-inference serving: tiling planner, warm model cache, request
pipeline with backpressure, and in-process/HTTP clients.

The training side of the repo reproduces the paper; this package is the
ROADMAP's production leg — the path from "trained checkpoint" to
"answered request".  Volumes of any size are split into overlapping
FFT-fast tiles (:mod:`repro.serving.tiler`), run through warm
dense-equivalent twins (:mod:`repro.serving.registry`), and scheduled
through a bounded, micro-batching pipeline with explicit backpressure
(:mod:`repro.serving.pipeline`).  A multi-process, fault-tolerant
fleet (:mod:`repro.serving.fleet` + :mod:`repro.serving.supervisor`)
routes requests over N supervised worker processes with consistent-hash
model affinity, heartbeat health checks, crash/hang failover, tiered
load shedding and graceful drain.  See ``docs/serving.md``.
"""

from repro.serving.client import (
    HttpServingClient,
    ServingClient,
    decode_array,
    encode_array,
)
from repro.serving.fleet import FleetRequest, FleetServer, HashRing
from repro.serving.http import ServingHTTPServer, serve_http
from repro.serving.pipeline import (
    ADMISSION_FRACTIONS,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    DeadlineExceeded,
    InferenceServer,
    PendingRequest,
    ServerClosed,
    ServerDraining,
    ServerOverloaded,
    ServingError,
    admission_limit,
)
from repro.serving.registry import ModelRegistry, ModelSpec, WarmModel
from repro.serving.specialize import (
    CostModel,
    SpecializationPlan,
    enumerate_candidate_tiles,
    evaluate_candidate,
    plan_specialization,
)
from repro.serving.supervisor import (
    Supervisor,
    SupervisorConfig,
    WorkerConfig,
)
from repro.serving.tiler import (
    DEFAULT_TILE_VOXELS,
    PlanInfeasible,
    TilePlan,
    choose_tile_shape,
    largest_fast_len,
    normalize_conv_modes,
    plan_volume,
    run_plan,
)

__all__ = [
    "FleetRequest",
    "FleetServer",
    "HashRing",
    "Supervisor",
    "SupervisorConfig",
    "WorkerConfig",
    "ADMISSION_FRACTIONS",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ServerDraining",
    "admission_limit",
    "HttpServingClient",
    "ServingClient",
    "decode_array",
    "encode_array",
    "ServingHTTPServer",
    "serve_http",
    "DeadlineExceeded",
    "InferenceServer",
    "PendingRequest",
    "ServerClosed",
    "ServerOverloaded",
    "ServingError",
    "ModelRegistry",
    "ModelSpec",
    "WarmModel",
    "CostModel",
    "SpecializationPlan",
    "enumerate_candidate_tiles",
    "evaluate_candidate",
    "plan_specialization",
    "DEFAULT_TILE_VOXELS",
    "PlanInfeasible",
    "TilePlan",
    "choose_tile_shape",
    "largest_fast_len",
    "normalize_conv_modes",
    "plan_volume",
    "run_plan",
]
