"""Request pipeline: bounded admission, micro-batching, backpressure.

The serving pipeline is deliberately small and explicit:

* **Bounded admission queue.**  :meth:`InferenceServer.submit` either
  accepts a request into a bounded FIFO or *rejects it immediately*
  with :class:`ServerOverloaded`, carrying a ``retry_after`` hint
  derived from the queue depth and an EWMA of recent service times.
  Rejecting at admission is the backpressure contract: a client always
  learns the fate of its request — nothing is silently dropped, even
  on shutdown (pending requests are failed with :class:`ServerClosed`).

* **Micro-batching.**  A worker dequeues the oldest request, then
  opportunistically drags along up to ``max_batch - 1`` younger
  requests *for the same model*.  The batch shares one warm-model
  lookup and runs under one model lock acquisition, so same-model
  bursts amortise all per-request setup (the registry's whole point).

* **Worker pool on the TaskEngine.**  Workers are long-lived
  ``serve:worker`` tasks on a :class:`repro.scheduler.TaskEngine` —
  the paper's execution machinery reused unchanged, which also means
  engine metrics (busy/idle seconds, task families) cover serving for
  free.

* **Deadlines.**  A request may carry a timeout; if it is still queued
  when its deadline passes, the worker fails it with
  :class:`DeadlineExceeded` instead of wasting compute on an answer
  nobody is waiting for.

* **Retries.**  An optional :class:`repro.resilience.RetryPolicy`
  re-runs a failed request body (fresh attempt, same warm model) with
  the policy's backoff before the error is surfaced to the client.

* **Tiered load shedding.**  Requests carry a priority (0 = high,
  1 = normal, 2 = low).  Each tier may only fill a fraction of the
  admission queue (:data:`ADMISSION_FRACTIONS`), so under sustained
  overload the lowest-priority tenants are rejected first while
  high-priority traffic still finds queue space.

* **Graceful drain.**  :meth:`InferenceServer.begin_drain` stops
  admitting (new submissions fail with :class:`ServerDraining`, which
  clients must *not* retry against this server) while queued and
  in-flight requests keep running; :meth:`InferenceServer.drain` then
  waits for the queue to empty before stopping — zero accepted
  requests are dropped by a drain.

Everything is observable: ``serving.queue.depth``,
``serving.requests.{accepted,rejected,shed,completed,failed,
deadline_missed,retried}``, and latency histograms
``serving.queue_wait_seconds``, ``serving.run_seconds``,
``serving.latency_seconds``, ``serving.batch_size``.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.analysis.runtime import make_condition, make_lock
from repro.observability.metrics import get_registry
from repro.observability.slo import SLOTracker
from repro.observability.tracing import get_tracer
from repro.resilience.retry import RetryPolicy
from repro.scheduler.engine import TaskEngine
from repro.serving.registry import ModelRegistry
from repro.serving.tiler import DEFAULT_TILE_VOXELS, plan_volume

__all__ = [
    "ServingError",
    "ServerOverloaded",
    "ServerClosed",
    "ServerDraining",
    "DeadlineExceeded",
    "PendingRequest",
    "InferenceServer",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "ADMISSION_FRACTIONS",
    "admission_limit",
]

#: Request priority tiers.  Lower value = more important.  Under
#: overload the *highest-numbered* tiers are shed first.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Fraction of the admission queue each priority tier may fill.  A
#: tier-p submission is shed once the queue depth reaches
#: ``max_queue * ADMISSION_FRACTIONS[p]`` — so when the queue is half
#: full, low-priority tenants are already rejected while normal and
#: high traffic still gets in.
ADMISSION_FRACTIONS = {
    PRIORITY_HIGH: 1.0,
    PRIORITY_NORMAL: 0.85,
    PRIORITY_LOW: 0.5,
}


def admission_limit(priority: int, max_queue: int) -> int:
    """Queue depth at which tier-*priority* submissions are shed.

    Rounds up: on small queues a 0.85 fraction must not cost the
    normal tier a slot it would have had before tiers existed.
    """
    try:
        fraction = ADMISSION_FRACTIONS[priority]
    except KeyError:
        raise ValueError(
            f"priority must be one of {sorted(ADMISSION_FRACTIONS)}, "
            f"got {priority!r}") from None
    return max(1, math.ceil(max_queue * fraction))


class ServingError(Exception):
    """Base class for serving-layer failures."""


class ServerOverloaded(ServingError):
    """The admission queue is full; retry after ``retry_after`` seconds.

    This is backpressure, not failure: the request was never accepted,
    so the client may safely resubmit.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerClosed(ServingError):
    """The server was stopped; the request was not (or will not be) run."""


class ServerDraining(ServerClosed):
    """The server is draining for shutdown: it no longer admits new
    requests (in-flight ones still finish).  A subclass of
    :class:`ServerClosed` so clients treat it as terminal for this
    server rather than retrying against it.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ServingError):
    """The request's deadline passed while it waited in the queue."""


class PendingRequest:
    """Handle for one accepted request; resolves to a dense output."""

    _ids = itertools.count(1)

    def __init__(self, model: str, volume: np.ndarray,
                 deadline: Optional[float],
                 priority: int = PRIORITY_NORMAL) -> None:
        self.id = next(self._ids)
        self.model = model
        self.volume = volume
        #: Absolute monotonic deadline, or None.
        self.deadline = deadline
        #: Admission tier (see :data:`ADMISSION_FRACTIONS`).
        self.priority = priority
        self.accepted_at = time.monotonic()
        #: Root span context of the request's trace (set at admission
        #: when tracing is on; every tile/task span descends from it).
        self.trace_ctx = None
        #: The request's trace id as a string ("" when tracing is off)
        #: — what the HTTP layer echoes back as ``X-Trace-Id``.
        self.trace_id = ""
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the request resolves; return the dense output or
        raise the failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.id} not done within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: Optional[np.ndarray],
                 error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._done.set()


class InferenceServer:
    """Bounded-queue, micro-batching dense-inference server.

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.ModelRegistry` holding the
        servable models.
    num_workers:
        Long-lived ``serve:worker`` tasks pulling from the queue.
    max_queue:
        Admission-queue capacity; submissions beyond it are rejected
        with :class:`ServerOverloaded` (never silently dropped).
    max_batch:
        Upper bound on same-model requests one worker drags out of the
        queue per dequeue.
    tile_voxels:
        Input-tile voxel budget handed to the tiling planner.
    retry_policy:
        Optional per-request :class:`repro.resilience.RetryPolicy`.

    Use as a context manager to guarantee :meth:`stop`.
    """

    def __init__(self, registry: ModelRegistry, num_workers: int = 2,
                 max_queue: int = 16, max_batch: int = 4,
                 tile_voxels: int = DEFAULT_TILE_VOXELS,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.num_workers = num_workers
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.tile_voxels = tile_voxels
        self.retry_policy = retry_policy
        self._cond = make_condition("serving.pipeline")
        self._queue: Deque[PendingRequest] = deque()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        self._draining = False  # guarded-by: _cond
        self._inflight = 0  # guarded-by: _cond
        self._started = False  # guarded-by: _cond
        self._engine: Optional[TaskEngine] = None
        #: Test/ops hook: clear to pause dequeuing (admission still
        #: runs, so queue-full behaviour becomes deterministic).
        self.gate = threading.Event()
        self.gate.set()
        # EWMA of per-request service seconds, for retry_after hints.
        self._ewma_lock = make_lock("serving.ewma")
        self._ewma_service = 0.1  # guarded-by: _ewma_lock
        reg = get_registry()
        self._g_ewma = reg.gauge("serving.service.ewma_seconds",
                                 role="server")
        self._g_ewma.set(self._ewma_service)
        self._m_depth = reg.gauge("serving.queue.depth")
        self._m_accepted = reg.counter("serving.requests.accepted")
        self._m_rejected = reg.counter("serving.requests.rejected")
        self._m_shed = reg.counter("serving.requests.shed")
        self._m_completed = reg.counter("serving.requests.completed")
        self._m_failed = reg.counter("serving.requests.failed")
        self._m_missed = reg.counter("serving.requests.deadline_missed")
        self._m_retried = reg.counter("serving.requests.retried")
        self._m_specialized = reg.counter("serving.requests.specialized")
        self._h_queue_wait = reg.histogram("serving.queue_wait_seconds")
        self._h_run = reg.histogram("serving.run_seconds")
        self._h_latency = reg.histogram("serving.latency_seconds")
        self._h_batch = reg.histogram(
            "serving.batch_size", buckets=[1, 2, 4, 8, 16])
        #: SLO accounting (docs/observability.md): admission-wait /
        #: service / e2e quantiles + deadline attainment.
        self.slo = SLOTracker(registry=reg)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "InferenceServer":
        with self._cond:
            if self._started:
                return self
            self._started = True
        self._engine = TaskEngine(num_workers=self.num_workers).start()
        for index in range(self.num_workers):
            self._engine.spawn(self._worker_loop,
                               name=f"serve:worker-{index}")
        return self

    def stop(self) -> None:
        """Stop workers and *fail* (not drop) everything still queued."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._m_depth.set(0)
            self._cond.notify_all()
        for request in pending:
            self._m_failed.inc()
            request._resolve(None, ServerClosed(
                f"server stopped before request {request.id} ran"))
        if self._engine is not None:
            self._engine.shutdown()
            self._engine = None

    def begin_drain(self) -> None:
        """Stop admitting; queued and in-flight requests keep running.

        New submissions fail with :class:`ServerDraining` and
        :meth:`health` reports ``"draining"`` (the HTTP layer turns
        that into 503 so load balancers stop routing here).
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or in flight (or *timeout*
        passes).  Returns True when fully drained."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while self._queue or self._inflight:
                if self._closed:
                    break
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(min(remaining, 0.02))
                else:
                    self._cond.wait(0.02)
            return not self._queue and not self._inflight

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, finish everything that
        was accepted, then stop.  Returns True when every accepted
        request resolved before *timeout* (leftovers are failed with
        :class:`ServerClosed` by :meth:`stop`, never dropped)."""
        self.begin_drain()
        drained = self.wait_drained(timeout)
        self.stop()
        return drained

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- admission -----------------------------------------------------

    def retry_after_hint(self) -> float:
        """Suggested client backoff: time for the current queue to
        drain through the worker pool at recent service speed."""
        with self._cond:
            depth = len(self._queue)
        return self._hint_for_depth(depth)

    def _hint_for_depth(self, depth: int) -> float:
        """The backoff hint for a known queue depth.  Touches only the
        EWMA lock, so callers may hold (or not hold) the queue lock."""
        with self._ewma_lock:
            service = self._ewma_service
        return max(0.05, (depth + 1) * service / max(self.num_workers, 1))

    def submit(self, model: str, volume: np.ndarray,
               timeout: Optional[float] = None,
               trace_id: Optional[str] = None,
               priority: int = PRIORITY_NORMAL) -> PendingRequest:
        """Admit a request or reject it with :class:`ServerOverloaded`.

        *timeout* (seconds) becomes the request's deadline: if it is
        still queued when the deadline passes it fails with
        :class:`DeadlineExceeded`.  *trace_id* adopts a caller-supplied
        trace (the HTTP layer's ``X-Trace-Id``); with tracing enabled
        and no id given, a fresh trace is started per request.
        *priority* selects the admission tier: low-priority requests
        are shed at a lower queue depth than high-priority ones.
        """
        volume = np.asarray(volume, dtype=np.float64)
        if volume.ndim == 2:
            volume = volume[np.newaxis, ...]
        if volume.ndim != 3:
            raise ValueError(
                f"volume must be 2D or 3D, got {volume.ndim}D")
        limit = admission_limit(priority, self.max_queue)
        self.registry.spec(model)  # unknown models fail fast, pre-queue
        deadline = None if timeout is None else time.monotonic() + timeout
        request = PendingRequest(model, volume, deadline,
                                 priority=priority)
        tracer = get_tracer()
        if tracer.enabled:
            request.trace_ctx = tracer.make_context(trace_id)
            request.trace_id = request.trace_ctx.trace_id
        draining = False
        with self._cond:
            if self._draining and not self._closed:
                draining = True
            elif self._closed:
                raise ServerClosed("server is stopped")
            else:
                depth = len(self._queue)
                if depth < limit:
                    self._queue.append(request)
                    self._m_depth.set(len(self._queue))
                    self._m_accepted.inc()
                    self._cond.notify()
                    return request
        # Rejection happens outside the queue lock: the hint touches the
        # EWMA lock, and re-entering self._cond here would deadlock a
        # non-reentrant lock (the default Condition's RLock masked this).
        if draining:
            raise ServerDraining(
                "server is draining; submit elsewhere",
                retry_after=self._hint_for_depth(self.queue_depth))
        self._m_rejected.inc()
        if limit < self.max_queue:
            # Sheddable tier rejected below full capacity: count it as
            # deliberate tiered load shedding, not plain overload.
            self._m_shed.inc()
        raise ServerOverloaded(
            f"admission queue full for priority {priority} "
            f"({depth}/{limit} of {self.max_queue}); retry later",
            retry_after=self._hint_for_depth(depth))

    def infer(self, model: str, volume: np.ndarray,
              timeout: Optional[float] = None,
              trace_id: Optional[str] = None,
              priority: int = PRIORITY_NORMAL) -> np.ndarray:
        """Blocking convenience: submit and wait for the dense output."""
        return self.submit(model, volume, timeout=timeout,
                           trace_id=trace_id, priority=priority).result()

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def health(self) -> dict:
        """Robustness-aware health snapshot (what ``/healthz`` serves).

        ``status`` is ``"ok"``, ``"draining"`` or ``"stopped"``; the
        admission block reports depth against both total capacity and
        each priority tier's shed threshold.
        """
        with self._cond:
            if self._closed:
                status = "stopped"
            elif self._draining:
                status = "draining"
            else:
                status = "ok"
            depth = len(self._queue)
            inflight = self._inflight
        return {
            "status": status,
            "role": "server",
            "models": self.registry.model_names(),
            "queue_depth": depth,
            "inflight": inflight,
            "max_queue": self.max_queue,
            "workers": self.num_workers,
            "admission": {
                "depth": depth,
                "capacity": self.max_queue,
                "limits": {
                    str(p): admission_limit(p, self.max_queue)
                    for p in sorted(ADMISSION_FRACTIONS)
                },
            },
        }

    # -- workers -------------------------------------------------------

    def _take_batch(self) -> Optional[List[PendingRequest]]:
        """Block for the next micro-batch; None means shut down.

        The timed wait makes the ``gate`` hook effective even for
        workers already parked here when it is cleared (``gate.set``
        does not notify the condition)."""
        with self._cond:
            while ((not self._queue or not self.gate.is_set())
                   and not self._closed):
                self._cond.wait(0.02)
            if self._closed:
                return None
            head = self._queue.popleft()
            batch = [head]
            if self.max_batch > 1:
                rest: Deque[PendingRequest] = deque()
                while self._queue and len(batch) < self.max_batch:
                    candidate = self._queue.popleft()
                    if candidate.model == head.model:
                        batch.append(candidate)
                    else:
                        rest.append(candidate)
                self._queue.extendleft(reversed(rest))
            self._m_depth.set(len(self._queue))
            self._inflight += len(batch)
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._h_batch.observe(len(batch))
            for request in batch:
                try:
                    self._serve_one(request)
                finally:
                    with self._cond:
                        self._inflight -= 1
                        self._cond.notify_all()

    def _serve_one(self, request: PendingRequest) -> None:
        now = time.monotonic()
        queue_wait = now - request.accepted_at
        self._h_queue_wait.observe(queue_wait)
        tracer = get_tracer()
        traced = tracer.enabled and request.trace_ctx is not None
        if traced:
            tracer.record("admission.wait",
                          tracer.from_monotonic(request.accepted_at),
                          tracer.from_monotonic(now),
                          category="serving", parent=request.trace_ctx,
                          request=request.id)
        if request.deadline is not None and now > request.deadline:
            self._m_missed.inc()
            self._m_failed.inc()
            self.slo.observe(queue_wait, None, None, deadline_met=False)
            request._resolve(None, DeadlineExceeded(
                f"request {request.id} spent "
                f"{queue_wait:.3f}s queued, past its deadline"))
            if traced:
                self._record_request_span(tracer, request,
                                          status="deadline_exceeded")
            return
        t0 = time.monotonic()
        if traced:
            with tracer.activate(request.trace_ctx):
                with tracer.span("serve", category="serving",
                                 model=request.model,
                                 request=request.id) as span:
                    result = self._run_request(request)
                    if result is None:
                        span.fail()
        else:
            result = self._run_request(request)
        if result is None:  # failure already resolved by _run_request
            if traced:
                self._record_request_span(tracer, request, status="error")
            return
        t1 = time.monotonic()
        self._h_run.observe(t1 - t0)
        self._h_latency.observe(t1 - request.accepted_at)
        self.slo.observe(queue_wait, t1 - t0, t1 - request.accepted_at,
                         deadline_met=True if request.deadline is not None
                         else None)
        with self._ewma_lock:
            self._ewma_service = 0.8 * self._ewma_service + 0.2 * (t1 - t0)
            ewma = self._ewma_service
        self._g_ewma.set(ewma)
        self._m_completed.inc()
        request._resolve(result, None)
        if traced:
            self._record_request_span(tracer, request, status="ok")

    def _record_request_span(self, tracer, request: PendingRequest,
                             status: str) -> None:
        """Close the request's root span (accept -> resolved)."""
        tracer.record("request", tracer.from_monotonic(request.accepted_at),
                      tracer.now(), category="serving",
                      context=request.trace_ctx, status=status,
                      model=request.model, request=request.id)

    def _run_request(self, request: PendingRequest
                     ) -> Optional[np.ndarray]:
        """Plan/warm/run with retries.  Returns the dense output, or
        None after resolving the request with its failure."""
        attempts = 0
        while True:
            try:
                splan = self.registry.plan_for(request.model)
                if splan is not None and splan.covers(request.volume.shape):
                    # ZNNi per-layer specialization: serve under the
                    # plan's tile and per-edge backend map (the warm
                    # model attaches the mode map to its TilePlan, so
                    # run_plan re-verifies the pairing).
                    warm = self.registry.warm(
                        request.model, splan.input_tile,
                        conv_modes=splan.conv_mode_map)
                    self._m_specialized.inc()
                    return warm.run(request.volume)
                plan = plan_volume(request.volume.shape,
                                   self.registry.fov(request.model),
                                   max_voxels=self.tile_voxels)
                warm = self.registry.warm(request.model, plan.input_tile)
                return warm.run(request.volume, plan)
            except Exception as exc:
                attempts += 1
                policy = self.retry_policy
                if policy is None or not policy.should_retry(exc, attempts):
                    self._m_failed.inc()
                    request._resolve(None, exc)
                    return None
                self._m_retried.inc()
                time.sleep(policy.backoff(attempts - 1))
