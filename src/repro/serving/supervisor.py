"""Supervised serving worker processes.

One :class:`Supervisor` owns N spawned worker processes, each running
:func:`serve_worker_main`: a full serving stack (own
:class:`~repro.serving.registry.ModelRegistry` with prewarmed twins,
own :class:`~repro.serving.pipeline.InferenceServer` for local
micro-batching) behind a duplex pipe.  The router
(:class:`~repro.serving.fleet.FleetServer`) never touches processes
directly; it talks to this module.

Wire protocol (parent → worker):

    ("ping", seq)          → answered with ("pong", seq) from the
                             worker's *main loop* — a wedged main loop
                             stops answering, which is exactly how the
                             heartbeat watchdog detects hangs.
    ("request", id, model, in_handle, in_shape, out_handle, out_shape,
     timeout)              → run dense inference; the input is read
                             from shared memory, the output written
                             back into shared memory, then
                             ("result", id) — or ("error", id, kind,
                             message, retry_after) with kind in
                             {"deadline", "overloaded",
                             "unknown-model", "bad-request", "error"}.
    ("stop",)              → finish in-flight requests, then exit 0.

Worker → parent additionally sends ``("ready", worker_id)`` once its
models are built and prewarmed — only then does the supervisor mark it
healthy and route traffic to it.

Failure handling (the whole point):

* **Crash** — the worker process dies (e.g. an injected
  ``fail:serve_worker`` fault calls ``os._exit``).  The reader thread
  sees pipe EOF, the monitor joins the corpse, fires
  ``on_worker_down`` (the router requeues that worker's requests),
  and schedules a restart with exponential backoff.  Restarted
  workers rebuild and re-prewarm every model from the picklable spec
  list before reporting ready.
* **Hang** — the worker's main loop stops answering pings
  (``hang:serve_worker`` sleeps in the request path).  After
  ``heartbeat_timeout`` seconds without a pong the monitor declares
  it hung, kills it, and takes the same death path.  Requests that
  are merely *slow* don't trip this: inference runs on the worker's
  engine threads while the main loop keeps answering pings.
* **Restart storm** — more than ``breaker_restarts`` deaths within
  ``breaker_window`` seconds trips the circuit breaker: the worker is
  **quarantined** (no further restarts, traffic permanently rerouted)
  until an operator intervenes.  A poisoned model that kills every
  replacement can therefore take down at most one worker's capacity.

Every transition emits ``fleet.*`` metrics, a flight-recorder note,
and (on death/quarantine) a flight dump.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.runtime import make_lock
from repro.memory.shared_pool import attach_block
from repro.observability.metrics import get_registry
from repro.observability.tracing import (
    flight_dump,
    flight_note,
    get_tracer,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    install_plan,
    worker_family,
)
from repro.serving.registry import ModelRegistry, ModelSpec
from repro.serving.specialize import SpecializationPlan
from repro.serving.tiler import DEFAULT_TILE_VOXELS

__all__ = [
    "CRASH_EXIT_CODE",
    "SERVE_WORKER_FAMILY",
    "WorkerConfig",
    "SupervisorConfig",
    "Supervisor",
    "serve_worker_main",
    "error_from_kind",
]

#: Exit code of a fault-injected simulated crash (mirrors
#: repro.parallel.worker).
CRASH_EXIT_CODE = 73

#: Fault family checked once per request dispatched to a fleet worker;
#: the per-worker variant is ``worker_family(SERVE_WORKER_FAMILY, id)``.
SERVE_WORKER_FAMILY = "serve_worker"

#: Worker lifecycle states, as reported by ``repro fleet status`` and
#: ``/healthz``.
STATE_STARTING = "starting"
STATE_HEALTHY = "healthy"
STATE_RESTARTING = "restarting"
STATE_QUARANTINED = "quarantined"
#: Gracefully scaled down: drained, exited, never restarted.
STATE_RETIRED = "retired"
STATE_STOPPED = "stopped"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a (re)spawned worker needs, picklable.

    ``faults`` installs a :class:`FaultPlan` inside the worker process
    (occurrence counts restart with the process — that is what makes
    crash loops deterministic).
    """

    specs: Tuple[ModelSpec, ...]
    #: Per-model ZNNi specialization plans (docs/serving.md "Per-layer
    #: specialization"); applied after registration, so respawned
    #: workers serve the same specialized tile/mode mix as the first.
    plans: Tuple[SpecializationPlan, ...] = ()
    threads: int = 1
    max_batch: int = 4
    inflight: int = 4
    tile_voxels: int = DEFAULT_TILE_VOXELS
    max_models: int = 4
    prewarm: bool = True
    #: Volume shape to prewarm every model for before reporting ready
    #: (None skips prewarming and the first request pays the build).
    prewarm_shape: Optional[Tuple[int, int, int]] = None
    faults: Optional[str] = None


@dataclass(frozen=True)
class SupervisorConfig:
    """Health-check and restart policy knobs."""

    heartbeat_interval: float = 0.25
    #: Seconds without a pong before a healthy worker is declared hung.
    heartbeat_timeout: float = 5.0
    #: Seconds a starting worker may take to report ready.
    start_timeout: float = 120.0
    restart_backoff: float = 0.05
    restart_backoff_factor: float = 2.0
    restart_backoff_max: float = 2.0
    #: Restart-storm circuit breaker: quarantine a worker after this
    #: many deaths within ``breaker_window`` seconds.
    breaker_restarts: int = 5
    breaker_window: float = 30.0


def _error_kind(exc: BaseException) -> str:
    """Classify a worker-side failure for the wire (import-light:
    serving exceptions are matched by name so the worker main loop
    needs no extra imports)."""
    from repro.serving.pipeline import (
        DeadlineExceeded,
        ServerOverloaded,
    )
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, ServerOverloaded):
        return "overloaded"
    if isinstance(exc, KeyError):
        return "unknown-model"
    if isinstance(exc, (ValueError, TypeError)):
        return "bad-request"
    return "error"


def error_from_kind(kind: str, message: str,
                    retry_after: float) -> BaseException:
    """Router-side inverse of :func:`_error_kind`."""
    from repro.serving.pipeline import (
        DeadlineExceeded,
        ServerOverloaded,
        ServingError,
    )
    if kind == "deadline":
        return DeadlineExceeded(message)
    if kind == "overloaded":
        return ServerOverloaded(message, retry_after=retry_after)
    if kind == "unknown-model":
        return KeyError(message)
    if kind == "bad-request":
        return ValueError(message)
    return ServingError(message)


def serve_worker_main(worker_id: int, config: WorkerConfig,
                      conn) -> None:
    """Run one serving worker until told to stop (the spawn target)."""
    tracer = get_tracer()
    tracer.set_process(f"serve-worker-{worker_id}")
    if config.faults:
        install_plan(FaultPlan.from_string(config.faults))
    from repro.serving.pipeline import InferenceServer
    registry = ModelRegistry(max_models=config.max_models,
                             num_workers=1, prewarm=config.prewarm)
    for spec in config.specs:
        registry.register(spec)
    for splan in config.plans:
        registry.set_plan(splan)
    if config.prewarm_shape is not None:
        registry.prewarm_all(config.prewarm_shape,
                             tile_voxels=config.tile_voxels)
    server = InferenceServer(registry, num_workers=config.threads,
                             max_queue=max(config.inflight, 1),
                             max_batch=config.max_batch,
                             tile_voxels=config.tile_voxels).start()
    # req_id -> (pending, in_block, out_block, out_shape)
    pending: Dict[int, tuple] = {}
    try:
        conn.send(("ready", worker_id))
        stopping = False
        while not (stopping and not pending):
            if conn.poll(0.005 if pending else 0.05):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # parent died; nothing to answer to
                kind = message[0]
                if kind == "ping":
                    conn.send(("pong", message[1]))
                elif kind == "stop":
                    stopping = True  # drain local in-flight, then exit
                elif kind == "request":
                    (_, req_id, model, in_handle, in_shape,
                     out_handle, out_shape, timeout) = message
                    plan = active_plan()
                    if plan is not None:
                        # A "fail" spec crashes the process mid-request
                        # (caught below -> os._exit); a "hang" spec
                        # sleeps *here*, in the main loop, so pings go
                        # unanswered and the watchdog fires.
                        name = f"worker-{worker_id} request {req_id}"
                        plan.check(SERVE_WORKER_FAMILY, name)
                        plan.check(
                            worker_family(SERVE_WORKER_FAMILY, worker_id),
                            name)
                    in_block = attach_block(in_handle)
                    out_block = attach_block(out_handle)
                    volume = in_block.as_array(in_shape)
                    try:
                        request = server.submit(model, volume,
                                                timeout=timeout)
                    except Exception as exc:
                        conn.send(("error", req_id, _error_kind(exc),
                                   str(exc),
                                   getattr(exc, "retry_after", 0.0)))
                        in_block.close()
                        out_block.close()
                    else:
                        pending[req_id] = (request, in_block,
                                           out_block, out_shape)
            completed = [rid for rid, entry in pending.items()
                         if entry[0].done()]
            for rid in completed:
                request, in_block, out_block, out_shape = pending.pop(rid)
                try:
                    result = request.result(timeout=0)
                except Exception as exc:
                    conn.send(("error", rid, _error_kind(exc), str(exc),
                               getattr(exc, "retry_after", 0.0)))
                else:
                    out_block.as_array(out_shape)[...] = result
                    conn.send(("result", rid))
                finally:
                    in_block.close()
                    out_block.close()
    except InjectedFault:
        # Simulated hard crash: no goodbye, no cleanup — the supervisor
        # must cope with exactly this.
        os._exit(CRASH_EXIT_CODE)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass
    finally:
        server.stop()
        registry.close()
        conn.close()


class _WorkerRecord:
    """Supervisor-side state of one worker slot (all fields guarded by
    the supervisor lock unless noted)."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.generation = 0
        self.process = None
        self.conn = None
        #: Serialises parent->worker sends (pings vs request dispatch);
        #: taken *after* the supervisor lock is released, never inside.
        self.send_lock = make_lock("serving.supervisor.worker_send")
        self.state = STATE_STARTING
        self.restarts = 0
        self.restart_times: deque = deque()
        self.last_restart_reason = ""
        self.last_pong = 0.0
        self.started_at = 0.0
        #: Restart due at this monotonic time (backoff), or None.
        self.restart_at: Optional[float] = None
        #: Reason to attribute to the next death event (set when the
        #: watchdog kills a hung worker, so EOF isn't misread as crash).
        self.pending_reason: Optional[str] = None


class Supervisor:
    """Spawns, health-checks, restarts and quarantines fleet workers.

    Callbacks (all invoked *without* the supervisor lock held):

    ``on_message(worker_id, message)``
        Non-heartbeat worker replies (results/errors) — the router's
        completion path.
    ``on_worker_up(worker_id)``
        The worker reported ready (first start or after a restart).
    ``on_worker_down(worker_id, reason)``
        The worker's process is confirmed dead (already joined — safe
        to reclaim its shared-memory blocks) or quarantined; the
        router must requeue everything it had dispatched there.
    """

    def __init__(self, worker_config: WorkerConfig, num_workers: int,
                 config: Optional[SupervisorConfig] = None,
                 on_message: Optional[Callable] = None,
                 on_worker_up: Optional[Callable] = None,
                 on_worker_down: Optional[Callable] = None) -> None:
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {num_workers}")
        self.worker_config = worker_config
        self.num_workers = num_workers
        self.config = config or SupervisorConfig()
        self.on_message = on_message or (lambda wid, msg: None)
        self.on_worker_up = on_worker_up or (lambda wid: None)
        self.on_worker_down = on_worker_down or (lambda wid, reason: None)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = make_lock("serving.supervisor")
        self._records: Dict[int, _WorkerRecord] = {}  # guarded-by: _lock
        self._stopping = False  # guarded-by: _lock
        self._ping_seq = 0  # guarded-by: _lock
        self._events: "queue.Queue" = queue.Queue()
        self._monitor: Optional[threading.Thread] = None
        reg = get_registry()
        self._m_workers = reg.gauge("fleet.workers")
        self._m_healthy = reg.gauge("fleet.workers.healthy")
        self._m_quarantined = reg.gauge("fleet.workers.quarantined")
        self._m_deaths = reg.counter("fleet.worker_deaths")
        self._m_restarts = reg.counter("fleet.restarts")
        self._m_missed = reg.counter("fleet.heartbeats.missed")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Supervisor":
        with self._lock:
            if self._records:
                return self
            for worker_id in range(self.num_workers):
                self._records[worker_id] = _WorkerRecord(worker_id)
        self._m_workers.set(self.num_workers)
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-supervisor",
            daemon=True)
        self._monitor.start()
        return self

    def wait_ready(self, timeout: float = 120.0,
                   min_workers: Optional[int] = None) -> bool:
        """Block until at least *min_workers* (default: all) workers
        are healthy; False on timeout."""
        want = self.num_workers if min_workers is None else min_workers
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.healthy_ids()) >= want:
                return True
            time.sleep(0.01)
        return len(self.healthy_ids()) >= want

    def stop(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            records = list(self._records.values())
        for record in records:
            conn = record.conn
            if conn is None:
                continue
            with record.send_lock:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for record in records:
            process = record.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            for record in self._records.values():
                record.state = STATE_STOPPED
                if record.conn is not None:
                    try:
                        record.conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    record.conn = None
        self._m_healthy.set(0)

    # -- scaling -------------------------------------------------------

    def add_worker(self) -> int:
        """Allocate a new worker slot (the next unused id) without
        spawning it yet.

        Two-step on purpose: the router must wire the new id's lanes
        and metrics *before* the process can report ready, so it calls
        :meth:`spawn_worker` once its own structures exist.
        """
        with self._lock:
            if self._stopping:
                raise RuntimeError("supervisor is stopping")
            if not self._records:
                raise RuntimeError("supervisor is not started")
            worker_id = max(self._records) + 1
            record = _WorkerRecord(worker_id)
            # A fresh slot must not trip the not-ready watchdog while
            # the caller is still wiring it up.
            record.started_at = time.monotonic()
            self._records[worker_id] = record
        self._update_gauges()
        flight_note("fleet worker slot added", worker=worker_id)
        return worker_id

    def spawn_worker(self, worker_id: int) -> None:
        """Start the process for a slot created by
        :meth:`add_worker`."""
        with self._lock:
            record = self._records.get(worker_id)
            if record is None:
                raise KeyError(f"unknown worker {worker_id}")
            if record.process is not None:
                raise RuntimeError(
                    f"worker {worker_id} already spawned")
        self._spawn(worker_id)

    def retire_worker(self, worker_id: int,
                      join_timeout: float = 10.0) -> bool:
        """Gracefully retire a worker: mark it RETIRED (its death is
        expected — no restart, no down-callback), send ``stop`` so it
        drains local in-flight requests (results still flow back),
        then join the process.  True when it exited within
        *join_timeout*."""
        with self._lock:
            record = self._records.get(worker_id)
            if record is None:
                raise KeyError(f"unknown worker {worker_id}")
            if record.state in (STATE_RETIRED, STATE_STOPPED):
                return True
            # Mark before sending stop: the reader's EOF event must
            # find the state already RETIRED or _handle_death would
            # schedule a restart.
            record.state = STATE_RETIRED
            record.restart_at = None
            conn = record.conn
            send_lock = record.send_lock
            process = record.process
        flight_note("fleet worker retiring", worker=worker_id)
        if conn is not None:
            with send_lock:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass  # already dying; the join below settles it
        clean = True
        if process is not None:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck drain
                clean = False
                process.terminate()
                process.join(timeout=2.0)
        with self._lock:
            if record.conn is not None:
                try:
                    record.conn.close()
                except OSError:  # pragma: no cover
                    pass
                record.conn = None
        self._update_gauges()
        return clean

    # -- routing surface ----------------------------------------------

    def healthy_ids(self) -> list:
        with self._lock:
            return [wid for wid, record in self._records.items()
                    if record.state == STATE_HEALTHY]

    def is_healthy(self, worker_id: int) -> bool:
        with self._lock:
            record = self._records.get(worker_id)
            return record is not None and record.state == STATE_HEALTHY

    def send(self, worker_id: int, message: tuple) -> bool:
        """Send *message* to a healthy worker; False if it is not
        healthy or the pipe is already broken (caller reroutes)."""
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or record.state != STATE_HEALTHY:
                return False
            conn = record.conn
            send_lock = record.send_lock
        with send_lock:
            try:
                conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    def status(self) -> Dict[str, dict]:
        """Per-worker state for ``/healthz`` and ``repro fleet
        status``."""
        now = time.monotonic()
        with self._lock:
            return {
                str(wid): {
                    "state": record.state,
                    "pid": (record.process.pid
                            if record.process is not None else None),
                    "restarts": record.restarts,
                    "last_restart_reason": record.last_restart_reason,
                    "uptime_seconds": (
                        round(now - record.started_at, 3)
                        if record.state == STATE_HEALTHY else 0.0),
                }
                for wid, record in sorted(self._records.items())
            }

    # -- spawning and monitoring --------------------------------------

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=serve_worker_main,
            args=(worker_id, self.worker_config, child_conn),
            name=f"serve-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()
        with self._lock:
            record = self._records[worker_id]
            record.generation += 1
            generation = record.generation
            record.process = process
            record.conn = parent_conn
            record.state = STATE_STARTING
            record.started_at = time.monotonic()
            record.last_pong = record.started_at
            record.restart_at = None
            record.pending_reason = None
        reader = threading.Thread(
            target=self._reader_loop,
            args=(worker_id, generation, parent_conn),
            name=f"fleet-reader-{worker_id}", daemon=True)
        reader.start()

    def _reader_loop(self, worker_id: int, generation: int,
                     conn) -> None:
        """Demultiplex one worker's replies until its pipe dies."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._events.put(("died", worker_id, generation))
                return
            kind = message[0]
            if kind == "ready":
                became_healthy = False
                with self._lock:
                    record = self._records.get(worker_id)
                    if (record is not None
                            and record.generation == generation
                            and not self._stopping):
                        record.state = STATE_HEALTHY
                        record.last_pong = time.monotonic()
                        became_healthy = True
                if became_healthy:
                    self._update_gauges()
                    flight_note("fleet worker ready", worker=worker_id,
                                generation=generation)
                    self.on_worker_up(worker_id)
            elif kind == "pong":
                with self._lock:
                    record = self._records.get(worker_id)
                    if (record is not None
                            and record.generation == generation):
                        record.last_pong = time.monotonic()
            else:
                self.on_message(worker_id, message)

    def _monitor_loop(self) -> None:
        """Heartbeats, hang detection, death handling, backoff
        restarts — one thread, no sleeps under any lock."""
        cfg = self.config
        while True:
            try:
                event = self._events.get(timeout=cfg.heartbeat_interval)
            except queue.Empty:
                event = None
            with self._lock:
                if self._stopping:
                    return
            if event is not None:
                _, worker_id, generation = event
                self._handle_death(worker_id, generation)
            self._heartbeat_tick()
            self._restart_due()

    def _heartbeat_tick(self) -> None:
        cfg = self.config
        now = time.monotonic()
        to_ping = []
        to_kill = []
        with self._lock:
            self._ping_seq += 1
            seq = self._ping_seq
            for record in self._records.values():
                if record.state == STATE_HEALTHY:
                    if now - record.last_pong > cfg.heartbeat_timeout:
                        record.pending_reason = (
                            f"hang: no heartbeat for "
                            f"{now - record.last_pong:.2f}s")
                        to_kill.append(record.process)
                        self._m_missed.inc()
                    else:
                        to_ping.append((record.conn, record.send_lock))
                elif record.state == STATE_STARTING:
                    if now - record.started_at > cfg.start_timeout:
                        record.pending_reason = (
                            f"hang: not ready after "
                            f"{cfg.start_timeout:.0f}s")
                        to_kill.append(record.process)
        for conn, send_lock in to_ping:
            with send_lock:
                try:
                    conn.send(("ping", seq))
                except (BrokenPipeError, OSError):
                    pass  # reader will report the death
        for process in to_kill:
            # Killing closes the pipe; the reader thread turns that
            # into a death event with the pending_reason attached.
            if process is not None and process.is_alive():
                process.terminate()

    def _handle_death(self, worker_id: int, generation: int) -> None:
        cfg = self.config
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or record.generation != generation:
                return  # stale event from a previous incarnation
            if record.state in (STATE_QUARANTINED, STATE_RETIRED,
                                STATE_STOPPED):
                return  # expected death (or already written off)
            process = record.process
            reason = record.pending_reason
        # Join OUTSIDE the lock, and before telling anyone: only after
        # the process is confirmed dead is it safe for the router to
        # reclaim shared-memory blocks the worker may have had mapped.
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - kill escalation
                process.kill()
                process.join(timeout=2.0)
        if reason is None:
            code = process.exitcode if process is not None else None
            if code == CRASH_EXIT_CODE:
                reason = "crash: injected fault"
            else:
                reason = f"crash: exit code {code}"
        self._m_deaths.inc()
        flight_note("fleet worker death", worker=worker_id,
                    reason=reason)
        now = time.monotonic()
        with self._lock:
            record.restarts += 1
            record.last_restart_reason = reason
            record.restart_times.append(now)
            while (record.restart_times
                   and now - record.restart_times[0]
                   > cfg.breaker_window):
                record.restart_times.popleft()
            storm = len(record.restart_times) >= cfg.breaker_restarts
            if storm or self._stopping:
                record.state = (STATE_QUARANTINED if storm
                                else STATE_STOPPED)
                record.restart_at = None
            else:
                record.state = STATE_RESTARTING
                backoff = min(
                    cfg.restart_backoff
                    * cfg.restart_backoff_factor
                    ** max(len(record.restart_times) - 1, 0),
                    cfg.restart_backoff_max)
                record.restart_at = now + backoff
        self._update_gauges()
        flight_dump(f"fleet-worker-death-{worker_id}")
        if storm:
            flight_note("fleet worker quarantined", worker=worker_id,
                        restarts=record.restarts, reason=reason)
            flight_dump(f"fleet-worker-quarantined-{worker_id}")
        self.on_worker_down(worker_id, reason)

    def _restart_due(self) -> None:
        now = time.monotonic()
        due = []
        with self._lock:
            if self._stopping:
                return
            for record in self._records.values():
                if (record.state == STATE_RESTARTING
                        and record.restart_at is not None
                        and now >= record.restart_at):
                    due.append(record.worker_id)
        for worker_id in due:
            self._m_restarts.inc()
            flight_note("fleet worker restarting", worker=worker_id)
            self._spawn(worker_id)

    def _update_gauges(self) -> None:
        with self._lock:
            healthy = sum(1 for r in self._records.values()
                          if r.state == STATE_HEALTHY)
            quarantined = sum(1 for r in self._records.values()
                              if r.state == STATE_QUARANTINED)
            slots = sum(1 for r in self._records.values()
                        if r.state not in (STATE_RETIRED,
                                           STATE_STOPPED))
        self._m_workers.set(slots)
        self._m_healthy.set(healthy)
        self._m_quarantined.set(quarantined)
