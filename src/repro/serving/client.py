"""Serving clients: in-process and HTTP.

Both clients implement the same contract around backpressure: an
overloaded server answers with a *retry-after* hint, and the client —
not the server — decides how long to keep trying.  The in-process
:class:`ServingClient` wraps an :class:`~repro.serving.pipeline.
InferenceServer` directly (embedding the whole serving stack in a
Python process, e.g. for tests and benchmarks); :class:`HttpServingClient`
speaks the ``repro serve`` wire protocol (npy request/response bodies,
503 + ``Retry-After`` for overload, 504 for missed deadlines) over
stdlib ``urllib`` so no dependencies are added.

Retry sleeps are **deadline-capped**: when a request carries a timeout,
the client tracks the absolute deadline across overload retries and
fails fast with :class:`DeadlineExceeded` rather than sleeping past the
point where a resubmission would be dead on arrival; each retry also
passes only the *remaining* budget to the server, so the server-side
deadline matches the client's.
"""

from __future__ import annotations

import io
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Optional

import numpy as np

from repro.serving.pipeline import (
    DeadlineExceeded,
    InferenceServer,
    ServerOverloaded,
    ServingError,
)

__all__ = ["ServingClient", "HttpServingClient", "encode_array",
           "decode_array"]


def _retry_sleep(exc: ServerOverloaded, backoff_cap: float,
                 deadline: Optional[float]) -> float:
    """Seconds to sleep before the next overload retry, capped at the
    remaining deadline budget.

    Raises :class:`DeadlineExceeded` when the sleep would consume the
    whole remaining budget — a resubmission after it would be dead on
    arrival, so fail fast with the deadline error instead.
    """
    sleep_s = min(exc.retry_after, backoff_cap)
    if deadline is not None:
        remaining = deadline - time.monotonic()
        if sleep_s >= remaining:
            raise DeadlineExceeded(
                f"deadline exhausted while backing off from overload "
                f"(retry_after {exc.retry_after:.3f}s >= remaining "
                f"{max(remaining, 0.0):.3f}s)") from exc
    return sleep_s


def _remaining_timeout(timeout: Optional[float],
                       deadline: Optional[float]) -> Optional[float]:
    """The request-timeout to send on this attempt: the remaining
    budget against the absolute *deadline* (None when unbounded)."""
    if deadline is None:
        return None
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        raise DeadlineExceeded(
            f"deadline of {timeout}s exhausted before resubmission")
    return remaining


def encode_array(array: np.ndarray) -> bytes:
    """npy-serialize *array* (the wire format of ``repro serve``)."""
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(array), allow_pickle=False)
    return buf.getvalue()


def decode_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    return np.load(io.BytesIO(payload), allow_pickle=False)


class ServingClient:
    """In-process client with overload retry.

    On :class:`~repro.serving.pipeline.ServerOverloaded` the client
    sleeps for the server's ``retry_after`` hint (capped at the
    request's remaining deadline budget) and resubmits, up to
    *max_attempts* total submissions; the final rejection propagates so
    callers can tell sustained saturation from a transient burst.
    """

    def __init__(self, server: InferenceServer, max_attempts: int = 5,
                 backoff_cap: float = 5.0) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.server = server
        self.max_attempts = max_attempts
        self.backoff_cap = backoff_cap

    def infer(self, model: str, volume: np.ndarray,
              timeout: Optional[float] = None,
              trace_id: Optional[str] = None, **submit_kwargs
              ) -> np.ndarray:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for attempt in range(1, self.max_attempts + 1):
            try:
                return self.server.submit(
                    model, volume,
                    timeout=_remaining_timeout(timeout, deadline),
                    trace_id=trace_id, **submit_kwargs).result()
            except ServerOverloaded as exc:
                if attempt == self.max_attempts:
                    raise
                time.sleep(_retry_sleep(exc, self.backoff_cap, deadline))
        raise AssertionError("unreachable")  # pragma: no cover


class HttpServingClient:
    """Client for a ``repro serve`` HTTP endpoint (stdlib only).

    Maps the wire protocol back onto the serving exceptions:
    503 → :class:`ServerOverloaded` (honouring ``Retry-After``),
    504 → :class:`DeadlineExceeded`, other HTTP errors →
    :class:`ServingError`.  Overload retries follow the same policy as
    :class:`ServingClient`.
    """

    def __init__(self, base_url: str, max_attempts: int = 5,
                 backoff_cap: float = 5.0,
                 request_timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.max_attempts = max_attempts
        self.backoff_cap = backoff_cap
        self.request_timeout = request_timeout
        #: ``X-Trace-Id`` of the last successful response ("" before
        #: the first, or when the server traces nothing).
        self.last_trace_id = ""

    def _post_once(self, model: str, volume: np.ndarray,
                   timeout: Optional[float],
                   trace_id: Optional[str] = None,
                   priority: Optional[int] = None) -> np.ndarray:
        query = {"model": model}
        if timeout is not None:
            query["timeout"] = repr(float(timeout))
        if priority is not None:
            query["priority"] = str(int(priority))
        url = (f"{self.base_url}/v1/infer?"
               f"{urllib.parse.urlencode(query)}")
        headers = {"Content-Type": "application/x-npy"}
        if trace_id:
            # Adopt the caller's trace server-side (X-Trace-Id is
            # echoed back; see repro.serving.http).
            headers["X-Trace-Id"] = trace_id
        request = urllib.request.Request(
            url, data=encode_array(volume), method="POST",
            headers=headers)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.request_timeout) as response:
                self.last_trace_id = response.headers.get("X-Trace-Id", "")
                return decode_array(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            if exc.code == 503:
                try:
                    retry_after = float(exc.headers.get("Retry-After", "1"))
                except ValueError:
                    retry_after = 1.0
                raise ServerOverloaded(
                    detail or "server overloaded",
                    retry_after=retry_after) from None
            if exc.code == 504:
                raise DeadlineExceeded(
                    detail or "deadline exceeded") from None
            raise ServingError(
                f"HTTP {exc.code}: {detail or exc.reason}") from None

    def infer(self, model: str, volume: np.ndarray,
              timeout: Optional[float] = None,
              trace_id: Optional[str] = None,
              priority: Optional[int] = None) -> np.ndarray:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for attempt in range(1, self.max_attempts + 1):
            try:
                return self._post_once(
                    model, volume, _remaining_timeout(timeout, deadline),
                    trace_id, priority=priority)
            except ServerOverloaded as exc:
                if attempt == self.max_attempts:
                    raise
                time.sleep(_retry_sleep(exc, self.backoff_cap, deadline))
        raise AssertionError("unreachable")  # pragma: no cover

    def health(self) -> dict:
        """GET /healthz as a dict."""
        import json
        with urllib.request.urlopen(
                f"{self.base_url}/healthz",
                timeout=self.request_timeout) as response:
            return json.loads(response.read().decode("utf-8"))
