"""Stdlib HTTP front end for the inference server.

A thin, dependency-free shim: ``http.server.ThreadingHTTPServer``
threads do nothing but decode/encode npy payloads and block on the
:class:`~repro.serving.pipeline.InferenceServer` — all queueing,
batching and backpressure live in the pipeline, so the HTTP layer
cannot re-order or drop anything the pipeline accepted.

Wire protocol (see :mod:`repro.serving.client` for the client side):

* ``POST /v1/infer?model=NAME[&timeout=SECONDS]`` with an npy body →
  200 with the dense output as npy;
* overload → **503** with a ``Retry-After`` header (seconds);
* deadline missed in queue → **504**;
* unknown model → **404**; malformed volume/params → **400**;
* ``GET /healthz`` → JSON status, model list and queue depth;
* ``GET /metrics`` → JSON snapshot of the process metrics registry, or
  the Prometheus text exposition when the ``Accept`` header asks for
  ``text/plain`` (content negotiation; JSON stays the default).

With tracing enabled (``REPRO_TRACING=1``), an ``X-Trace-Id`` request
header adopts the client's trace for the whole request span tree, and
the response carries the request's trace id back in the same header —
so a client can correlate its own telemetry with a server-side trace.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.observability.export import metrics_snapshot, prometheus_text
from repro.serving.client import decode_array, encode_array
from repro.serving.pipeline import (
    DeadlineExceeded,
    InferenceServer,
    ServerClosed,
    ServerDraining,
    ServerOverloaded,
)

__all__ = ["ServingHTTPServer", "serve_http"]


class _Handler(BaseHTTPRequestHandler):
    # Set by ServingHTTPServer on the handler class.
    inference: InferenceServer

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        pass  # request logging goes through metrics, not stderr

    # -- helpers -------------------------------------------------------

    def _send(self, code: int, body: bytes, content_type: str,
              extra_headers: Optional[dict] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict,
                   extra_headers: Optional[dict] = None) -> None:
        self._send(code, json.dumps(payload).encode("utf-8"),
                   "application/json", extra_headers)

    def _send_error_text(self, code: int, message: str,
                         extra_headers: Optional[dict] = None) -> None:
        self._send(code, message.encode("utf-8"), "text/plain",
                   extra_headers)

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        path = urlparse(self.path).path
        if path == "/healthz":
            # health() is robustness-aware: status flips to "draining"
            # during graceful shutdown, and a fleet back end reports
            # per-worker state, restart counts and quarantine reasons.
            health = self.inference.health()
            if health.get("status") == "ok":
                self._send_json(200, health)
            else:
                # Non-ok (draining/stopped/no healthy workers): 503 so
                # external load balancers stop routing here, with the
                # full health document as the body.
                self._send_json(503, health, {"Retry-After": "1"})
        elif path == "/metrics":
            accept = self.headers.get("Accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                self._send(200, prometheus_text().encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")
            else:
                self._send_json(200, metrics_snapshot())
        else:
            self._send_error_text(404, f"no such path: {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        parsed = urlparse(self.path)
        if parsed.path != "/v1/infer":
            self._send_error_text(404, f"no such path: {parsed.path}")
            return
        query = parse_qs(parsed.query)
        model = (query.get("model") or [None])[0]
        if not model:
            self._send_error_text(400, "missing model= query parameter")
            return
        timeout: Optional[float] = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"][0])
            except ValueError:
                self._send_error_text(
                    400, f"bad timeout: {query['timeout'][0]!r}")
                return
        priority = 1
        if "priority" in query:
            try:
                priority = int(query["priority"][0])
            except ValueError:
                self._send_error_text(
                    400, f"bad priority: {query['priority'][0]!r}")
                return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            volume = decode_array(self.rfile.read(length))
        except Exception as exc:
            self._send_error_text(400, f"bad npy payload: {exc}")
            return
        trace_id = self.headers.get("X-Trace-Id") or None
        request = None
        try:
            request = self.inference.submit(model, volume,
                                            timeout=timeout,
                                            trace_id=trace_id,
                                            priority=priority)
            result = request.result()
        except ServerOverloaded as exc:
            self._send_error_text(
                503, str(exc),
                {"Retry-After": f"{exc.retry_after:.3f}"})
        except DeadlineExceeded as exc:
            self._send_error_text(504, str(exc),
                                  self._trace_headers(request))
        except ServerDraining as exc:
            self._send_error_text(
                503, str(exc),
                {"Retry-After": f"{exc.retry_after:.3f}"})
        except ServerClosed as exc:
            self._send_error_text(503, str(exc), {"Retry-After": "1"})
        except KeyError as exc:
            self._send_error_text(404, str(exc))
        except (ValueError, TypeError) as exc:
            self._send_error_text(400, str(exc))
        else:
            self._send(200, encode_array(result), "application/x-npy",
                       self._trace_headers(request))

    @staticmethod
    def _trace_headers(request) -> Optional[dict]:
        if request is None or not request.trace_id:
            return None
        return {"X-Trace-Id": request.trace_id}


class ServingHTTPServer:
    """Owns a ThreadingHTTPServer bound to an inference back end.

    The back end is duck-typed: anything with ``submit``/``health``/
    ``start``/``stop`` (and ``begin_drain``/``wait_drained`` for
    graceful drain) works — both the in-process
    :class:`~repro.serving.pipeline.InferenceServer` and the
    multi-process :class:`~repro.serving.fleet.FleetServer`.

    ``start()`` returns immediately (the accept loop runs on a daemon
    thread); ``stop()`` shuts down HTTP first, then the pipeline, so
    in-flight requests resolve before the process exits.  ``drain()``
    is the graceful path: admission stops (``/healthz`` flips to
    draining/503 while HTTP keeps answering, so load balancers see the
    transition), accepted requests finish, then everything shuts down.
    """

    def __init__(self, inference: InferenceServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,),
                       {"inference": inference})
        self.inference = inference
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServingHTTPServer":
        self.inference.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="znn-serve-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.inference.stop()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Gracefully drain the back end, then stop HTTP.

        Returns True when every accepted request resolved within
        *timeout* (leftovers are failed, never dropped).
        """
        self.inference.begin_drain()
        drained = self.inference.wait_drained(timeout)
        self.stop()
        return drained

    def __enter__(self) -> "ServingHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_http(inference: InferenceServer, host: str = "127.0.0.1",
               port: int = 0) -> ServingHTTPServer:
    """Start an HTTP front end for *inference*; returns the running
    server (stop it with ``.stop()`` or use as a context manager)."""
    return ServingHTTPServer(inference, host=host, port=port).start()
