"""Fault-tolerant serving fleet: router + supervised workers.

The ZNNi observation (PAPERS.md) is that inference throughput on one
host comes from running many workers side by side.  This module is the
robustness half of that design: a :class:`FleetServer` router in the
front-end process distributes requests over N supervised
:func:`~repro.serving.supervisor.serve_worker_main` processes and
keeps serving through worker crashes, hangs, restart storms and
graceful drains.

Routing
-------
Models map to workers through a consistent-hash ring
(:class:`HashRing`, SHA-1 virtual nodes).  Affinity is the point: a
model's requests keep landing on the same worker, whose
:class:`~repro.serving.registry.ModelRegistry` twin — FFT kernel
spectra and all — stays warm.  When a worker leaves (crash,
quarantine, drain) only ~1/N of models remap; the rest keep their warm
cache.  :meth:`HashRing.walk` yields the full preference order, which
is also the failover order.

Failover
--------
A request dispatched to a worker that dies mid-flight is requeued to
the next healthy worker on its ring walk, against a bounded attempt
budget and its own deadline — the crash is absorbed, not surfaced.
Inference here is idempotent *and bitwise deterministic* (fixed
tap-order direct conv, deterministic sums), so a retried request
returns byte-identical output; the chaos tests assert exactly that.

Data path
---------
Volumes cross the process boundary through
:class:`~repro.memory.shared_pool.SharedMemoryPool` blocks, never
pickled: the router copies the input volume into a pooled block,
the worker writes the dense output into a second block, and the router
copies it out before recycling both.  Blocks belonging to a dead
worker are reclaimed only after the supervisor has *joined* the
process — a killed-but-not-yet-dead worker can never scribble into a
recycled block.

Degradation tiers
-----------------
Admission reuses the pipeline's priority fractions
(:data:`~repro.serving.pipeline.ADMISSION_FRACTIONS`): under overload
the lowest-priority tenants are shed first, with ``retry_after`` hints
derived from an EWMA of fleet service time.  With *no* healthy workers
(all quarantined mid restart-storm) requests park in an orphan queue
until a worker returns or their deadlines expire — accepted requests
are never silently dropped, every one resolves.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.analysis.runtime import make_condition
from repro.memory.shared_pool import SharedMemoryPool
from repro.observability.metrics import get_registry
from repro.observability.slo import SLOTracker
from repro.observability.tracing import flight_note, get_tracer
from repro.serving.pipeline import (
    PRIORITY_NORMAL,
    ADMISSION_FRACTIONS,
    DeadlineExceeded,
    PendingRequest,
    ServerClosed,
    ServerDraining,
    ServerOverloaded,
    ServingError,
    admission_limit,
)
from repro.serving.registry import ModelSpec
from repro.serving.supervisor import (
    Supervisor,
    SupervisorConfig,
    WorkerConfig,
    error_from_kind,
)
from repro.serving.tiler import DEFAULT_TILE_VOXELS

__all__ = ["HashRing", "FleetRequest", "FleetServer"]


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node contributes *replicas* points at
    ``sha1(f"{node}#{i}")``; a key maps to the first node clockwise of
    its own hash.  Removing a node deletes only that node's points, so
    only the keys it owned remap (~1/N of all keys) — the property the
    fleet's warm-cache affinity depends on, and the one the hypothesis
    test pins down.
    """

    def __init__(self, nodes: Iterable[int], replicas: int = 64) -> None:
        self.nodes = sorted(set(nodes))
        if not self.nodes:
            raise ValueError("hash ring needs at least one node")
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for i in range(replicas):
                points.append((self._point(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    @staticmethod
    def _point(key: str) -> int:
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def lookup(self, key: str) -> int:
        """The node owning *key*."""
        return next(self.walk(key))

    def walk(self, key: str) -> Iterator[int]:
        """All nodes in *key*'s preference (= failover) order."""
        if not self.nodes:
            return
        start = bisect.bisect_right(self._hashes, self._point(key))
        seen: Set[int] = set()
        total = len(self._owners)
        for offset in range(total):
            node = self._owners[(start + offset) % total]
            if node not in seen:
                seen.add(node)
                yield node

    def without(self, node: int) -> "HashRing":
        """A new ring with *node* removed (for remap analysis)."""
        return HashRing([n for n in self.nodes if n != node],
                        replicas=self.replicas)


class FleetRequest(PendingRequest):
    """A :class:`PendingRequest` with a failover budget."""

    def __init__(self, model: str, volume: np.ndarray,
                 deadline: Optional[float],
                 priority: int = PRIORITY_NORMAL) -> None:
        super().__init__(model, volume, deadline, priority=priority)
        #: Dispatch attempts consumed (capped by the fleet's budget).
        self.attempts = 0
        #: Workers this request has already been dispatched to.
        self.tried: Set[int] = set()
        self.dispatched_at: Optional[float] = None
        self.worker: Optional[int] = None


#: Router states.
_STATE_NEW = "new"
_STATE_OK = "ok"
_STATE_DRAINING = "draining"
_STATE_STOPPED = "stopped"


class FleetServer:
    """Router over a supervised fleet of serving worker processes.

    Duck-type compatible with
    :class:`~repro.serving.pipeline.InferenceServer` (``submit`` /
    ``infer`` / ``health`` / ``start`` / ``stop`` / ``begin_drain`` /
    ``wait_drained``), so the HTTP front end and clients work
    unchanged.

    Parameters
    ----------
    specs:
        The servable :class:`~repro.serving.registry.ModelSpec` list;
        every worker registers (and, given *prewarm_shape*, prewarms)
        all of them, so any worker can serve any model on failover.
    num_workers:
        Worker *processes* (each with *threads_per_worker* engine
        threads inside).
    max_queue:
        Fleet-wide admission capacity (queued, not in-flight).
    inflight_per_worker:
        Dispatch window per worker; also each worker's local queue
        bound, so a worker never rejects what the router sends.
    max_attempts:
        Total dispatch attempts per request (first try + failovers).
    worker_faults:
        Optional ``REPRO_FAULTS``-style plan string installed *inside
        every worker process* (chaos testing; see
        :mod:`repro.resilience.faults`).
    plans:
        Optional iterable of
        :class:`~repro.serving.specialize.SpecializationPlan` — ZNNi
        per-layer direct/FFT plans applied in every worker (and every
        respawned worker) for the models they target.
    """

    def __init__(self, specs: Iterable[ModelSpec], num_workers: int = 3,
                 max_queue: int = 32, max_batch: int = 4,
                 threads_per_worker: int = 1,
                 inflight_per_worker: int = 4,
                 tile_voxels: int = DEFAULT_TILE_VOXELS,
                 max_models: int = 4,
                 prewarm_shape=None,
                 max_attempts: int = 3,
                 worker_faults: Optional[str] = None,
                 supervisor_config: Optional[SupervisorConfig] = None,
                 pool_name: str = "fleet",
                 plans=None) -> None:
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {num_workers}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.specs = {spec.name: spec for spec in specs}
        if not self.specs:
            raise ValueError("fleet needs at least one model spec")
        #: Per-model ZNNi specialization plans, shipped to every worker
        #: (docs/serving.md "Per-layer specialization").  Keyed by
        #: model name; a plan for an unregistered model is a config
        #: error surfaced here, not inside a worker process.
        self.plans = {plan.model: plan for plan in (plans or ())}
        for name in self.plans:
            if name not in self.specs:
                raise ValueError(
                    f"specialization plan targets unknown model "
                    f"{name!r}")
        #: Field of view per model, resolved once — the router sizes
        #: output blocks without ever building a network.
        self._fovs = {name: spec.fov
                      for name, spec in self.specs.items()}
        self.num_workers = num_workers
        self.max_queue = max_queue
        self.inflight_per_worker = inflight_per_worker
        self.max_attempts = max_attempts
        self.tile_voxels = tile_voxels
        #: Worker ids currently part of the fleet (scale-up adds,
        #: scale-down removes; distinct from _healthy, which tracks
        #: liveness of active workers).
        self._active: Set[int] = set(range(num_workers))  # guarded-by: _cond
        self.ring = HashRing(range(num_workers))
        self._worker_config = WorkerConfig(
            specs=tuple(self.specs.values()),
            plans=tuple(self.plans[name] for name in sorted(self.plans)),
            threads=threads_per_worker, max_batch=max_batch,
            inflight=inflight_per_worker, tile_voxels=tile_voxels,
            max_models=max_models,
            prewarm_shape=(tuple(prewarm_shape)
                           if prewarm_shape is not None else None),
            faults=worker_faults)
        self.supervisor = Supervisor(
            self._worker_config, num_workers,
            config=supervisor_config,
            on_message=self._on_message,
            on_worker_up=self._on_worker_up,
            on_worker_down=self._on_worker_down)
        self._pool: Optional[SharedMemoryPool] = None
        self._pool_name = pool_name
        self._cond = make_condition("serving.fleet")
        self._state = _STATE_NEW  # guarded-by: _cond
        self._healthy: Set[int] = set()  # guarded-by: _cond
        self._lanes: Dict[int, Deque[FleetRequest]] = {
            wid: deque() for wid in range(num_workers)
        }  # guarded-by: _cond
        self._inflight: Dict[int, Dict[int, FleetRequest]] = {
            wid: {} for wid in range(num_workers)
        }  # guarded-by: _cond
        #: Requests with no healthy worker to go to (yet).
        self._orphans: Deque[FleetRequest] = deque()  # guarded-by: _cond
        #: rid -> (in_block, out_block, out_shape) while dispatched.
        self._blocks: Dict[int, tuple] = {}  # guarded-by: _cond
        self._threads: List[threading.Thread] = []
        self._ewma_lock = threading.Lock()
        self._ewma_service = 0.1  # guarded-by: _ewma_lock
        self._worker_stats: Dict[int, Dict[str, int]] = {
            wid: {"served": 0, "deadline_missed": 0}
            for wid in range(num_workers)
        }  # guarded-by: _cond
        reg = get_registry()
        self._m_accepted = reg.counter("serving.requests.accepted")
        self._m_rejected = reg.counter("serving.requests.rejected")
        self._m_completed = reg.counter("serving.requests.completed")
        self._m_failed = reg.counter("serving.requests.failed")
        self._m_missed = reg.counter("serving.requests.deadline_missed")
        self._m_depth = reg.gauge("fleet.queue.depth")
        self._m_dispatched = reg.counter("fleet.requests.dispatched")
        self._m_requeued = reg.counter("fleet.requests.requeued")
        self._m_shed = reg.counter("fleet.requests.shed")
        self._m_failover = reg.counter("fleet.requests.failover")
        self._m_worker_served = {
            wid: reg.counter("fleet.worker.served", worker=str(wid))
            for wid in range(num_workers)}
        self._m_worker_inflight = {
            wid: reg.gauge("fleet.worker.inflight", worker=str(wid))
            for wid in range(num_workers)}
        self._m_scale_ups = reg.counter("fleet.scale_ups")
        self._m_scale_downs = reg.counter("fleet.scale_downs")
        self._g_ewma = reg.gauge("serving.service.ewma_seconds",
                                 role="fleet")
        self._g_ewma.set(self._ewma_service)
        self.slo = SLOTracker(registry=reg)

    # -- lifecycle -----------------------------------------------------

    def start(self, ready_timeout: float = 120.0) -> "FleetServer":
        with self._cond:
            if self._state != _STATE_NEW:
                return self
            self._state = _STATE_OK
        self._pool = SharedMemoryPool(self._pool_name)
        self.supervisor.start()
        for wid in range(self.num_workers):
            thread = threading.Thread(
                target=self._dispatch_loop, args=(wid,),
                name=f"fleet-dispatch-{wid}", daemon=True)
            thread.start()
            self._threads.append(thread)
        janitor = threading.Thread(target=self._janitor_loop,
                                   name="fleet-janitor", daemon=True)
        janitor.start()
        self._threads.append(janitor)
        if not self.supervisor.wait_ready(timeout=ready_timeout,
                                          min_workers=1):
            self.stop()
            raise ServingError(
                f"no fleet worker became ready within {ready_timeout}s")
        return self

    def begin_drain(self) -> None:
        """Stop admitting; everything accepted keeps running to
        completion on the still-live workers."""
        with self._cond:
            if self._state == _STATE_OK:
                self._state = _STATE_DRAINING
                self._cond.notify_all()
        flight_note("fleet draining")

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while self._pending_locked():
                if self._state == _STATE_STOPPED:
                    break
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(min(remaining, 0.02))
                else:
                    self._cond.wait(0.02)
            return not self._pending_locked()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: drain, then stop.  True when every
        accepted request resolved in time."""
        self.begin_drain()
        drained = self.wait_drained(timeout)
        self.stop()
        return drained

    def stop(self) -> None:
        with self._cond:
            if self._state == _STATE_STOPPED:
                return
            self._state = _STATE_STOPPED
            leftovers: List[FleetRequest] = list(self._orphans)
            self._orphans.clear()
            for lane in self._lanes.values():
                leftovers.extend(lane)
                lane.clear()
            for wid, flights in self._inflight.items():
                leftovers.extend(flights.values())
                flights.clear()
                self._m_worker_inflight[wid].set(0)
            entries = list(self._blocks.values())
            self._blocks.clear()
            self._cond.notify_all()
        for request in leftovers:
            self._m_failed.inc()
            request._resolve(None, ServerClosed(
                f"fleet stopped before request {request.id} resolved"))
        self.supervisor.stop()
        # Workers are confirmed dead: reclaiming and unlinking every
        # shared segment is now safe.
        if self._pool is not None:
            for in_block, out_block, _ in entries:
                self._pool.deallocate(in_block)
                self._pool.deallocate(out_block)
            self._pool.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- admission -----------------------------------------------------

    def submit(self, model: str, volume: np.ndarray,
               timeout: Optional[float] = None,
               trace_id: Optional[str] = None,
               priority: int = PRIORITY_NORMAL) -> FleetRequest:
        """Admit a request (same contract as
        :meth:`InferenceServer.submit`, plus cross-worker failover)."""
        volume = np.asarray(volume, dtype=np.float64)
        if volume.ndim == 2:
            volume = volume[np.newaxis, ...]
        if volume.ndim != 3:
            raise ValueError(
                f"volume must be 2D or 3D, got {volume.ndim}D")
        fov = self._fov(model)  # unknown models fail fast, pre-queue
        if any(v < f for v, f in zip(volume.shape, fov)):
            raise ValueError(
                f"volume {volume.shape} smaller than model "
                f"{model!r}'s field of view {fov}")
        limit = admission_limit(priority, self.max_queue)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        request = FleetRequest(model, volume, deadline,
                               priority=priority)
        tracer = get_tracer()
        if tracer.enabled:
            request.trace_ctx = tracer.make_context(trace_id)
            request.trace_id = request.trace_ctx.trace_id
        draining = False
        with self._cond:
            if self._state == _STATE_DRAINING:
                draining = True
            elif self._state != _STATE_OK:
                raise ServerClosed("fleet is stopped")
            else:
                depth = self._depth_locked()
                if depth < limit:
                    self._route_locked(request)
                    self._m_accepted.inc()
                    self._m_depth.set(self._depth_locked())
                    self._cond.notify_all()
                    return request
        # Reject outside the condition (non-reentrant lock; the hint
        # takes the EWMA lock) — mirrors InferenceServer.submit.
        if draining:
            raise ServerDraining(
                "fleet is draining; submit elsewhere",
                retry_after=self._hint_for_depth(self.queue_depth))
        self._m_rejected.inc()
        if limit < self.max_queue:
            self._m_shed.inc()
        raise ServerOverloaded(
            f"fleet admission queue full for priority {priority} "
            f"({depth}/{limit} of {self.max_queue}); retry later",
            retry_after=self._hint_for_depth(depth))

    def infer(self, model: str, volume: np.ndarray,
              timeout: Optional[float] = None,
              trace_id: Optional[str] = None,
              priority: int = PRIORITY_NORMAL) -> np.ndarray:
        """Blocking convenience: submit and wait for the output."""
        return self.submit(model, volume, timeout=timeout,
                           trace_id=trace_id, priority=priority).result()

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._depth_locked()

    def health(self) -> dict:
        """Fleet health: router state plus per-worker supervisor state
        (restart counts, quarantine reasons, lane depths)."""
        with self._cond:
            state = self._state
            healthy = set(self._healthy)
            lane_depths = {wid: len(lane)
                           for wid, lane in self._lanes.items()}
            inflight = {wid: len(flights)
                        for wid, flights in self._inflight.items()}
            orphans = len(self._orphans)
            depth = self._depth_locked()
            stats = {wid: dict(s)
                     for wid, s in self._worker_stats.items()}
        if state == _STATE_OK and not healthy:
            status = "unavailable"
        elif state == _STATE_OK:
            status = "ok"
        elif state == _STATE_DRAINING:
            status = "draining"
        else:
            status = "stopped"
        workers = self.supervisor.status()
        for wid_str, info in workers.items():
            wid = int(wid_str)
            info["queued"] = lane_depths.get(wid, 0)
            info["inflight"] = inflight.get(wid, 0)
            info["served"] = stats[wid]["served"]
            info["deadline_missed"] = stats[wid]["deadline_missed"]
        with self._cond:
            active = sorted(self._active)
        return {
            "status": status,
            "role": "fleet",
            "models": sorted(self.specs),
            "active_workers": active,
            "queue_depth": depth,
            "orphaned": orphans,
            "max_queue": self.max_queue,
            "workers": workers,
            "admission": {
                "depth": depth,
                "capacity": self.max_queue,
                "limits": {
                    str(p): admission_limit(p, self.max_queue)
                    for p in sorted(ADMISSION_FRACTIONS)
                },
            },
        }

    # -- scaling -------------------------------------------------------

    @property
    def active_workers(self) -> int:
        """Workers currently part of the fleet (healthy or not)."""
        with self._cond:
            return len(self._active)

    def active_worker_ids(self) -> List[int]:
        with self._cond:
            return sorted(self._active)

    @property
    def total_inflight(self) -> int:
        with self._cond:
            return sum(len(f) for f in self._inflight.values())

    def scale_to(self, target: int, drain_timeout: float = 15.0,
                 ready_timeout: Optional[float] = None) -> List[int]:
        """Scale the fleet to *target* active workers.

        Scale-up allocates fresh worker ids (never reusing retired
        ones), wires their lanes/metrics, and spawns the processes;
        they take traffic once prewarmed (ready).  Scale-down retires
        the highest-id workers one at a time: the victim leaves the
        ring immediately (its queued requests reroute without
        spending failover budget), its in-flight requests get
        *drain_timeout* seconds to finish, then the process is
        gracefully retired via
        :meth:`~repro.serving.supervisor.Supervisor.retire_worker`.

        With *ready_timeout* the call additionally waits that many
        seconds for newly added workers to report ready.  Returns the
        active worker ids after the change.
        """
        if target < 1:
            raise ValueError(
                f"target must be >= 1, got {target}")
        added: List[int] = []
        while True:
            with self._cond:
                if self._state != _STATE_OK:
                    raise ServingError(
                        "fleet is not running; cannot scale")
                current = len(self._active)
            if current < target:
                added.append(self._scale_up_one())
            elif current > target:
                self._scale_down_one(drain_timeout)
            else:
                break
        if ready_timeout is not None and added:
            deadline = time.monotonic() + ready_timeout
            for wid in added:
                while (not self.supervisor.is_healthy(wid)
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        return self.active_worker_ids()

    def _scale_up_one(self) -> int:
        wid = self.supervisor.add_worker()
        reg = get_registry()
        self._m_worker_served[wid] = reg.counter(
            "fleet.worker.served", worker=str(wid))
        self._m_worker_inflight[wid] = reg.gauge(
            "fleet.worker.inflight", worker=str(wid))
        with self._cond:
            self._lanes[wid] = deque()
            self._inflight[wid] = {}
            self._worker_stats[wid] = {"served": 0,
                                       "deadline_missed": 0}
            self._active.add(wid)
            # The ring may include the newcomer before it is ready:
            # _route_locked only lands requests on healthy workers.
            self.ring = HashRing(sorted(self._active),
                                 replicas=self.ring.replicas)
        thread = threading.Thread(
            target=self._dispatch_loop, args=(wid,),
            name=f"fleet-dispatch-{wid}", daemon=True)
        thread.start()
        self._threads.append(thread)
        self.supervisor.spawn_worker(wid)
        self._m_scale_ups.inc()
        flight_note("fleet scaled up", worker=wid)
        return wid

    def _scale_down_one(self, drain_timeout: float) -> int:
        with self._cond:
            if len(self._active) <= 1:
                raise ValueError(
                    "cannot scale the fleet below 1 worker")
            victim = max(self._active)
            self._active.discard(victim)
            self._healthy.discard(victim)
            self.ring = HashRing(sorted(self._active),
                                 replicas=self.ring.replicas)
            queued = list(self._lanes[victim])
            self._lanes[victim].clear()
            for request in queued:
                # Never dispatched to the victim — reroute without
                # touching the attempt budget.
                self._route_locked(request)
            self._m_depth.set(self._depth_locked())
            self._cond.notify_all()
        flight_note("fleet scaling down", worker=victim,
                    requeued=len(queued))
        deadline = time.monotonic() + drain_timeout
        with self._cond:
            while (self._inflight[victim]
                   and self._state != _STATE_STOPPED
                   and time.monotonic() < deadline):
                self._cond.wait(0.02)
        self.supervisor.retire_worker(victim)
        # Leftovers mean the drain timed out (or the worker died while
        # draining): requeue through the normal failover machinery.
        with self._cond:
            leftovers = list(self._inflight[victim].values())
            self._inflight[victim].clear()
            self._m_worker_inflight[victim].set(0)
            entries = [self._blocks.pop(r.id, None)
                       for r in leftovers]
        for entry in entries:
            if entry is not None and self._pool is not None:
                self._pool.deallocate(entry[0])
                self._pool.deallocate(entry[1])
        for request in leftovers:
            self._retry_or_fail(request, ServingError(
                f"worker {victim} retired before request "
                f"{request.id} resolved"))
        self._m_scale_downs.inc()
        flight_note("fleet scaled down", worker=victim,
                    leftovers=len(leftovers))
        return victim

    # -- internals -----------------------------------------------------

    def _fov(self, model: str):
        try:
            return self._fovs[model]
        except KeyError:
            raise KeyError(
                f"unknown model {model!r}; registered: "
                f"{sorted(self.specs)}") from None

    def _depth_locked(self) -> int:
        return (sum(len(lane) for lane in self._lanes.values())
                + len(self._orphans))

    def _pending_locked(self) -> int:
        return (self._depth_locked()
                + sum(len(f) for f in self._inflight.values()))

    def _hint_for_depth(self, depth: int) -> float:
        with self._ewma_lock:
            service = self._ewma_service
        workers = max(len(self.supervisor.healthy_ids()), 1)
        return max(0.05, (depth + 1) * service / workers)

    def _route_locked(self, request: FleetRequest) -> None:
        """Append *request* to its preferred healthy worker's lane
        (skipping workers it already died on), or park it."""
        for wid in self.ring.walk(request.model):
            if wid in self._healthy and wid not in request.tried:
                self._lanes[wid].append(request)
                return
        # Every healthy worker was tried already (or none is healthy):
        # allow a retried request back onto a previously-tried healthy
        # worker rather than starving it.
        for wid in self.ring.walk(request.model):
            if wid in self._healthy:
                self._lanes[wid].append(request)
                return
        self._orphans.append(request)

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self, wid: int) -> None:
        while True:
            with self._cond:
                while True:
                    if self._state == _STATE_STOPPED:
                        return
                    if (wid in self._healthy and self._lanes[wid]
                            and len(self._inflight[wid])
                            < self.inflight_per_worker):
                        request = self._lanes[wid].popleft()
                        self._m_depth.set(self._depth_locked())
                        break
                    self._cond.wait(0.05)
            self._dispatch(wid, request)

    def _dispatch(self, wid: int, request: FleetRequest) -> None:
        now = time.monotonic()
        if request.deadline is not None and now > request.deadline:
            self._fail(request, DeadlineExceeded(
                f"request {request.id} spent "
                f"{now - request.accepted_at:.3f}s queued, past its "
                f"deadline"), missed=True)
            return
        assert self._pool is not None
        fov = self._fovs[request.model]
        out_shape = tuple(v - f + 1
                          for v, f in zip(request.volume.shape, fov))
        in_block, in_array = self._pool.allocate_array(
            request.volume.shape)
        in_array[...] = request.volume
        out_block = self._pool.allocate(
            max(1, int(np.prod(out_shape)) * 8))
        remaining = (None if request.deadline is None
                     else request.deadline - now)
        request.attempts += 1
        request.tried.add(wid)
        request.dispatched_at = now
        request.worker = wid
        with self._cond:
            self._inflight[wid][request.id] = request
            self._blocks[request.id] = (in_block, out_block, out_shape)
            self._m_worker_inflight[wid].set(len(self._inflight[wid]))
        sent = self.supervisor.send(wid, (
            "request", request.id, request.model,
            in_block.handle, request.volume.shape,
            out_block.handle, out_shape, remaining))
        if not sent:
            # The worker died between lane pop and send.  Its death
            # callback may have already popped the in-flight entry and
            # requeued the request — only the side that wins the pop
            # reroutes, so the request is never dispatched twice.
            with self._cond:
                owned = self._inflight[wid].pop(request.id,
                                                None) is not None
                entry = (self._blocks.pop(request.id, None)
                         if owned else None)
                self._m_worker_inflight[wid].set(
                    len(self._inflight[wid]))
            if entry is not None:
                self._pool.deallocate(entry[0])
                self._pool.deallocate(entry[1])
            if owned:
                self._retry_or_fail(request, ServingError(
                    f"worker {wid} unavailable at dispatch"))
            return
        self._m_dispatched.inc()

    # -- completion (supervisor callbacks) -----------------------------

    def _on_message(self, wid: int, message: tuple) -> None:
        kind = message[0]
        if kind == "result":
            self._on_result(wid, message[1])
        elif kind == "error":
            _, rid, ekind, emsg, retry_after = message
            self._on_error(wid, rid, ekind, emsg, retry_after)

    def _pop_flight(self, wid: int, rid: int):
        with self._cond:
            request = self._inflight[wid].pop(rid, None)
            entry = self._blocks.pop(rid, None)
            self._m_worker_inflight[wid].set(len(self._inflight[wid]))
            self._cond.notify_all()
        return request, entry

    def _on_result(self, wid: int, rid: int) -> None:
        request, entry = self._pop_flight(wid, rid)
        if request is None or entry is None:
            # Stale completion (the request was already rerouted or
            # failed); just recycle any blocks still attributed to it.
            if entry is not None:
                self._pool.deallocate(entry[0])
                self._pool.deallocate(entry[1])
            return
        in_block, out_block, out_shape = entry
        result = np.array(out_block.as_array(out_shape), copy=True)
        self._pool.deallocate(in_block)
        self._pool.deallocate(out_block)
        t1 = time.monotonic()
        service = t1 - (request.dispatched_at or t1)
        with self._ewma_lock:
            self._ewma_service = (0.8 * self._ewma_service
                                  + 0.2 * service)
            ewma = self._ewma_service
        self._g_ewma.set(ewma)
        with self._cond:
            self._worker_stats[wid]["served"] += 1
        self._m_completed.inc()
        self._m_worker_served[wid].inc()
        self.slo.observe(
            (request.dispatched_at or t1) - request.accepted_at,
            service, t1 - request.accepted_at,
            deadline_met=(True if request.deadline is not None
                          else None))
        self._record_spans(request, wid, status="ok")
        request._resolve(result, None)

    def _on_error(self, wid: int, rid: int, ekind: str, emsg: str,
                  retry_after: float) -> None:
        request, entry = self._pop_flight(wid, rid)
        if entry is not None:
            self._pool.deallocate(entry[0])
            self._pool.deallocate(entry[1])
        if request is None:
            return
        error = error_from_kind(ekind, emsg, retry_after)
        if ekind == "deadline":
            self._fail(request, error, missed=True, worker=wid)
        elif ekind in ("unknown-model", "bad-request"):
            self._fail(request, error, worker=wid)
        else:
            # Transient worker-side failure: spend a failover attempt.
            self._retry_or_fail(request, error)

    def _on_worker_up(self, wid: int) -> None:
        with self._cond:
            if self._state == _STATE_STOPPED:
                return
            self._healthy.add(wid)
            orphans = list(self._orphans)
            self._orphans.clear()
            for request in orphans:
                self._route_locked(request)
            self._cond.notify_all()

    def _on_worker_down(self, wid: int, reason: str) -> None:
        """Supervisor confirmed the worker dead (already joined):
        reclaim its blocks and requeue everything it held."""
        with self._cond:
            self._healthy.discard(wid)
            queued = list(self._lanes[wid])
            self._lanes[wid].clear()
            flights = list(self._inflight[wid].values())
            self._inflight[wid].clear()
            self._m_worker_inflight[wid].set(0)
            entries = [self._blocks.pop(r.id, None) for r in flights]
            self._cond.notify_all()
        for entry in entries:
            if entry is not None and self._pool is not None:
                self._pool.deallocate(entry[0])
                self._pool.deallocate(entry[1])
        flight_note("fleet rerouting after worker death", worker=wid,
                    reason=reason, queued=len(queued),
                    inflight=len(flights))
        for request in flights:
            self._m_failover.inc()
            self._retry_or_fail(request, ServingError(
                f"worker {wid} died mid-request: {reason}"))
        with self._cond:
            if self._state != _STATE_STOPPED:
                for request in queued:
                    # Never dispatched there — reroute without
                    # touching the attempt budget.
                    self._route_locked(request)
                self._cond.notify_all()

    def _retry_or_fail(self, request: FleetRequest,
                       error: BaseException) -> None:
        if (request.deadline is not None
                and time.monotonic() > request.deadline):
            self._fail(request, DeadlineExceeded(
                f"request {request.id} ran out of deadline after "
                f"{request.attempts} attempt(s); last error: {error}"),
                missed=True)
            return
        if request.attempts >= self.max_attempts:
            self._fail(request, ServingError(
                f"request {request.id} failed after "
                f"{request.attempts} attempt(s): {error}"))
            return
        with self._cond:
            if self._state == _STATE_STOPPED:
                stopped = True
            else:
                stopped = False
                self._route_locked(request)
                self._cond.notify_all()
        if stopped:
            self._fail(request, ServerClosed(
                f"fleet stopped before request {request.id} resolved"))
        else:
            self._m_requeued.inc()

    def _fail(self, request: FleetRequest, error: BaseException,
              missed: bool = False,
              worker: Optional[int] = None) -> None:
        self._m_failed.inc()
        if missed:
            self._m_missed.inc()
            wid = worker if worker is not None else request.worker
            if wid is not None:
                with self._cond:
                    self._worker_stats[wid]["deadline_missed"] += 1
            self.slo.observe(
                time.monotonic() - request.accepted_at, None, None,
                deadline_met=False)
        self._record_spans(
            request, worker if worker is not None else request.worker,
            status="deadline_exceeded" if missed else "error")
        request._resolve(None, error)

    def _record_spans(self, request: FleetRequest,
                      wid: Optional[int], status: str) -> None:
        tracer = get_tracer()
        if not tracer.enabled or request.trace_ctx is None:
            return
        if request.dispatched_at is not None:
            tracer.record(
                "fleet.dispatch",
                tracer.from_monotonic(request.dispatched_at),
                tracer.now(), category="serving",
                parent=request.trace_ctx, worker=wid,
                attempt=request.attempts, request=request.id)
        tracer.record("request",
                      tracer.from_monotonic(request.accepted_at),
                      tracer.now(), category="serving",
                      context=request.trace_ctx, status=status,
                      model=request.model, request=request.id)

    # -- background hygiene --------------------------------------------

    def _janitor_loop(self) -> None:
        """Expire queued/orphaned requests whose deadline passed while
        no worker could take them (e.g. all quarantined)."""
        while True:
            time.sleep(0.05)
            now = time.monotonic()
            expired: List[FleetRequest] = []
            with self._cond:
                if self._state == _STATE_STOPPED:
                    return
                for lane in list(self._lanes.values()) + [self._orphans]:
                    keep: Deque[FleetRequest] = deque()
                    while lane:
                        request = lane.popleft()
                        if (request.deadline is not None
                                and now > request.deadline):
                            expired.append(request)
                        else:
                            keep.append(request)
                    lane.extend(keep)
                self._m_depth.set(self._depth_locked())
                if expired:
                    self._cond.notify_all()
            for request in expired:
                self._fail(request, DeadlineExceeded(
                    f"request {request.id} expired before any worker "
                    f"could take it"), missed=True)
