"""Lightweight argument validation helpers used across the library."""

from __future__ import annotations

from typing import Any

import numpy as np


def check_positive_int(value: Any, name: str) -> int:
    """Return *value* as an int, raising ValueError unless it is >= 1."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return ivalue


def check_nonnegative(value: Any, name: str) -> float:
    """Return *value* as a float, raising ValueError unless it is >= 0."""
    fvalue = float(value)
    if fvalue < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return fvalue


def check_probability(value: Any, name: str) -> float:
    """Return *value* as a float in [0, 1]."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return fvalue


def check_array3(arr: Any, name: str, *, dtype=None) -> np.ndarray:
    """Coerce *arr* to a C-contiguous 3D float array.

    1D/2D inputs are promoted by prepending singleton axes, matching the
    library-wide convention that 2D is 3D with one dimension of size 1.
    """
    a = np.asarray(arr, dtype=dtype if dtype is not None else np.float64)
    if a.ndim > 3:
        raise ValueError(f"{name} must be at most 3-dimensional, got ndim={a.ndim}")
    while a.ndim < 3:
        a = a[np.newaxis]
    if a.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return np.ascontiguousarray(a)


def check_choice(value: Any, name: str, choices: tuple) -> Any:
    """Validate that *value* is one of *choices*."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value
