"""Shape algebra for 3D ConvNet images, kernels and windows.

Everything in ZNN is a 3D image; 2D images are the special case where one
dimension has size one.  Shapes are therefore always canonicalised to
3-tuples of positive ints.  This module centralises the arithmetic that
the rest of the library relies on: output sizes of valid/full
convolutions (possibly sparse/dilated), max-pooling and max-filtering
window arithmetic, and the field-of-view computation used by
sliding-window ConvNets (Section II-A of the paper).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

Shape3 = Tuple[int, int, int]


def as_shape3(value: int | Sequence[int], *, name: str = "shape") -> Shape3:
    """Canonicalise *value* to a 3-tuple of positive ints.

    Accepts a scalar (isotropic shape), a 1/2/3-element sequence.  A
    2-element sequence is promoted to 3D by prepending a singleton
    dimension, matching the paper's "2D images are a special case in
    which one of the dimensions has size one".
    """
    if isinstance(value, (int,)):
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
        return (value, value, value)
    seq = tuple(int(v) for v in value)
    if len(seq) == 1:
        seq = (1, 1, seq[0])
    elif len(seq) == 2:
        seq = (1,) + seq
    if len(seq) != 3:
        raise ValueError(f"{name} must have 1, 2 or 3 dimensions, got {value!r}")
    if any(v <= 0 for v in seq):
        raise ValueError(f"{name} dimensions must be positive, got {seq}")
    return seq  # type: ignore[return-value]


def effective_kernel_shape(kernel: int | Sequence[int],
                           sparsity: int | Sequence[int] = 1) -> Shape3:
    """Footprint of a sparse (dilated) kernel.

    A sparse convolution with sparsity ``s`` uses only every s-th voxel
    within its sliding window (Section II), so a kernel of size ``k``
    covers ``(k - 1) * s + 1`` voxels per dimension.
    """
    k = as_shape3(kernel, name="kernel")
    s = as_shape3(sparsity, name="sparsity")
    return tuple((kd - 1) * sd + 1 for kd, sd in zip(k, s))  # type: ignore[return-value]


def valid_conv_shape(image: int | Sequence[int],
                     kernel: int | Sequence[int],
                     sparsity: int | Sequence[int] = 1) -> Shape3:
    """Output shape of a valid (sparse) convolution: n - (k-1)*s per dim."""
    n = as_shape3(image, name="image")
    ke = effective_kernel_shape(kernel, sparsity)
    out = tuple(nd - kd + 1 for nd, kd in zip(n, ke))
    if any(v <= 0 for v in out):
        raise ValueError(
            f"valid convolution of image {n} with effective kernel {ke} "
            f"yields non-positive output {out}")
    return out  # type: ignore[return-value]


def full_conv_shape(image: int | Sequence[int],
                    kernel: int | Sequence[int],
                    sparsity: int | Sequence[int] = 1) -> Shape3:
    """Output shape of a full (sparse) convolution: n + (k-1)*s per dim."""
    n = as_shape3(image, name="image")
    ke = effective_kernel_shape(kernel, sparsity)
    return tuple(nd + kd - 1 for nd, kd in zip(n, ke))  # type: ignore[return-value]


def pool_shape(image: int | Sequence[int],
               window: int | Sequence[int]) -> Shape3:
    """Output shape of max-pooling with block size p: n/p per dim.

    The paper requires n divisible by p; we enforce it.
    """
    n = as_shape3(image, name="image")
    p = as_shape3(window, name="window")
    for nd, pd in zip(n, p):
        if nd % pd != 0:
            raise ValueError(f"image {n} not divisible by pooling window {p}")
    return tuple(nd // pd for nd, pd in zip(n, p))  # type: ignore[return-value]


def filter_shape(image: int | Sequence[int],
                 window: int | Sequence[int],
                 sparsity: int | Sequence[int] = 1) -> Shape3:
    """Output shape of max-filtering: like a valid convolution of the window."""
    return valid_conv_shape(image, window, sparsity)


def filter_backward_shape(image: int | Sequence[int],
                          window: int | Sequence[int],
                          sparsity: int | Sequence[int] = 1) -> Shape3:
    """Backward image of max-filtering grows back to the input size."""
    return full_conv_shape(image, window, sparsity)


def voxels(shape: int | Sequence[int]) -> int:
    """Number of voxels in a canonicalised shape."""
    return math.prod(as_shape3(shape))


def is_subshape(inner: Sequence[int], outer: Sequence[int]) -> bool:
    """True if every dimension of *inner* fits inside *outer*."""
    return all(i <= o for i, o in zip(as_shape3(inner), as_shape3(outer)))


def field_of_view(layers: Iterable[tuple[str, int | Sequence[int], int | Sequence[int]]]
                  ) -> Shape3:
    """Field of view of a ConvNet given its (kind, window, sparsity) layers.

    *layers* is an iterable of ``(kind, window, sparsity)`` where kind is
    one of ``"conv"``, ``"filter"`` (both shrink by the effective window
    minus one) or ``"pool"`` (multiplies resolution).  Returns the input
    size mapping to exactly one output voxel — the ConvNet field of view
    v of Section II-A.
    """
    fov = (1, 1, 1)
    for kind, window, sparsity in reversed(list(layers)):
        w = as_shape3(window, name="window")
        s = as_shape3(sparsity, name="sparsity")
        if kind in ("conv", "filter"):
            eff = tuple((wd - 1) * sd + 1 for wd, sd in zip(w, s))
            fov = tuple(f + e - 1 for f, e in zip(fov, eff))
        elif kind == "pool":
            fov = tuple(f * wd for f, wd in zip(fov, w))
        else:
            raise ValueError(f"unknown layer kind {kind!r}")
    return fov  # type: ignore[return-value]


def output_shape_for_input(input_shape: int | Sequence[int],
                           layers: Iterable[tuple[str, int | Sequence[int], int | Sequence[int]]]
                           ) -> Shape3:
    """Propagate an input shape through (kind, window, sparsity) layers."""
    shape = as_shape3(input_shape, name="input")
    for kind, window, sparsity in layers:
        if kind == "conv" or kind == "filter":
            shape = valid_conv_shape(shape, window, sparsity)
        elif kind == "pool":
            shape = pool_shape(shape, window)
        elif kind == "transfer":
            continue
        else:
            raise ValueError(f"unknown layer kind {kind!r}")
    return shape


def input_shape_for_output(output_shape: int | Sequence[int],
                           layers: Iterable[tuple[str, int | Sequence[int], int | Sequence[int]]]
                           ) -> Shape3:
    """Inverse of :func:`output_shape_for_input` (no pooling remainders)."""
    shape = as_shape3(output_shape, name="output")
    for kind, window, sparsity in reversed(list(layers)):
        w = as_shape3(window, name="window")
        s = as_shape3(sparsity, name="sparsity")
        if kind in ("conv", "filter"):
            eff = tuple((wd - 1) * sd + 1 for wd, sd in zip(w, s))
            shape = tuple(o + e - 1 for o, e in zip(shape, eff))
        elif kind == "pool":
            shape = tuple(o * wd for o, wd in zip(shape, w))
        elif kind == "transfer":
            continue
        else:
            raise ValueError(f"unknown layer kind {kind!r}")
    return shape  # type: ignore[return-value]
