"""Seeded random-number helpers.

All stochastic components of the library (weight init, data providers,
dropout) accept either an integer seed, a :class:`numpy.random.Generator`
or ``None``; this module provides the single coercion point so behaviour
is reproducible end-to-end from one seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Used to give each worker thread / data-provider stream its own
    statistically independent stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def kernel_init(rng: np.random.Generator, shape: tuple[int, ...],
                fan_in: Optional[int] = None) -> np.ndarray:
    """He-style normal initialisation scaled by fan-in.

    ZNN's reference implementation draws kernel weights from a zero-mean
    Gaussian scaled by the number of input connections; we follow the
    same convention so that activations neither explode nor vanish in
    the deep max-filter nets used in the experiments.
    """
    if fan_in is None:
        fan_in = int(np.prod(shape))
    std = float(np.sqrt(2.0 / max(fan_in, 1)))
    return rng.normal(0.0, std, size=shape).astype(np.float64)
