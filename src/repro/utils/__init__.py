"""Shared utilities: shape algebra, validation, seeded RNG."""

from repro.utils.shapes import (
    Shape3,
    as_shape3,
    effective_kernel_shape,
    field_of_view,
    filter_backward_shape,
    filter_shape,
    full_conv_shape,
    input_shape_for_output,
    is_subshape,
    output_shape_for_input,
    pool_shape,
    valid_conv_shape,
    voxels,
)
from repro.utils.validation import (
    check_array3,
    check_choice,
    check_nonnegative,
    check_positive_int,
    check_probability,
)
from repro.utils.rng import SeedLike, as_generator, kernel_init, spawn

__all__ = [
    "Shape3",
    "as_shape3",
    "effective_kernel_shape",
    "field_of_view",
    "filter_backward_shape",
    "filter_shape",
    "full_conv_shape",
    "input_shape_for_output",
    "is_subshape",
    "output_shape_for_input",
    "pool_shape",
    "valid_conv_shape",
    "voxels",
    "check_array3",
    "check_choice",
    "check_nonnegative",
    "check_positive_int",
    "check_probability",
    "SeedLike",
    "as_generator",
    "kernel_init",
    "spawn",
]
