"""Network specification files.

The original ZNN release defines networks in text config files; we
support an equivalent INI format with two styles that can be mixed:

**Layered shorthand** — one ``[layered]`` section mapping directly onto
:func:`repro.graph.build_layered_network`::

    [layered]
    spec = CTMCTMCTCT
    width = 8
    kernel = 3 3 3
    window = 2
    transfer = relu
    final_transfer = linear
    skip_kernels = true
    output_nodes = 1

**Explicit graph** — one ``[node <name>]`` section per image node and
one ``[edge <name>]`` section per operation, for arbitrary topologies
(ZNN "allows for easy extensions … with an arbitrary topology")::

    [node input]
    [node a]
    [node out]

    [edge c1]
    type = conv
    src = input
    dst = a
    kernel = 3 3 3
    sparsity = 2

    [edge t1]
    type = transfer
    src = a
    dst = out
    transfer = tanh

Values: shapes are one or three whitespace/comma-separated ints;
booleans are ``true``/``false``; numbers per Python.  Unknown keys and
sections raise, so typos fail loudly.
"""

from __future__ import annotations

import configparser
import io
from typing import Dict, List, Optional, Union

from repro.graph.builders import build_layered_network
from repro.graph.computation_graph import ComputationGraph

__all__ = ["parse_spec", "load_spec", "dump_layered_spec",
           "parse_layered_kwargs", "load_layered_kwargs"]

_LAYERED_KEYS = {
    "spec": str,
    "width": "intlist",
    "kernel": "shape",
    "window": "shape",
    "transfer": str,
    "final_transfer": str,
    "input_nodes": int,
    "output_nodes": int,
    "skip_kernels": bool,
    "dropout_rate": float,
}

_EDGE_KEYS = {
    "type": str,
    "src": str,
    "dst": str,
    "kernel": "shape",
    "window": "shape",
    "sparsity": "shape",
    "transfer": str,
    "rate": float,
}


def _parse_value(kind, raw: str):
    raw = raw.strip()
    if kind is str:
        return raw
    if kind is int:
        return int(raw)
    if kind is float:
        return float(raw)
    if kind is bool:
        low = raw.lower()
        if low in ("true", "yes", "1", "on"):
            return True
        if low in ("false", "no", "0", "off"):
            return False
        raise ValueError(f"not a boolean: {raw!r}")
    parts = [p for p in raw.replace(",", " ").split() if p]
    values = [int(p) for p in parts]
    if kind == "shape":
        if len(values) == 1:
            return values[0]
        if len(values) in (2, 3):
            return tuple(values)
        raise ValueError(f"shape needs 1–3 ints, got {raw!r}")
    if kind == "intlist":
        return values[0] if len(values) == 1 else values
    raise AssertionError(kind)


def _layered_kwargs(parser: configparser.ConfigParser) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    for key, raw in parser.items("layered"):
        if key not in _LAYERED_KEYS:
            raise ValueError(f"unknown [layered] key {key!r}")
        kwargs[key] = _parse_value(_LAYERED_KEYS[key], raw)
    if "spec" not in kwargs or "width" not in kwargs:
        raise ValueError("[layered] requires at least spec and width")
    return kwargs


def parse_layered_kwargs(text: str) -> Dict[str, object]:
    """The ``[layered]`` section of spec-file *text* as builder kwargs.

    Serving needs the raw arguments — not a built graph — because the
    dense-equivalent twin is rebuilt per tile shape
    (:func:`repro.core.dense_equivalent_network` takes spec + kwargs).
    Explicit-graph spec files have no pooling structure to transform
    and raise ``ValueError``.
    """
    parser = configparser.ConfigParser()
    parser.read_file(io.StringIO(text))
    if "layered" not in parser.sections():
        raise ValueError(
            "spec file has no [layered] section; dense-equivalent serving "
            "requires the layered shorthand (explicit graphs have no "
            "pooling structure to transform)")
    return _layered_kwargs(parser)


def load_layered_kwargs(path) -> Dict[str, object]:
    """:func:`parse_layered_kwargs` for a spec file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_layered_kwargs(fh.read())


def parse_spec(text: str) -> ComputationGraph:
    """Build a :class:`ComputationGraph` from spec-file *text*."""
    parser = configparser.ConfigParser()
    parser.read_file(io.StringIO(text))

    sections = parser.sections()
    has_layered = "layered" in sections
    node_sections = [s for s in sections if s.startswith("node ")]
    edge_sections = [s for s in sections if s.startswith("edge ")]
    recognised = (int(has_layered) + len(node_sections) + len(edge_sections))
    if recognised != len(sections):
        unknown = [s for s in sections
                   if s != "layered" and not s.startswith(("node ", "edge "))]
        raise ValueError(f"unknown section(s): {unknown}")

    if has_layered and (node_sections or edge_sections):
        raise ValueError(
            "a spec file is either [layered] or explicit nodes/edges, "
            "not both")

    if has_layered:
        return build_layered_network(**_layered_kwargs(parser))

    if not node_sections or not edge_sections:
        raise ValueError("explicit spec needs [node …] and [edge …] sections")

    graph = ComputationGraph()
    for section in node_sections:
        name = section[len("node "):].strip()
        if not name:
            raise ValueError("node section with empty name")
        layer = 0
        for key, raw in parser.items(section):
            if key == "layer":
                layer = int(raw)
            else:
                raise ValueError(f"unknown [node] key {key!r}")
        graph.add_node(name, layer=layer)

    for section in edge_sections:
        name = section[len("edge "):].strip()
        params: Dict[str, object] = {}
        for key, raw in parser.items(section):
            if key not in _EDGE_KEYS:
                raise ValueError(f"unknown [edge] key {key!r}")
            params[key] = _parse_value(_EDGE_KEYS[key], raw)
        kind = params.pop("type", None)
        src = params.pop("src", None)
        dst = params.pop("dst", None)
        if not (kind and src and dst):
            raise ValueError(
                f"edge {name!r} requires type, src and dst")
        graph.add_edge(name, src, dst, kind, **params)

    graph.validate()
    return graph


def load_spec(path) -> ComputationGraph:
    """Build a :class:`ComputationGraph` from a spec file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spec(fh.read())


def dump_layered_spec(spec: str, width: Union[int, List[int]],
                      **kwargs) -> str:
    """Render builder arguments back into spec-file text (the inverse
    of the [layered] shorthand; useful for experiment logging)."""
    lines = ["[layered]", f"spec = {spec}"]
    width_txt = (" ".join(str(w) for w in width)
                 if isinstance(width, (list, tuple)) else str(width))
    lines.append(f"width = {width_txt}")
    for key, value in kwargs.items():
        if key not in _LAYERED_KEYS:
            raise ValueError(f"unknown layered key {key!r}")
        if isinstance(value, (list, tuple)):
            value = " ".join(str(v) for v in value)
        lines.append(f"{key} = {value}")
    return "\n".join(lines) + "\n"
