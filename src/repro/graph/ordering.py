"""Node orderings and task priorities (Section VI-A).

Two unique strict orderings of the computation-graph nodes are defined,
by the **longest distance** (in edges) to any output node and to any
input node respectively, both in decreasing order; nodes at equal
distance are tie-broken deterministically (by layer, then name).

* The **forward** task of edge ``e = (u, v)`` gets priority equal to
  the position of ``v`` in the distance-to-output ordering — tasks with
  the longest remaining path to a sink run first, favouring low-latency
  schedules, and all edges converging on the same node share one
  priority value so they run back-to-back (temporal locality of the
  convergent sum).
* The **backward** task gets the position of ``u`` in the
  distance-to-input ordering.
* **Update** tasks get the engine's lowest priority.

Smaller priority values are more urgent throughout the library.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.computation_graph import ComputationGraph, EdgeSpec, NodeSpec

__all__ = [
    "longest_distance_to_outputs",
    "longest_distance_to_inputs",
    "output_distance_ordering",
    "input_distance_ordering",
    "forward_priorities",
    "backward_priorities",
]


def longest_distance_to_outputs(graph: ComputationGraph) -> Dict[str, int]:
    """Longest path length (in edges) from each node to any output node."""
    dist: Dict[str, int] = {}
    for node in reversed(graph.topological_order()):
        if node.is_output:
            dist[node.name] = 0
        else:
            dist[node.name] = 1 + max(dist[e.dst] for e in node.out_edges)
    return dist


def longest_distance_to_inputs(graph: ComputationGraph) -> Dict[str, int]:
    """Longest path length (in edges) from any input node to each node."""
    dist: Dict[str, int] = {}
    for node in graph.topological_order():
        if node.is_input:
            dist[node.name] = 0
        else:
            dist[node.name] = 1 + max(dist[e.src] for e in node.in_edges)
    return dist


def _ordering(graph: ComputationGraph, dist: Dict[str, int]) -> Dict[str, int]:
    """Unique strict ordering by decreasing distance; ties broken by
    (layer, name) so same-layer nodes sit adjacently — the paper's
    "ordered in some unique way" chosen for temporal locality."""
    nodes: List[NodeSpec] = list(graph.nodes.values())
    nodes.sort(key=lambda n: (-dist[n.name], n.layer, n.name))
    return {n.name: i for i, n in enumerate(nodes)}


def output_distance_ordering(graph: ComputationGraph) -> Dict[str, int]:
    """Position of each node in the distance-to-output ordering."""
    return _ordering(graph, longest_distance_to_outputs(graph))


def input_distance_ordering(graph: ComputationGraph) -> Dict[str, int]:
    """Position of each node in the distance-to-input ordering."""
    return _ordering(graph, longest_distance_to_inputs(graph))


def forward_priorities(graph: ComputationGraph) -> Dict[str, int]:
    """Priority of the forward task of every edge: position of the
    edge's head node in the distance-to-output ordering."""
    ordering = output_distance_ordering(graph)
    return {e.name: ordering[e.dst] for e in graph.edges.values()}


def backward_priorities(graph: ComputationGraph) -> Dict[str, int]:
    """Priority of the backward task of every edge: position of the
    edge's tail node in the distance-to-input ordering."""
    ordering = input_distance_ordering(graph)
    return {e.name: ordering[e.src] for e in graph.edges.values()}
