"""The ConvNet computation graph (Section II, Fig 1).

A directed acyclic graph whose nodes represent 3D images and whose
edges represent image-filtering operations: convolution (possibly
sparse), max-pooling, max-filtering, or transfer function.  When
multiple edges converge on a node, the node sums their outputs.

This module is purely structural — executable edge semantics (the
actual numpy work) are built on top in :mod:`repro.core`.  Keeping the
structure separate lets the PRAM analysis and the discrete-event
simulator consume the same graphs without touching any tensors.

ZNN "works for general computation graphs"; the common-ConvNet
properties of Section II (convergent edges are convolutions, layered
organisation, …) are available as advisory checks, not hard
requirements (:meth:`ComputationGraph.check_convnet_properties`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.shapes import (
    Shape3,
    as_shape3,
    pool_shape,
    valid_conv_shape,
)

__all__ = ["EdgeKind", "NodeSpec", "EdgeSpec", "ComputationGraph"]

#: Edge kinds.  ``conv`` edges are trainable (kernel + the head node's
#: bias is carried by transfer edges in ZNN; we attach biases to
#: transfer edges, matching "Transfer function adds a number called the
#: bias").
EdgeKind = str
EDGE_KINDS: Tuple[str, ...] = ("conv", "transfer", "pool", "filter",
              "dropout", "custom")


@dataclass
class NodeSpec:
    """A 3D image node.

    ``shape`` is filled in by :meth:`ComputationGraph.propagate_shapes`.
    """

    name: str
    layer: int = 0
    shape: Optional[Shape3] = None
    in_edges: List["EdgeSpec"] = field(default_factory=list)
    out_edges: List["EdgeSpec"] = field(default_factory=list)

    @property
    def is_input(self) -> bool:
        return not self.in_edges

    @property
    def is_output(self) -> bool:
        return not self.out_edges

    def __repr__(self) -> str:
        return f"NodeSpec({self.name!r}, layer={self.layer}, shape={self.shape})"


@dataclass
class EdgeSpec:
    """An image-filtering operation between two nodes.

    Parameters relevant per kind:

    * ``conv``: ``kernel`` (k per dim), ``sparsity``
    * ``pool``: ``window`` (p per dim)
    * ``filter``: ``window``, ``sparsity``
    * ``transfer``: ``transfer`` (name in
      :data:`repro.tensor.TRANSFER_FUNCTIONS`)
    * ``dropout``: ``rate``
    """

    name: str
    src: str
    dst: str
    kind: EdgeKind
    kernel: Optional[Shape3] = None
    window: Optional[Shape3] = None
    sparsity: Shape3 = (1, 1, 1)
    transfer: Optional[str] = None
    rate: float = 0.0
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EDGE_KINDS:
            raise ValueError(
                f"edge kind must be one of {EDGE_KINDS}, got {self.kind!r}")
        if self.kind == "conv" and self.kernel is None:
            raise ValueError(f"conv edge {self.name!r} requires a kernel shape")
        if self.kind in ("pool", "filter") and self.window is None:
            raise ValueError(f"{self.kind} edge {self.name!r} requires a window")
        if self.kind == "transfer" and self.transfer is None:
            raise ValueError(f"transfer edge {self.name!r} requires a transfer name")
        if self.kind == "custom" and self.op is None:
            raise ValueError(
                f"custom edge {self.name!r} requires a registered op name")
        if self.kernel is not None:
            self.kernel = as_shape3(self.kernel, name="kernel")
        if self.window is not None:
            self.window = as_shape3(self.window, name="window")
        self.sparsity = as_shape3(self.sparsity, name="sparsity")

    @property
    def is_trainable(self) -> bool:
        """Conv edges carry kernels; transfer edges carry biases."""
        return self.kind in ("conv", "transfer")

    def output_shape(self, input_shape: Shape3) -> Shape3:
        """Shape this edge produces from *input_shape* (forward pass)."""
        if self.kind == "conv":
            return valid_conv_shape(input_shape, self.kernel, self.sparsity)
        if self.kind == "pool":
            return pool_shape(input_shape, self.window)
        if self.kind == "filter":
            return valid_conv_shape(input_shape, self.window, self.sparsity)
        if self.kind == "custom":
            from repro.core.custom import get_custom_op
            return get_custom_op(self.op).shape(input_shape)
        return as_shape3(input_shape)

    def __repr__(self) -> str:
        return (f"EdgeSpec({self.name!r}, {self.src}->{self.dst}, "
                f"kind={self.kind!r})")


class ComputationGraph:
    """A DAG of :class:`NodeSpec` and :class:`EdgeSpec`."""

    def __init__(self) -> None:
        self.nodes: Dict[str, NodeSpec] = {}
        self.edges: Dict[str, EdgeSpec] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, name: str, layer: int = 0) -> NodeSpec:
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = NodeSpec(name=name, layer=layer)
        self.nodes[name] = node
        return node

    def add_edge(self, name: str, src: str, dst: str, kind: EdgeKind,
                 **params) -> EdgeSpec:
        if name in self.edges:
            raise ValueError(f"duplicate edge {name!r}")
        if src not in self.nodes:
            raise ValueError(f"unknown source node {src!r}")
        if dst not in self.nodes:
            raise ValueError(f"unknown destination node {dst!r}")
        edge = EdgeSpec(name=name, src=src, dst=dst, kind=kind, **params)
        self.edges[name] = edge
        self.nodes[src].out_edges.append(edge)
        self.nodes[dst].in_edges.append(edge)
        return edge

    # -- queries ------------------------------------------------------------

    @property
    def input_nodes(self) -> List[NodeSpec]:
        return [n for n in self.nodes.values() if n.is_input]

    @property
    def output_nodes(self) -> List[NodeSpec]:
        return [n for n in self.nodes.values() if n.is_output]

    def topological_order(self) -> List[NodeSpec]:
        """Kahn topological sort; raises on cycles."""
        indegree = {name: len(n.in_edges) for name, n in self.nodes.items()}
        ready = sorted(name for name, d in indegree.items() if d == 0)
        order: List[NodeSpec] = []
        queue = list(ready)
        while queue:
            name = queue.pop(0)
            node = self.nodes[name]
            order.append(node)
            for edge in node.out_edges:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    queue.append(edge.dst)
        if len(order) != len(self.nodes):
            raise ValueError("computation graph contains a cycle")
        return order

    def validate(self) -> None:
        """Structural validation: acyclic, connected inputs/outputs."""
        self.topological_order()
        if not self.input_nodes:
            raise ValueError("graph has no input nodes")
        if not self.output_nodes:
            raise ValueError("graph has no output nodes")

    def check_convnet_properties(self) -> List[str]:
        """Advisory checks for the common-ConvNet properties of
        Section II.  Returns a list of human-readable violations
        (empty = all properties hold); never raises."""
        problems: List[str] = []
        for node in self.nodes.values():
            if len(node.in_edges) > 1:
                non_conv = [e.name for e in node.in_edges if e.kind != "conv"]
                if non_conv:
                    problems.append(
                        f"node {node.name!r} has convergent non-convolution "
                        f"edges: {non_conv}")
            elif len(node.in_edges) == 1:
                # A sole incoming edge should be a nonlinear filtering op.
                edge = node.in_edges[0]
                if edge.kind == "conv" and len(self.nodes[edge.src].in_edges) == 1:
                    src_in = self.nodes[edge.src].in_edges[0]
                    if src_in.kind == "conv":
                        problems.append(
                            f"adjacent convolutions {src_in.name!r} -> "
                            f"{edge.name!r} could be collapsed")
        return problems

    # -- shape propagation ----------------------------------------------------

    def propagate_shapes(self, input_shape: int | Sequence[int]) -> None:
        """Assign shapes to every node from a common input shape.

        All input nodes receive *input_shape*; convergent edges must
        agree on the destination shape.
        """
        shape = as_shape3(input_shape, name="input_shape")
        for node in self.nodes.values():
            node.shape = None
        for node in self.input_nodes:
            node.shape = shape
        for node in self.topological_order():
            if node.shape is None:
                raise ValueError(f"node {node.name!r} unreachable from inputs")
            for edge in node.out_edges:
                out = edge.output_shape(node.shape)
                dst = self.nodes[edge.dst]
                if dst.shape is None:
                    dst.shape = out
                elif dst.shape != out:
                    raise ValueError(
                        f"shape mismatch at node {dst.name!r}: "
                        f"{dst.shape} vs {out} via edge {edge.name!r}")

    # -- misc -------------------------------------------------------------------

    def layers(self) -> Dict[int, List[NodeSpec]]:
        """Nodes grouped by their layer index."""
        out: Dict[int, List[NodeSpec]] = {}
        for node in self.nodes.values():
            out.setdefault(node.layer, []).append(node)
        return {k: sorted(v, key=lambda n: n.name) for k, v in sorted(out.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ComputationGraph(nodes={len(self.nodes)}, "
                f"edges={len(self.edges)})")
