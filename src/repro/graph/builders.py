"""Layered-network builders (Sections II, VIII).

The paper's benchmark architectures are given as layer-type strings —
e.g. ``CTMCTMCTCT`` for the 3D net (four fully-connected convolutional
layers C with 3x3x3 kernels, each followed by a transfer layer T, and
two 2x2x2 max-filtering layers M) and ``CTPCTPCTCTCTCT`` for the GPU
comparison (P = max-pooling).  This module turns such strings into
:class:`repro.graph.ComputationGraph` instances.

Layer characters:

* ``C`` — fully connected convolutional layer (every node of the
  previous image layer connects to every node of the new layer).
* ``T`` — transfer-function layer (one-to-one edges).
* ``M`` — max-filtering layer (one-to-one).
* ``P`` — max-pooling layer (one-to-one).
* ``D`` — dropout layer (one-to-one; an extension shipped with ZNN).

With ``skip_kernels=True`` (Fig 2) each max-filtering layer multiplies
the *sparsity* of all subsequent convolutions and max-filterings by its
window size, turning the net into the sparse dense-output equivalent of
a sliding-window max-pooling ConvNet.  ZNN is more general — sparsity
"need not increase in lock step with max-filtering" — so an explicit
``sparsity_schedule`` can override the automatic rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graph.computation_graph import ComputationGraph
from repro.utils.shapes import Shape3, as_shape3

__all__ = ["LayeredSpec", "build_layered_network", "pool_to_filter_spec"]

WidthLike = Union[int, Sequence[int]]
ShapeLike = Union[int, Sequence[int]]


class LayeredSpec:
    """Parsed layered-network specification.

    Attributes mirror the builder arguments after normalisation; the
    spec can be inspected (e.g. by the cost model) without building a
    graph.
    """

    def __init__(self, spec: str, width: WidthLike, kernel: ShapeLike | Sequence,
                 window: ShapeLike | Sequence = 2, transfer: str = "relu",
                 input_nodes: int = 1, output_nodes: Optional[int] = None,
                 skip_kernels: bool = False, dropout_rate: float = 0.5,
                 final_transfer: Optional[str] = None) -> None:
        spec = spec.upper()
        if not spec or any(c not in "CTMPD" for c in spec):
            raise ValueError(
                f"spec must be a non-empty string over C/T/M/P/D, got {spec!r}")
        self.spec = spec
        self.transfer = transfer
        self.final_transfer = final_transfer if final_transfer is not None \
            else transfer
        self.input_nodes = int(input_nodes)
        if self.input_nodes < 1:
            raise ValueError("input_nodes must be >= 1")
        self.skip_kernels = bool(skip_kernels)
        self.dropout_rate = float(dropout_rate)

        n_conv = spec.count("C")
        n_window = sum(spec.count(c) for c in "MP")
        if n_conv == 0:
            raise ValueError("spec must contain at least one C layer")

        self.widths: List[int] = self._per_layer(width, n_conv, "width")
        if output_nodes is not None:
            self.widths[-1] = int(output_nodes)
        self.kernels: List[Shape3] = [
            as_shape3(k, name="kernel")
            for k in self._per_layer_shapes(kernel, n_conv, "kernel")]
        self.windows: List[Shape3] = [
            as_shape3(w, name="window")
            for w in self._per_layer_shapes(window, max(n_window, 1), "window")]

    @staticmethod
    def _per_layer(value: WidthLike, n: int, name: str) -> List[int]:
        if isinstance(value, int):
            values = [value] * n
        else:
            values = [int(v) for v in value]
        if len(values) != n:
            raise ValueError(f"{name} list must have {n} entries, got {len(values)}")
        if any(v < 1 for v in values):
            raise ValueError(f"{name} entries must be >= 1, got {values}")
        return values

    @staticmethod
    def _per_layer_shapes(value, n: int, name: str) -> List:
        """A scalar or a *tuple* is one shape applied to every layer; a
        *list* gives one entry (scalar or shape tuple) per layer."""
        if isinstance(value, int):
            return [value] * n
        if isinstance(value, tuple):
            return [value] * n
        seq = list(value)
        if len(seq) != n:
            raise ValueError(f"{name} list must have {n} entries, got {len(seq)}")
        return seq

    def conv_layer_sizes(self) -> List[Tuple[int, int]]:
        """(f, f') pairs for every C layer, in order."""
        sizes = []
        prev = self.input_nodes
        ci = 0
        for c in self.spec:
            if c == "C":
                sizes.append((prev, self.widths[ci]))
                prev = self.widths[ci]
                ci += 1
        return sizes


def build_layered_network(spec: str, width: WidthLike,
                          kernel: ShapeLike | Sequence = 3,
                          window: ShapeLike | Sequence = 2,
                          transfer: str = "relu",
                          input_nodes: int = 1,
                          output_nodes: Optional[int] = None,
                          skip_kernels: bool = False,
                          sparsity_schedule: Optional[Sequence[ShapeLike]] = None,
                          dropout_rate: float = 0.5,
                          final_transfer: Optional[str] = None) -> ComputationGraph:
    """Build a layered ConvNet computation graph from a type string.

    Parameters
    ----------
    spec:
        Layer-type string over ``C``/``T``/``M``/``P``/``D``.
    width:
        Nodes per C layer (int, or one int per C layer).
    kernel:
        Kernel size per C layer (scalar, shape tuple, or list of either).
    window:
        Window size per M/P layer.
    transfer:
        Transfer-function name for T layers.
    input_nodes:
        Number of input image nodes.
    output_nodes:
        Override the width of the final C layer (e.g. 1 for a boundary
        map).
    skip_kernels:
        Automatically dilate convolutions/filters after each
        max-filtering layer (Fig 2).
    sparsity_schedule:
        Explicit per-C-layer sparsities, overriding ``skip_kernels`` —
        ZNN's independent sparsity control.
    dropout_rate:
        Rate for any ``D`` layers.
    final_transfer:
        Transfer-function name for the *last* T layer (e.g. ``"linear"``
        so the network emits unbounded logits for a logistic loss);
        defaults to ``transfer``.
    """
    parsed = LayeredSpec(spec, width, kernel, window, transfer,
                         input_nodes, output_nodes, skip_kernels,
                         dropout_rate, final_transfer)
    graph = ComputationGraph()

    prev_names: List[str] = []
    for i in range(parsed.input_nodes):
        node = graph.add_node(f"L0_{i}", layer=0)
        prev_names.append(node.name)

    explicit = None
    if sparsity_schedule is not None:
        explicit = [as_shape3(s, name="sparsity") for s in sparsity_schedule]
        if len(explicit) != parsed.spec.count("C"):
            raise ValueError(
                "sparsity_schedule must have one entry per C layer")

    sparsity: Shape3 = (1, 1, 1)
    ci = wi = 0
    for li, c in enumerate(parsed.spec, start=1):
        new_names: List[str] = []
        if c == "C":
            conv_sparsity = (explicit[ci] if explicit is not None
                             else (sparsity if parsed.skip_kernels else (1, 1, 1)))
            f_out = parsed.widths[ci]
            for j in range(f_out):
                node = graph.add_node(f"L{li}_{j}", layer=li)
                new_names.append(node.name)
            for j, dst in enumerate(new_names):
                for ii, src in enumerate(prev_names):
                    graph.add_edge(f"conv_L{li}_{ii}_{j}", src, dst, "conv",
                                   kernel=parsed.kernels[ci],
                                   sparsity=conv_sparsity)
            ci += 1
        elif c == "T":
            is_last_t = li - 1 == parsed.spec.rfind("T")
            t_name = parsed.final_transfer if is_last_t else parsed.transfer
            for j, src in enumerate(prev_names):
                node = graph.add_node(f"L{li}_{j}", layer=li)
                new_names.append(node.name)
                graph.add_edge(f"xfer_L{li}_{j}", src, node.name, "transfer",
                               transfer=t_name)
        elif c == "M":
            w = parsed.windows[wi]
            filt_sparsity = sparsity if parsed.skip_kernels else (1, 1, 1)
            for j, src in enumerate(prev_names):
                node = graph.add_node(f"L{li}_{j}", layer=li)
                new_names.append(node.name)
                graph.add_edge(f"filt_L{li}_{j}", src, node.name, "filter",
                               window=w, sparsity=filt_sparsity)
            if parsed.skip_kernels:
                sparsity = tuple(s * wd for s, wd in zip(sparsity, w))  # type: ignore[assignment]
            wi += 1
        elif c == "P":
            w = parsed.windows[wi]
            for j, src in enumerate(prev_names):
                node = graph.add_node(f"L{li}_{j}", layer=li)
                new_names.append(node.name)
                graph.add_edge(f"pool_L{li}_{j}", src, node.name, "pool",
                               window=w)
            wi += 1
        elif c == "D":
            for j, src in enumerate(prev_names):
                node = graph.add_node(f"L{li}_{j}", layer=li)
                new_names.append(node.name)
                graph.add_edge(f"drop_L{li}_{j}", src, node.name, "dropout",
                               rate=parsed.dropout_rate)
        prev_names = new_names

    graph.validate()
    return graph


def pool_to_filter_spec(spec: str) -> str:
    """Convert a max-pooling layer string to its max-filtering
    dense-output equivalent (Fig 2): every ``P`` becomes ``M``.

    Build the result with ``skip_kernels=True`` to obtain the sparse
    convolutions that make the two networks compute identical values on
    the overlapping output lattice.
    """
    return spec.upper().replace("P", "M")
