"""Task dependency graph (Section V, Fig 3).

One round of gradient learning unrolls the computation graph into
tasks: forward / backward / update per edge, plus the *data provider*
and per-output *loss gradient* tasks.  Following the paper's Fig 3,
steps 3–5 of one iteration are followed by steps 1–2 of the next, so the
round is ordered: loss gradient → backward pass → updates → (provider,
forward pass), with each edge's forward task additionally depending on
its own update task — exactly the dependency the FORCE protocol handles
in the live engine.

Convolution edges can be expanded in two modes:

* ``"direct"`` — one task per pass per edge, each costing
  ``n'^3 k^3`` FLOPs;
* ``"fft"`` — the memoized FFT decomposition ZNN actually executes:
  per-node image FFTs and inverse FFTs, per-edge kernel FFTs (lowest
  priority, re-done after each update), and per-edge spectral products,
  with node sums accumulated in the spectral domain.

The structure is deliberately *not* a networkx graph: wide networks
produce hundreds of thousands of tasks and the discrete-event simulator
needs compact arrays.  :meth:`TaskGraph.to_networkx` converts small
graphs for analysis and testing.

Priorities follow :mod:`repro.graph.ordering`: forward tasks take the
head node's position in the distance-to-output ordering, backward tasks
the tail node's position in the distance-to-input ordering, and update
(and kernel re-transform) tasks the engine-wide lowest priority.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.computation_graph import ComputationGraph, EdgeSpec
from repro.graph.ordering import (
    input_distance_ordering,
    output_distance_ordering,
)
from repro.pram.costs import (
    DEFAULT_FFT_CONSTANT,
    direct_conv_task_cost,
    fft_cost,
    filter_task_cost,
    pointwise_product_cost,
    pool_task_cost,
    transfer_task_cost,
)
from repro.utils.shapes import voxels

__all__ = ["TaskGraph", "build_task_graph", "LOWEST_TASK_PRIORITY"]

#: Matches repro.scheduler.engine.LOWEST_PRIORITY.
LOWEST_TASK_PRIORITY = 2**31


@dataclass
class TaskGraph:
    """Compact integer-indexed task DAG with costs and priorities."""

    names: List[str] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)
    costs: List[float] = field(default_factory=list)
    priorities: List[int] = field(default_factory=list)
    successors: List[List[int]] = field(default_factory=list)
    indegree: List[int] = field(default_factory=list)
    ids: Dict[str, int] = field(default_factory=dict)

    def add_task(self, name: str, kind: str, cost: float,
                 priority: int) -> int:
        if name in self.ids:
            raise ValueError(f"duplicate task {name!r}")
        tid = len(self.names)
        self.ids[name] = tid
        self.names.append(name)
        self.kinds.append(kind)
        self.costs.append(float(cost))
        self.priorities.append(int(priority))
        self.successors.append([])
        self.indegree.append(0)
        return tid

    def add_dependency(self, before: int, after: int) -> None:
        """Declare that *after* cannot start until *before* completes."""
        self.successors[before].append(after)
        self.indegree[after] += 1

    def depend_on_all(self, befores: Sequence[int], after: int) -> None:
        for b in befores:
            self.add_dependency(b, after)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    @property
    def total_cost(self) -> float:
        """Serial work T1 of one round (sum of all task costs)."""
        return sum(self.costs)

    def critical_path_cost(self) -> float:
        """Length (in FLOPs) of the longest dependency chain — the
        T-infinity of this particular task decomposition."""
        order = self.topological_order()
        finish = [0.0] * len(self)
        best = 0.0
        # Process in reverse topological order: longest path *from* each task.
        for tid in reversed(order):
            tail = max((finish[s] for s in self.successors[tid]), default=0.0)
            finish[tid] = self.costs[tid] + tail
            best = max(best, finish[tid])
        return best

    def topological_order(self) -> List[int]:
        indeg = list(self.indegree)
        ready = [i for i, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while ready:
            tid = ready.pop()
            order.append(tid)
            for s in self.successors[tid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self):
            raise ValueError("task graph contains a cycle")
        return order

    def validate(self) -> None:
        self.topological_order()

    def to_networkx(self):
        """Convert to a networkx DiGraph (small graphs / tests only)."""
        import networkx as nx

        g = nx.DiGraph()
        for tid, name in enumerate(self.names):
            g.add_node(name, kind=self.kinds[tid], cost=self.costs[tid],
                       priority=self.priorities[tid])
        for tid, succs in enumerate(self.successors):
            for s in succs:
                g.add_edge(self.names[tid], self.names[s])
        return g

    def count_kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for k in self.kinds:
            out[k] = out.get(k, 0) + 1
        return out


def build_task_graph(graph: ComputationGraph,
                     conv_mode: str | Dict[str, str] = "direct",
                     fft_constant: float = DEFAULT_FFT_CONSTANT,
                     include_updates: bool = True) -> TaskGraph:
    """Unroll *graph* (shapes propagated) into one round's task DAG.

    Parameters
    ----------
    conv_mode:
        ``"direct"`` or ``"fft"`` globally, or a per-edge-name mapping
        (the autotuner's per-layer choice).
    include_updates:
        False builds a pure inference+backward graph (no update tasks,
        no forward-on-update dependencies).
    """
    for node in graph.nodes.values():
        if node.shape is None:
            raise ValueError(
                "propagate_shapes() must run before build_task_graph()")

    def mode_of(edge: EdgeSpec) -> str:
        if edge.kind != "conv":
            return "n/a"
        m = conv_mode.get(edge.name, "direct") if isinstance(conv_mode, dict) \
            else conv_mode
        if m not in ("direct", "fft"):
            raise ValueError(f"conv mode must be direct|fft, got {m!r}")
        return m

    pos_out = output_distance_ordering(graph)
    pos_in = input_distance_ordering(graph)

    tg = TaskGraph()
    LOW = LOWEST_TASK_PRIORITY

    # ---- root tasks ------------------------------------------------------
    provider = tg.add_task(
        "provider", "provider",
        cost=float(sum(voxels(n.shape) for n in graph.input_nodes)),
        priority=-1)
    lossgrad: Dict[str, int] = {}
    for node in graph.output_nodes:
        lossgrad[node.name] = tg.add_task(
            f"lossgrad:{node.name}", "lossgrad",
            cost=float(voxels(node.shape)), priority=pos_in[node.name])

    # ---- backward pass ---------------------------------------------------
    # bwd_ready[v]: tasks whose completion makes v's backward image
    # available to the backward tasks of v's in-edges.
    bwd_ready: Dict[str, List[int]] = {}
    bwd_task: Dict[str, int] = {}       # per-edge spatial backward task
    fft_grad: Dict[str, int] = {}       # per-node gradient FFT (fft mode)
    prod_bwd: Dict[str, int] = {}

    topo = graph.topological_order()
    for node in reversed(topo):
        v = node.name
        if node.is_output:
            bwd_ready[v] = [lossgrad[v]]
            continue
        fft_edges = [e for e in node.out_edges if mode_of(e) == "fft"]
        other_edges = [e for e in node.out_edges if mode_of(e) != "fft"]
        producers: List[int] = []
        for e in other_edges:
            w = graph.nodes[e.dst]
            if e.kind == "conv":
                cost = direct_conv_task_cost(node.shape, e.kernel, e.sparsity)
            elif e.kind == "pool":
                cost = pool_task_cost(node.shape)
            elif e.kind == "filter":
                cost = filter_task_cost(node.shape, e.window, backward=True)
            else:  # transfer / dropout
                cost = transfer_task_cost(node.shape)
            t = tg.add_task(f"bwd:{e.name}", "backward", cost, pos_in[e.src])
            tg.depend_on_all(bwd_ready[e.dst], t)
            bwd_task[e.name] = t
            producers.append(t)
        for e in fft_edges:
            w = e.dst
            if w not in fft_grad:
                fft_grad[w] = tg.add_task(
                    f"fft_grad:{w}", "fft", fft_cost(node.shape, fft_constant),
                    pos_in[w])
                tg.depend_on_all(bwd_ready[w], fft_grad[w])
            t = tg.add_task(f"prod_bwd:{e.name}", "backward",
                            pointwise_product_cost(node.shape), pos_in[e.src])
            tg.add_dependency(fft_grad[w], t)
            prod_bwd[e.name] = t
            producers.append(t)
        if fft_edges:
            ifft = tg.add_task(f"ifft_bwd:{v}", "fft",
                               fft_cost(node.shape, fft_constant), pos_in[v])
            tg.depend_on_all(producers, ifft)
            bwd_ready[v] = [ifft]
        else:
            bwd_ready[v] = producers

    # ---- updates ---------------------------------------------------------
    upd_task: Dict[str, int] = {}
    fft_kernel: Dict[str, int] = {}
    if include_updates:
        for e in graph.edges.values():
            u_shape = graph.nodes[e.src].shape
            v_shape = graph.nodes[e.dst].shape
            if e.kind == "conv":
                if mode_of(e) == "fft":
                    cost = (fft_cost(u_shape, fft_constant)
                            + pointwise_product_cost(u_shape))
                    dep = fft_grad.get(e.dst)
                    deps = [dep] if dep is not None else bwd_ready[e.dst]
                else:
                    cost = direct_conv_task_cost(u_shape, e.kernel, e.sparsity)
                    deps = [bwd_task[e.name]]
                t = tg.add_task(f"upd:{e.name}", "update", cost, LOW)
                tg.depend_on_all(deps, t)
                upd_task[e.name] = t
                if mode_of(e) == "fft":
                    # The next forward needs the updated kernel's spectrum.
                    fk = tg.add_task(f"fft_kernel:{e.name}", "fft",
                                     fft_cost(u_shape, fft_constant), LOW)
                    tg.add_dependency(t, fk)
                    fft_kernel[e.name] = fk
            elif e.kind == "transfer":
                t = tg.add_task(f"upd:{e.name}", "update",
                                transfer_task_cost(v_shape), LOW)
                tg.depend_on_all([bwd_task[e.name]], t)
                upd_task[e.name] = t

    # ---- forward pass ----------------------------------------------------
    fwd_ready: Dict[str, List[int]] = {}
    fft_img: Dict[str, int] = {}
    for node in topo:
        u = node.name
        if node.is_input:
            fwd_ready[u] = [provider]
            continue
        fft_edges = [e for e in node.in_edges if mode_of(e) == "fft"]
        other_edges = [e for e in node.in_edges if mode_of(e) != "fft"]
        producers: List[int] = []
        for e in other_edges:
            src = graph.nodes[e.src]
            if e.kind == "conv":
                cost = direct_conv_task_cost(src.shape, e.kernel, e.sparsity)
            elif e.kind == "pool":
                cost = pool_task_cost(src.shape)
            elif e.kind == "filter":
                cost = filter_task_cost(src.shape, e.window)
            else:
                cost = transfer_task_cost(node.shape)
            t = tg.add_task(f"fwd:{e.name}", "forward", cost, pos_out[e.dst])
            tg.depend_on_all(fwd_ready[e.src], t)
            ut = upd_task.get(e.name)
            if ut is not None:
                tg.add_dependency(ut, t)
            producers.append(t)
        for e in fft_edges:
            src = graph.nodes[e.src]
            if e.src not in fft_img:
                fft_img[e.src] = tg.add_task(
                    f"fft_img:{e.src}", "fft",
                    fft_cost(src.shape, fft_constant), pos_out[e.src])
                tg.depend_on_all(fwd_ready[e.src], fft_img[e.src])
            t = tg.add_task(f"prod_fwd:{e.name}", "forward",
                            pointwise_product_cost(src.shape), pos_out[e.dst])
            tg.add_dependency(fft_img[e.src], t)
            fk = fft_kernel.get(e.name)
            if fk is not None:
                tg.add_dependency(fk, t)
            producers.append(t)
        if fft_edges:
            ifft = tg.add_task(f"ifft_fwd:{u}", "fft",
                               fft_cost(graph.nodes[fft_edges[0].src].shape,
                                        fft_constant),
                               pos_out[u])
            tg.depend_on_all(producers, ifft)
            fwd_ready[u] = [ifft]
        else:
            fwd_ready[u] = producers

    return tg
