"""Graph substrate: computation graph, layered builders, orderings,
task dependency graph."""

from repro.graph.builders import (
    LayeredSpec,
    build_layered_network,
    pool_to_filter_spec,
)
from repro.graph.computation_graph import (
    ComputationGraph,
    EdgeKind,
    EdgeSpec,
    NodeSpec,
)
from repro.graph.ordering import (
    backward_priorities,
    forward_priorities,
    input_distance_ordering,
    longest_distance_to_inputs,
    longest_distance_to_outputs,
    output_distance_ordering,
)
from repro.graph.specfile import (
    dump_layered_spec,
    load_layered_kwargs,
    load_spec,
    parse_layered_kwargs,
    parse_spec,
)
from repro.graph.taskgraph import (
    LOWEST_TASK_PRIORITY,
    TaskGraph,
    build_task_graph,
)

__all__ = [
    "LayeredSpec",
    "build_layered_network",
    "pool_to_filter_spec",
    "ComputationGraph",
    "EdgeKind",
    "EdgeSpec",
    "NodeSpec",
    "backward_priorities",
    "forward_priorities",
    "input_distance_ordering",
    "longest_distance_to_inputs",
    "longest_distance_to_outputs",
    "output_distance_ordering",
    "dump_layered_spec",
    "load_layered_kwargs",
    "load_spec",
    "parse_layered_kwargs",
    "parse_spec",
    "LOWEST_TASK_PRIORITY",
    "TaskGraph",
    "build_task_graph",
]
