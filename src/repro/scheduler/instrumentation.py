"""Execution tracing for the task engines.

Attach a :class:`TraceRecorder` to a :class:`repro.scheduler.TaskEngine`
(or :class:`SerialEngine`) via its ``recorder`` attribute and every
executed task is logged with wall-clock start/end, the worker that ran
it, how long it waited in the queue, and whether it succeeded.  The
summary gives the quantities the paper's Section VIII discussion is
about — per-worker busy time, utilization over the traced span, and the
split of time between forward / backward / update / other task families
(task names are prefixed ``fwd:``, ``bwd:``, ``upd:``… by the network).

Recorded spans export to ``chrome://tracing`` JSON via
:func:`repro.observability.write_chrome_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.runtime import make_lock

__all__ = ["TaskRecord", "TraceSummary", "TraceRecorder"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed task."""

    name: str
    worker: int
    start: float
    end: float
    #: Seconds the task spent queued before a worker picked it up
    #: (0.0 when the engine could not attribute a queue entry, e.g.
    #: FORCEd subtasks that never waited).
    queue_wait: float = 0.0
    #: ``"ok"`` or ``"error"`` (the task body raised).
    status: str = "ok"

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    @property
    def family(self) -> str:
        """Task-name prefix before the first colon ('fwd', 'upd', …)."""
        head, _, _ = self.name.partition(":")
        return head or "anonymous"


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates over one recorded span."""

    tasks: int
    span: float
    busy_per_worker: Dict[int, float]
    time_per_family: Dict[str, float]
    #: Tasks whose body raised (still counted in ``tasks``).
    failed: int = 0
    #: Total seconds tasks spent queued before execution.
    total_queue_wait: float = 0.0

    @property
    def workers(self) -> int:
        return len(self.busy_per_worker)

    @property
    def utilization(self) -> float:
        """Busy worker-time divided by (span x workers)."""
        if not self.span or not self.busy_per_worker:
            return 0.0
        return sum(self.busy_per_worker.values()) / (
            self.span * len(self.busy_per_worker))

    @property
    def mean_queue_wait(self) -> float:
        return self.total_queue_wait / self.tasks if self.tasks else 0.0


class TraceRecorder:
    """Thread-safe sink for :class:`TaskRecord` entries."""

    def __init__(self) -> None:
        self._lock = make_lock("scheduler.trace")
        self._records: List[TaskRecord] = []  # guarded-by: _lock

    def record(self, name: str, worker: int, start: float, end: float,
               queue_wait: float = 0.0, status: str = "ok") -> None:
        if end < start:
            raise ValueError(f"task {name!r} ends before it starts")
        if queue_wait < 0:
            queue_wait = 0.0
        with self._lock:
            self._records.append(
                TaskRecord(name, worker, start, end, queue_wait, status))

    def records(self) -> List[TaskRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> TraceSummary:
        records = self.records()
        if not records:
            return TraceSummary(0, 0.0, {}, {})
        t0 = min(r.start for r in records)
        t1 = max(r.end for r in records)
        busy: Dict[int, float] = {}
        families: Dict[str, float] = {}
        failed = 0
        wait = 0.0
        for r in records:
            busy[r.worker] = busy.get(r.worker, 0.0) + r.duration
            families[r.family] = families.get(r.family, 0.0) + r.duration
            failed += r.failed
            wait += r.queue_wait
        return TraceSummary(tasks=len(records), span=t1 - t0,
                            busy_per_worker=busy, time_per_family=families,
                            failed=failed, total_queue_wait=wait)
