"""Serial task executor — the ``T_1`` baseline.

Executes the same task objects as :class:`repro.scheduler.TaskEngine`
but on the calling thread, draining the queue in priority order.  This
is both the speedup denominator of Section VIII and a deterministic
execution mode that makes unit-testing the graph logic easy.

Like the threaded engine it honours an optional
:class:`repro.resilience.RetryPolicy` (failed tasks re-execute in place
after backoff) and an installed :class:`repro.resilience.FaultPlan`.
A serial engine cannot preempt its own thread, so ``timeout`` is
advisory here: overruns are counted in ``engine.tasks.timed_out`` but
never abort the task.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy
from repro.scheduler.task import Task, force
from repro.sync.priority_queue import HeapOfLists

__all__ = ["SerialEngine"]


class SerialEngine:
    """Drop-in single-threaded replacement for :class:`TaskEngine`.

    ``submit`` enqueues; ``run_until_idle`` (called automatically by
    ``shutdown``/context exit, or manually mid-round) pops and executes
    until the queue drains.  Because spawned tasks land back on the same
    queue, one call executes a whole training round.
    """

    def __init__(self, scheduler: Optional[Any] = None,
                 recorder: Optional[Any] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.num_workers = 1
        self.queue = scheduler if scheduler is not None else HeapOfLists()
        #: Optional repro.scheduler.TraceRecorder logging every task.
        self.recorder = recorder
        self.retry_policy = retry_policy
        self._executed = 0
        reg = get_registry()
        self._metrics = reg
        self._m_failed = reg.counter("engine.failed")
        self._m_busy = reg.counter("engine.busy_seconds")
        self._m_timed_out = reg.counter("engine.tasks.timed_out")
        self._m_families: dict = {}
        self._m_retried: dict = {}

    def start(self) -> "SerialEngine":
        return self

    def __enter__(self) -> "SerialEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.run_until_idle()

    def shutdown(self) -> None:
        self.run_until_idle()

    # ------------------------------------------------------------------

    def submit(self, task: Task) -> Task:
        task.mark_queued()
        task.queued_at = (
            time.perf_counter())  # nondeterministic: queue-wait metric
        self.queue.push(task.priority, task, is_valid=task.is_queued)
        return task

    def spawn(self, fn: Callable[[], Any], priority: int = 0,
              name: str = "") -> Task:
        return self.submit(Task(fn, priority=priority, name=name))

    def force(self, update_task: Optional[Task], fn: Callable[[], Any],
              name: str = "") -> None:
        force(update_task, Task(fn, name=name))

    def _retried_counter(self, family: str):
        counter = self._m_retried.get(family)
        if counter is None:
            counter = self._metrics.counter("engine.tasks.retried",
                                            family=family)
            self._m_retried[family] = counter
        return counter

    def run_until_idle(self) -> int:
        """Execute queued tasks (and everything they spawn) to quiescence.

        Returns the number of tasks executed by this call.  With a
        retry policy, a failing task re-executes in place (after
        backoff) until it succeeds or the retry budget is exhausted;
        only then does the failure propagate.
        """
        from repro.scheduler.engine import task_family

        policy = self.retry_policy
        count = 0
        while True:
            try:
                _, task = self.queue.pop(block=False)
            except IndexError:
                break
            family = task_family(task.name)
            while True:
                t0 = time.perf_counter()
                queue_wait = t0 - task.queued_at if task.queued_at else 0.0
                try:
                    plan = active_plan()
                    if plan is not None:
                        plan.check(family, task.name)
                    tracer = get_tracer()
                    if tracer.enabled:
                        with tracer.task_span(task, worker=0):
                            task.execute()
                    else:
                        task.execute()
                except BaseException as exc:
                    t1 = time.perf_counter()
                    self._m_busy.inc(t1 - t0)
                    if (policy is not None
                            and policy.should_retry(exc, task.attempts)
                            and task.reset_for_retry()):
                        self._retried_counter(family).inc()
                        if self.recorder is not None:
                            self.recorder.record(task.name, 0, t0, t1,
                                                 queue_wait=queue_wait,
                                                 status="retried")
                        time.sleep(policy.backoff(task.attempts - 1))
                        task.mark_queued()  # re-execute in place
                        continue
                    # Record the failure before propagating so traces
                    # don't silently under-count work.
                    self._m_failed.inc()
                    if self.recorder is not None:
                        self.recorder.record(task.name, 0, t0, t1,
                                             queue_wait=queue_wait,
                                             status="error")
                    self._executed += count
                    raise
                break
            t1 = time.perf_counter()
            self._m_busy.inc(t1 - t0)
            if policy is not None and policy.timeout is not None \
                    and t1 - t0 > policy.timeout:
                # Advisory only: the serial engine cannot preempt itself.
                self._m_timed_out.inc()
            counter = self._m_families.get(family)
            if counter is None:
                counter = self._metrics.counter("engine.tasks", family=family)
                self._m_families[family] = counter
            counter.inc()
            if self.recorder is not None:
                self.recorder.record(task.name, 0, t0, t1,
                                     queue_wait=queue_wait)
            count += 1
        self._executed += count
        return count

    @property
    def executed(self) -> int:
        return self._executed

    @property
    def errors(self) -> list:
        return []
