"""Threaded task-execution engine (Section VI-B).

A predetermined number of worker threads repeatedly pick the most
urgent task off a shared scheduling structure and execute it.  The
default structure is the heap-of-lists priority queue; FIFO / LIFO /
work-stealing alternatives (Section X) plug in through the same
interface (see :mod:`repro.scheduler.strategies`).

In CPython the GIL serialises pure-Python bytecode, but the heavy task
bodies here are numpy FFTs, tensordots and ufuncs which release the GIL
for their inner loops, so workers do overlap real work on multi-core
hosts.  The scalability *measurements* of the paper are reproduced by
the discrete-event simulator (:mod:`repro.simulate`) which schedules the
identical task graph with this engine's policy — see DESIGN.md.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from repro.scheduler.task import Task, force
from repro.sync.priority_queue import HeapOfLists, QueueClosed

__all__ = ["TaskEngine", "LOWEST_PRIORITY"]

#: Priority value assigned to update tasks — strictly less urgent than
#: any forward/backward priority the graph can produce (Section VI-A).
LOWEST_PRIORITY = 2**31


class TaskEngine:
    """Executes tasks with *num_workers* threads until closed.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's ``N`` workers).
    scheduler:
        Scheduling structure implementing ``push(priority, item,
        is_valid)``, ``pop(block, timeout)``, ``close()``.  Defaults to
        a fresh :class:`repro.sync.HeapOfLists`.

    Use as a context manager to guarantee shutdown::

        with TaskEngine(num_workers=4) as engine:
            engine.submit(task)
            done.wait()
    """

    def __init__(self, num_workers: int = 1,
                 scheduler: Optional[Any] = None,
                 recorder: Optional[Any] = None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.queue = scheduler if scheduler is not None else HeapOfLists()
        #: Optional repro.scheduler.TraceRecorder logging every task.
        self.recorder = recorder
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()
        self._executed = 0
        self._errors: List[BaseException] = []

    # ------------------------------------------------------------------

    def start(self) -> "TaskEngine":
        with self._lock:
            if self._started:
                return self
            self._started = True
        for i in range(self.num_workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"znn-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def shutdown(self) -> None:
        """Close the queue and join all workers."""
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        if self._errors:
            raise self._errors[0]

    def __enter__(self) -> "TaskEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------

    def submit(self, task: Task) -> Task:
        """Enqueue *task* at its own priority."""
        task.mark_queued()
        self.queue.push(task.priority, task, is_valid=task.is_queued)
        return task

    def spawn(self, fn: Callable[[], Any], priority: int = 0,
              name: str = "") -> Task:
        """Create and enqueue a task in one step."""
        return self.submit(Task(fn, priority=priority, name=name))

    def force(self, update_task: Optional[Task], fn: Callable[[], Any],
              name: str = "") -> None:
        """FORCE a forward subtask behind its edge's update task
        (Algorithm 1) from the current worker thread."""
        force(update_task, Task(fn, name=name))

    # ------------------------------------------------------------------

    @property
    def executed(self) -> int:
        """Tasks executed so far (attached subtasks included)."""
        with self._lock:
            return self._executed

    @property
    def errors(self) -> List[BaseException]:
        with self._lock:
            return list(self._errors)

    def _worker_loop(self) -> None:
        worker_index = int(threading.current_thread().name.rsplit("-", 1)[-1])
        while True:
            try:
                _, task = self.queue.pop(block=True, timeout=None)
            except QueueClosed:
                return
            except IndexError:  # pragma: no cover - timeout unused here
                continue
            try:
                if self.recorder is not None:
                    import time
                    t0 = time.perf_counter()
                    task.execute()
                    self.recorder.record(task.name, worker_index, t0,
                                         time.perf_counter())
                else:
                    task.execute()
                with self._lock:
                    self._executed += 1
            except BaseException as exc:  # propagate via shutdown()
                with self._lock:
                    self._errors.append(exc)
                self.queue.close()
                return
