"""Threaded task-execution engine (Section VI-B).

A predetermined number of worker threads repeatedly pick the most
urgent task off a shared scheduling structure and execute it.  The
default structure is the heap-of-lists priority queue; FIFO / LIFO /
work-stealing alternatives (Section X) plug in through the same
interface (see :mod:`repro.scheduler.strategies`).

In CPython the GIL serialises pure-Python bytecode, but the heavy task
bodies here are numpy FFTs, tensordots and ufuncs which release the GIL
for their inner loops, so workers do overlap real work on multi-core
hosts.  The scalability *measurements* of the paper are reproduced by
the discrete-event simulator (:mod:`repro.simulate`) which schedules the
identical task graph with this engine's policy — see DESIGN.md.

Every executed task feeds the observability registry: per-family
``engine.tasks`` counters, ``engine.failed``, and accumulated
``engine.busy_seconds`` / ``engine.idle_seconds`` per worker — the live
counterpart of the utilization quantities behind Figs 5–7.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.observability.metrics import Counter, get_registry
from repro.scheduler.task import Task, force
from repro.sync.priority_queue import HeapOfLists, QueueClosed

__all__ = ["TaskEngine", "LOWEST_PRIORITY"]

#: Priority value assigned to update tasks — strictly less urgent than
#: any forward/backward priority the graph can produce (Section VI-A).
LOWEST_PRIORITY = 2**31


def task_family(name: str) -> str:
    """Task-name prefix before the first colon ('fwd', 'upd', …)."""
    head, _, _ = name.partition(":")
    return head or "anonymous"


class TaskEngine:
    """Executes tasks with *num_workers* threads until closed.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's ``N`` workers).
    scheduler:
        Scheduling structure implementing ``push(priority, item,
        is_valid)``, ``pop(block, timeout)``, ``close()``.  Defaults to
        a fresh :class:`repro.sync.HeapOfLists`.

    Use as a context manager to guarantee shutdown::

        with TaskEngine(num_workers=4) as engine:
            engine.submit(task)
            done.wait()
    """

    def __init__(self, num_workers: int = 1,
                 scheduler: Optional[Any] = None,
                 recorder: Optional[Any] = None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.queue = scheduler if scheduler is not None else HeapOfLists()
        #: Optional repro.scheduler.TraceRecorder logging every task.
        self.recorder = recorder
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()
        self._executed = 0
        self._errors: List[BaseException] = []
        self._errors_noted = False
        reg = get_registry()
        self._metrics = reg
        self._m_failed = reg.counter("engine.failed")
        self._m_busy = reg.counter("engine.busy_seconds")
        self._m_idle = reg.counter("engine.idle_seconds")
        self._m_families: Dict[str, Counter] = {}

    # ------------------------------------------------------------------

    def start(self) -> "TaskEngine":
        with self._lock:
            if self._started:
                return self
            self._started = True
        for i in range(self.num_workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"znn-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def shutdown(self) -> None:
        """Close the queue and join all workers.

        If workers failed, the first exception is raised with every
        later one attached as an exception note (so multi-worker
        failures are not swallowed) and available via :attr:`errors`.
        """
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        if self._errors:
            primary = self._errors[0]
            with self._lock:
                note_rest = not self._errors_noted
                self._errors_noted = True
            if note_rest:
                for extra in self._errors[1:]:
                    primary.add_note(
                        "additional worker error (see TaskEngine.errors): "
                        f"{type(extra).__name__}: {extra}")
            raise primary

    def __enter__(self) -> "TaskEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------

    def submit(self, task: Task) -> Task:
        """Enqueue *task* at its own priority."""
        task.mark_queued()
        task.queued_at = time.perf_counter()
        self.queue.push(task.priority, task, is_valid=task.is_queued)
        return task

    def spawn(self, fn: Callable[[], Any], priority: int = 0,
              name: str = "") -> Task:
        """Create and enqueue a task in one step."""
        return self.submit(Task(fn, priority=priority, name=name))

    def force(self, update_task: Optional[Task], fn: Callable[[], Any],
              name: str = "") -> None:
        """FORCE a forward subtask behind its edge's update task
        (Algorithm 1) from the current worker thread."""
        force(update_task, Task(fn, name=name))

    # ------------------------------------------------------------------

    @property
    def executed(self) -> int:
        """Tasks executed so far (attached subtasks included)."""
        with self._lock:
            return self._executed

    @property
    def errors(self) -> List[BaseException]:
        with self._lock:
            return list(self._errors)

    def _family_counter(self, family: str) -> Counter:
        counter = self._m_families.get(family)
        if counter is None:
            counter = self._metrics.counter("engine.tasks", family=family)
            self._m_families[family] = counter
        return counter

    def _worker_loop(self) -> None:
        worker_index = int(threading.current_thread().name.rsplit("-", 1)[-1])
        t_wait = time.perf_counter()
        while True:
            try:
                _, task = self.queue.pop(block=True, timeout=None)
            except QueueClosed:
                return
            except IndexError:  # pragma: no cover - timeout unused here
                t_wait = time.perf_counter()
                continue
            t0 = time.perf_counter()
            self._m_idle.inc(t0 - t_wait)
            queue_wait = t0 - task.queued_at if task.queued_at else 0.0
            error: Optional[BaseException] = None
            try:
                task.execute()
            except BaseException as exc:  # propagate via shutdown()
                error = exc
            t1 = time.perf_counter()
            self._m_busy.inc(t1 - t0)
            self._family_counter(task_family(task.name)).inc()
            if self.recorder is not None:
                self.recorder.record(task.name, worker_index, t0, t1,
                                     queue_wait=queue_wait,
                                     status="ok" if error is None else "error")
            if error is not None:
                self._m_failed.inc()
                with self._lock:
                    self._errors.append(error)
                self.queue.close()
                return
            with self._lock:
                self._executed += 1
            t_wait = t1  # idle clock restarts where the task ended
