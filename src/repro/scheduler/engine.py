"""Threaded task-execution engine (Section VI-B).

A predetermined number of worker threads repeatedly pick the most
urgent task off a shared scheduling structure and execute it.  The
default structure is the heap-of-lists priority queue; FIFO / LIFO /
work-stealing alternatives (Section X) plug in through the same
interface (see :mod:`repro.scheduler.strategies`).

In CPython the GIL serialises pure-Python bytecode, but the heavy task
bodies here are numpy FFTs, tensordots and ufuncs which release the GIL
for their inner loops, so workers do overlap real work on multi-core
hosts.  The scalability *measurements* of the paper are reproduced by
the discrete-event simulator (:mod:`repro.simulate`) which schedules the
identical task graph with this engine's policy — see DESIGN.md.

Every executed task feeds the observability registry: per-family
``engine.tasks`` counters, ``engine.failed``, and accumulated
``engine.busy_seconds`` / ``engine.idle_seconds`` per worker — the live
counterpart of the utilization quantities behind Figs 5–7.

Beyond the paper, the engine is fault-tolerant (see
``docs/robustness.md``): an optional
:class:`repro.resilience.RetryPolicy` re-executes failed tasks with
exponential backoff (``engine.tasks.retried``) before the failure
propagates, and its watchdog abandons tasks stuck past ``timeout``
(``engine.tasks.timed_out``), replacing both the task and the stuck
worker.  An installed :class:`repro.resilience.FaultPlan` injects
failures/hangs per task family for chaos testing; with no plan the
hot path pays a single global read.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.runtime import make_lock
from repro.observability.metrics import Counter, get_registry
from repro.observability.tracing import flight_dump, flight_note, get_tracer
from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy, TaskTimeout
from repro.scheduler.task import Task, force
from repro.sync.priority_queue import HeapOfLists, QueueClosed

__all__ = ["TaskEngine", "LOWEST_PRIORITY", "task_family"]

#: Priority value assigned to update tasks — strictly less urgent than
#: any forward/backward priority the graph can produce (Section VI-A).
LOWEST_PRIORITY = 2**31


def task_family(name: str) -> str:
    """Task-name prefix before the first colon ('fwd', 'upd', …)."""
    head, _, _ = name.partition(":")
    return head or "anonymous"


class TaskEngine:
    """Executes tasks with *num_workers* threads until closed.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's ``N`` workers).
    scheduler:
        Scheduling structure implementing ``push(priority, item,
        is_valid)``, ``pop(block, timeout)``, ``close()``.  Defaults to
        a fresh :class:`repro.sync.HeapOfLists`.
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy`.  Without one
        (the default) the first task failure closes the queue and
        propagates on :meth:`shutdown`, exactly the paper's behaviour.

    Use as a context manager to guarantee shutdown::

        with TaskEngine(num_workers=4) as engine:
            engine.submit(task)
            done.wait()
    """

    def __init__(self, num_workers: int = 1,
                 scheduler: Optional[Any] = None,
                 recorder: Optional[Any] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.queue = scheduler if scheduler is not None else HeapOfLists()
        #: Optional repro.scheduler.TraceRecorder logging every task.
        self.recorder = recorder
        self.retry_policy = retry_policy
        self._lock = make_lock("scheduler.engine")
        self._threads: List[threading.Thread] = []  # guarded-by: _lock
        self._lost_threads: List[threading.Thread] = []  # guarded-by: _lock
        self._started = False  # guarded-by: _lock
        self._executed = 0  # guarded-by: _lock
        self._errors: List[BaseException] = []  # guarded-by: _lock
        self._errors_noted = False  # guarded-by: _lock
        self._next_worker = 0  # guarded-by: _lock
        #: worker index -> (task, start time), for the watchdog.
        self._executing: Dict[int, tuple] = {}  # guarded-by: _lock
        self._abandoned: set = set()  # guarded-by: _lock
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        reg = get_registry()
        self._metrics = reg
        self._m_failed = reg.counter("engine.failed")
        self._m_busy = reg.counter("engine.busy_seconds")
        self._m_idle = reg.counter("engine.idle_seconds")
        self._m_timed_out = reg.counter("engine.tasks.timed_out")
        self._m_families: Dict[str, Counter] = {}  # guarded-by: _lock
        self._m_retried: Dict[str, Counter] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------

    def start(self) -> "TaskEngine":
        with self._lock:
            if self._started:
                return self
            self._started = True
        for _ in range(self.num_workers):
            self._spawn_worker()
        if self.retry_policy is not None and self.retry_policy.timeout:
            self._watchdog = threading.Thread(target=self._watchdog_loop,
                                              name="znn-watchdog",
                                              daemon=True)
            self._watchdog.start()
        return self

    def _spawn_worker(self) -> None:
        with self._lock:
            index = self._next_worker
            self._next_worker += 1
        t = threading.Thread(target=self._worker_loop,
                             name=f"znn-worker-{index}", daemon=True)
        t.start()
        with self._lock:
            self._threads.append(t)

    def shutdown(self) -> None:
        """Close the queue and join all workers.

        If workers failed, the first exception is raised with every
        later one attached as an exception note (so multi-worker
        failures are not swallowed) and available via :attr:`errors`.
        Workers abandoned by the watchdog are daemon threads and are
        only joined briefly — a genuinely hung body cannot block
        shutdown.
        """
        self.queue.close()
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join()
            self._watchdog = None
        with self._lock:
            threads = list(self._threads)
            self._threads.clear()
            lost = list(self._lost_threads)
            self._lost_threads.clear()
        for t in threads:
            t.join()
        for t in lost:
            t.join(timeout=0.1)
        if self._errors:
            primary = self._errors[0]
            with self._lock:
                note_rest = not self._errors_noted
                self._errors_noted = True
            if note_rest:
                for extra in self._errors[1:]:
                    primary.add_note(
                        "additional worker error (see TaskEngine.errors): "
                        f"{type(extra).__name__}: {extra}")
            raise primary

    def __enter__(self) -> "TaskEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------

    def submit(self, task: Task) -> Task:
        """Enqueue *task* at its own priority."""
        task.mark_queued()
        task.queued_at = time.perf_counter()
        self.queue.push(task.priority, task, is_valid=task.is_queued)
        return task

    def spawn(self, fn: Callable[[], Any], priority: int = 0,
              name: str = "") -> Task:
        """Create and enqueue a task in one step."""
        return self.submit(Task(fn, priority=priority, name=name))

    def force(self, update_task: Optional[Task], fn: Callable[[], Any],
              name: str = "") -> None:
        """FORCE a forward subtask behind its edge's update task
        (Algorithm 1) from the current worker thread."""
        force(update_task, Task(fn, name=name))

    # ------------------------------------------------------------------

    @property
    def executed(self) -> int:
        """Tasks executed so far (attached subtasks included)."""
        with self._lock:
            return self._executed

    @property
    def errors(self) -> List[BaseException]:
        with self._lock:
            return list(self._errors)

    def _family_counter(self, family: str) -> Counter:
        # Fast path: dict reads are GIL-atomic.  Insertion happens under
        # the engine lock (double-checked) — concurrent first-use of a
        # family must not race the dict resize.
        counter = self._m_families.get(family)
        if counter is None:
            with self._lock:
                counter = self._m_families.get(family)
                if counter is None:
                    counter = self._metrics.counter("engine.tasks",
                                                    family=family)
                    self._m_families[family] = counter
        return counter

    def _retried_counter(self, family: str) -> Counter:
        counter = self._m_retried.get(family)
        if counter is None:
            with self._lock:
                counter = self._m_retried.get(family)
                if counter is None:
                    counter = self._metrics.counter("engine.tasks.retried",
                                                    family=family)
                    self._m_retried[family] = counter
        return counter

    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        worker_index = int(threading.current_thread().name.rsplit("-", 1)[-1])
        t_wait = time.perf_counter()
        while True:
            try:
                _, task = self.queue.pop(block=True, timeout=None)
            except QueueClosed:
                return
            except IndexError:  # pragma: no cover - timeout unused here
                t_wait = time.perf_counter()
                continue
            t0 = time.perf_counter()
            self._m_idle.inc(t0 - t_wait)
            queue_wait = t0 - task.queued_at if task.queued_at else 0.0
            error: Optional[BaseException] = None
            executed = False
            with self._lock:
                self._executing[worker_index] = (task, t0)
            try:
                plan = active_plan()
                if plan is not None:
                    plan.check(task_family(task.name), task.name)
                # An injected hang may have let the watchdog abandon
                # this task; the replacement owns it now.
                if not task.abandoned:
                    tracer = get_tracer()
                    if tracer.enabled:
                        with tracer.task_span(task, worker=worker_index):
                            task.execute()
                    else:
                        task.execute()
                    executed = True
            except BaseException as exc:  # propagate via shutdown()
                error = exc
            finally:
                with self._lock:
                    self._executing.pop(worker_index, None)
                    worker_abandoned = worker_index in self._abandoned
            t1 = time.perf_counter()
            self._m_busy.inc(t1 - t0)
            family = task_family(task.name)
            self._family_counter(family).inc()
            if worker_abandoned:
                # The watchdog spawned a replacement worker while this
                # one was stuck; it has already accounted for the task.
                return
            if error is not None:
                if (self.retry_policy is not None
                        and self.retry_policy.should_retry(error,
                                                           task.attempts)
                        and task.reset_for_retry()):
                    self._retried_counter(family).inc()
                    if self.recorder is not None:
                        self.recorder.record(task.name, worker_index, t0, t1,
                                             queue_wait=queue_wait,
                                             status="retried")
                    time.sleep(self.retry_policy.backoff(task.attempts - 1))
                    try:
                        self.submit(task)
                    except QueueClosed:
                        pass  # another worker failed fatally; so do we
                    else:
                        t_wait = time.perf_counter()
                        continue
                self._m_failed.inc()
                if self.recorder is not None:
                    self.recorder.record(task.name, worker_index, t0, t1,
                                         queue_wait=queue_wait,
                                         status="error")
                with self._lock:
                    self._errors.append(error)
                flight_note("engine task failed fatally",
                            task=task.name, worker=worker_index,
                            error=f"{type(error).__name__}: {error}")
                flight_dump(f"engine-failed-{task_family(task.name)}")
                self.queue.close()
                return
            if self.recorder is not None:
                self.recorder.record(task.name, worker_index, t0, t1,
                                     queue_wait=queue_wait, status="ok")
            if executed:
                with self._lock:
                    self._executed += 1
            t_wait = t1  # idle clock restarts where the task ended

    # -- watchdog ------------------------------------------------------

    def _watchdog_loop(self) -> None:
        timeout = self.retry_policy.timeout
        interval = max(min(timeout / 4.0, 0.05), 0.001)
        while not self._watchdog_stop.wait(interval):
            now = time.perf_counter()
            with self._lock:
                overdue = [(w, task) for w, (task, t0)
                           in self._executing.items()
                           if now - t0 > timeout]
            for worker_index, task in overdue:
                self._handle_timeout(worker_index, task)

    def _handle_timeout(self, worker_index: int, task: Task) -> None:
        """Abandon a stuck (task, worker) pair; speculatively re-submit
        the task on a fresh worker while retry budget remains, else
        record a :class:`TaskTimeout` and close the queue."""
        with self._lock:
            if worker_index in self._abandoned:
                return
            current = self._executing.get(worker_index)
            if current is None or current[0] is not task:
                return  # finished between scan and handling
            self._abandoned.add(worker_index)
            task.abandoned = True
            self._executing.pop(worker_index, None)
            name = f"znn-worker-{worker_index}"
            for t in list(self._threads):
                if t.name == name:
                    self._threads.remove(t)
                    self._lost_threads.append(t)
        self._m_timed_out.inc()
        timeout_error = TaskTimeout(
            f"task {task.name!r} exceeded {self.retry_policy.timeout}s "
            f"(attempt {task.attempts + 1})")
        if self.retry_policy.should_retry(timeout_error, task.attempts):
            self._retried_counter(task_family(task.name)).inc()
            self._spawn_worker()
            try:
                self.submit(task.clone_for_retry())
            except QueueClosed:
                pass
            return
        with self._lock:
            self._errors.append(timeout_error)
        self.queue.close()
