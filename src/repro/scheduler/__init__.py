"""Task scheduling and execution: priority engine, serial baseline,
FORCE protocol, alternative strategies."""

from repro.scheduler.autoselect import StrategyChoice, select_strategy
from repro.scheduler.engine import LOWEST_PRIORITY, TaskEngine, task_family
from repro.scheduler.instrumentation import (
    TaskRecord,
    TraceRecorder,
    TraceSummary,
)
from repro.scheduler.serial import SerialEngine
from repro.scheduler.strategies import (
    SCHEDULER_FACTORIES,
    FifoScheduler,
    LifoScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.scheduler.task import Task, TaskState, force

__all__ = [
    "StrategyChoice",
    "select_strategy",
    "LOWEST_PRIORITY",
    "TaskRecord",
    "TraceRecorder",
    "TraceSummary",
    "TaskEngine",
    "task_family",
    "SerialEngine",
    "SCHEDULER_FACTORIES",
    "FifoScheduler",
    "LifoScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
    "Task",
    "TaskState",
    "force",
]
