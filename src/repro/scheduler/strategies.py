"""Alternative scheduling structures (Section X).

The ZNN repository "provides alternative scheduling strategies such as
simple FIFO or LIFO as well as some more complex ones based on work
stealing", which "achieve noticeably lower scalability than the one
proposed in the paper for most networks".  We implement all three behind
the same interface as :class:`repro.sync.HeapOfLists` so they can be
plugged into :class:`repro.scheduler.TaskEngine`, the serial engine and
the discrete-event simulator, and be compared head-to-head in
``benchmarks/bench_sched_strategies.py``.

Interface: ``push(priority, item, is_valid=None)``, ``pop(block=True,
timeout=None) -> (priority, item)``, ``close()``, ``__len__``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.analysis.runtime import make_lock
from repro.sync.priority_queue import HeapOfLists, QueueClosed

__all__ = [
    "FifoScheduler",
    "LifoScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
    "SCHEDULER_FACTORIES",
]


class _SingleQueueBase:
    """Shared machinery for the FIFO / LIFO single-structure schedulers."""

    def __init__(self) -> None:
        self._lock = make_lock("scheduler.single_queue")
        self._not_empty = threading.Condition(self._lock)  # type: ignore[arg-type]
        self._items: Deque[Tuple[int, Any, Optional[Callable[[], bool]]]] = deque()  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def push(self, priority: int, item: Any,
             is_valid: Optional[Callable[[], bool]] = None) -> None:
        with self._lock:
            if self._closed:
                raise QueueClosed("push after close")
            self._items.append((int(priority), item, is_valid))
            self._not_empty.notify()

    def _take_locked(self) -> Tuple[int, Any, Optional[Callable[[], bool]]]:
        raise NotImplementedError

    def pop(self, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[int, Any]:
        with self._lock:
            while True:
                while self._items:
                    priority, item, is_valid = self._take_locked()
                    if is_valid is None or is_valid():
                        return priority, item
                if self._closed:
                    raise QueueClosed("queue closed")
                if not block:
                    raise IndexError("pop from empty queue")
                if not self._not_empty.wait(timeout):
                    raise IndexError("pop timed out")

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class FifoScheduler(_SingleQueueBase):
    """Plain first-in-first-out queue; priorities are ignored."""

    def _take_locked(self):
        return self._items.popleft()


class LifoScheduler(_SingleQueueBase):
    """Plain last-in-first-out stack; priorities are ignored."""

    def _take_locked(self):
        return self._items.pop()


class WorkStealingScheduler:
    """Per-worker deques with stealing, after Blumofe & Leiserson [22].

    Each worker owns a deque: it pushes and pops at the *bottom* (LIFO —
    good locality for the task tree it is expanding), and when empty it
    *steals* from the *top* of a victim's deque (FIFO end — the oldest,
    typically largest piece of work).  Pushes from non-worker threads
    (e.g. the round's seed tasks) round-robin across deques.

    Thread-to-deque mapping is by thread ident, assigned on first use,
    capped at *num_workers* distinct owners.
    """

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._lock = make_lock("scheduler.worksteal")
        self._not_empty = threading.Condition(self._lock)  # type: ignore[arg-type]
        self._deques: list[Deque[Tuple[int, Any, Optional[Callable[[], bool]]]]] = [
            deque() for _ in range(num_workers)]  # guarded-by: _lock
        self._owners: dict[int, int] = {}  # guarded-by: _lock
        self._rr = seed  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def _deque_index(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            idx = self._owners.get(ident)
            if idx is None:
                if len(self._owners) < self.num_workers:
                    idx = len(self._owners)
                    self._owners[ident] = idx
                else:
                    idx = self._rr % self.num_workers
                    self._rr += 1
            return idx

    def push(self, priority: int, item: Any,
             is_valid: Optional[Callable[[], bool]] = None) -> None:
        idx = self._deque_index()
        with self._lock:
            if self._closed:
                raise QueueClosed("push after close")
            self._deques[idx].append((int(priority), item, is_valid))
            self._not_empty.notify()

    def pop(self, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[int, Any]:
        idx = self._deque_index()
        with self._lock:
            while True:
                entry = self._pop_locked(idx)
                if entry is not None:
                    return entry
                if self._closed:
                    raise QueueClosed("queue closed")
                if not block:
                    raise IndexError("pop from empty queue")
                if not self._not_empty.wait(timeout):
                    raise IndexError("pop timed out")

    def _pop_locked(self, idx: int) -> Optional[Tuple[int, Any]]:
        # Own deque, bottom (LIFO).
        own = self._deques[idx]
        while own:
            priority, item, is_valid = own.pop()
            if is_valid is None or is_valid():
                return priority, item
        # Steal from victims, top (FIFO).
        for offset in range(1, self.num_workers):
            victim = self._deques[(idx + offset) % self.num_workers]
            while victim:
                priority, item, is_valid = victim.popleft()
                if is_valid is None or is_valid():
                    return priority, item
        return None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(d) for d in self._deques)


SCHEDULER_FACTORIES = {
    "priority": lambda num_workers: HeapOfLists(),
    "fifo": lambda num_workers: FifoScheduler(),
    "lifo": lambda num_workers: LifoScheduler(),
    "work-stealing": lambda num_workers: WorkStealingScheduler(num_workers),
}


def make_scheduler(name: str, num_workers: int = 1):
    """Instantiate a scheduling structure by name.

    Names: ``"priority"`` (the paper's heap-of-lists), ``"fifo"``,
    ``"lifo"``, ``"work-stealing"``.
    """
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; "
            f"available: {sorted(SCHEDULER_FACTORIES)}") from None
    return factory(num_workers)
