"""Automatic scheduling-strategy selection — the Section X future work.

"Some very specific networks might benefit from alternative scheduling
algorithms.  Future work can include automatic detection of the best
scheduling strategy."

We implement exactly that: given a computation graph and a worker
count, the selector unrolls one training round into its task dependency
graph, schedules it under every candidate policy with the discrete-
event simulator (cheap — no tensors move), and returns the policy with
the smallest simulated makespan.  Ties inside ``tolerance`` prefer the
paper's priority scheduler.

The simulator's ``random`` policy stands in for work-stealing's
arbitrary execution order; when it wins, the live-engine recommendation
is ``"work-stealing"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.graph.computation_graph import ComputationGraph
from repro.graph.taskgraph import build_task_graph
from repro.simulate.des import simulate_schedule
from repro.simulate.machine import MachineSpec

__all__ = ["StrategyChoice", "select_strategy"]

#: DES policy -> live-engine scheduler name.
_POLICY_TO_SCHEDULER = {
    "priority": "priority",
    "fifo": "fifo",
    "lifo": "lifo",
    "random": "work-stealing",
}


@dataclass(frozen=True)
class StrategyChoice:
    """Outcome of one selection run."""

    scheduler: str
    policy_makespans: Dict[str, float]

    @property
    def best_makespan(self) -> float:
        return min(self.policy_makespans.values())

    def speedup_over(self, policy: str) -> float:
        """How much faster the chosen policy is than *policy*."""
        return (self.policy_makespans[policy]
                / self.policy_makespans[_scheduler_to_policy(self.scheduler)])


def _scheduler_to_policy(name: str) -> str:
    for policy, sched in _POLICY_TO_SCHEDULER.items():
        if sched == name:
            return policy
    raise ValueError(f"unknown scheduler {name!r}")


def select_strategy(graph: ComputationGraph,
                    num_workers: int,
                    conv_mode: Union[str, Dict[str, str]] = "direct",
                    machine: Optional[MachineSpec] = None,
                    policies: Sequence[str] = ("priority", "fifo", "lifo",
                                               "random"),
                    tolerance: float = 0.02) -> StrategyChoice:
    """Pick the scheduling strategy for *graph* at *num_workers*.

    Shapes must already be propagated on *graph*.  *machine* defaults to
    an idealised host with ``num_workers`` full cores.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if machine is None:
        machine = MachineSpec(name="host", cores=num_workers,
                              threads=num_workers, ghz=1.0,
                              yield_tier1=0.0, sync_overhead=1000.0)
    tg = build_task_graph(graph, conv_mode=conv_mode)
    makespans = {p: simulate_schedule(tg, machine, num_workers,
                                      policy=p).makespan
                 for p in policies}
    best_policy = min(makespans, key=makespans.get)  # type: ignore[arg-type]
    if ("priority" in makespans
            and makespans["priority"]
            <= makespans[best_policy] * (1.0 + tolerance)):
        best_policy = "priority"
    return StrategyChoice(scheduler=_POLICY_TO_SCHEDULER[best_policy],
                          policy_makespans=makespans)
