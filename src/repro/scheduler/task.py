"""Task objects and the FORCE protocol (Section VI, Algorithms 1–3).

A task wraps a callable plus scheduling metadata.  Its lifecycle is

    PENDING → QUEUED → EXECUTING → COMPLETED
                 ↘ STOLEN (dequeued logically by FORCE) → EXECUTING → …

The interesting transition is FORCE: a forward task whose edge has a
pending weight update must not *wait* for it.  Instead (Algorithm 1's
``FORCE(e.update_task, t)``):

* **Completed** update → the calling thread just runs the forward
  subtask.
* **Queued** update → the calling thread *steals* it (atomically flips
  QUEUED→STOLEN; the queue entry is lazily invalidated) and executes the
  update followed by the forward subtask itself.
* **Executing** update → the forward subtask is *attached* to the update
  task; the thread running the update executes the attachment as soon
  as the update completes (Algorithm 3 lines 3–6), and the calling
  thread goes back to the queue for other work.

No thread ever blocks on another — the design keeps workers busy, and
running the update immediately before the forward task that consumes
its result maximises cache locality (Section VI-A).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional

from repro.analysis.runtime import make_lock
from repro.observability.tracing import current_context

__all__ = ["TaskState", "Task", "force"]

_task_ids = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle states of a :class:`Task`."""

    PENDING = "pending"
    QUEUED = "queued"
    STOLEN = "stolen"
    EXECUTING = "executing"
    COMPLETED = "completed"


class Task:
    """A schedulable unit of work.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is discarded (tasks
        communicate through the computation-graph state).
    priority:
        Smaller values are more urgent.  Update tasks get the engine's
        ``lowest_priority``.
    name:
        Diagnostic label ("fwd conv1:3→7" etc.).
    """

    __slots__ = ("fn", "priority", "name", "task_id", "queued_at",
                 "attempts", "abandoned", "span_context", "_state",
                 "_lock", "_attached")

    def __init__(self, fn: Callable[[], Any], priority: int = 0,
                 name: str = "") -> None:
        self.fn = fn
        self.priority = int(priority)
        self.name = name
        self.task_id = next(_task_ids)
        #: The creating thread's span context (None when tracing is
        #: off).  Tasks are spawned by the code that needs them — the
        #: serving worker, or a worker thread executing a parent task —
        #: so capturing here threads the request/round trace id through
        #: the whole task cascade transitively.
        self.span_context = current_context()
        #: perf_counter timestamp set by the engine at submit time; the
        #: worker that pops the task derives its queue wait from it.
        self.queued_at: Optional[float] = None
        #: Failed execution attempts so far (retry bookkeeping).
        self.attempts = 0
        #: Set by the watchdog when the task overran its timeout and a
        #: replacement was issued; the stuck worker must not execute it.
        self.abandoned = False
        self._lock = make_lock("scheduler.task")
        self._state = TaskState.PENDING  # guarded-by: _lock
        self._attached: Optional["Task"] = None  # guarded-by: _lock

    # -- state machine -------------------------------------------------

    @property
    def state(self) -> TaskState:
        with self._lock:
            return self._state

    def mark_queued(self) -> None:
        with self._lock:
            if self._state is not TaskState.PENDING:
                raise RuntimeError(f"cannot queue task in state {self._state}")
            self._state = TaskState.QUEUED

    def try_steal(self) -> bool:
        """Atomically claim a QUEUED task (FORCE case 2).  The queue's
        lazy-invalidation callback (:meth:`is_queued`) will skip it."""
        with self._lock:
            if self._state is TaskState.QUEUED:
                self._state = TaskState.STOLEN
                return True
            return False

    def try_begin(self) -> bool:
        """Claim the task for execution from QUEUED/STOLEN/PENDING."""
        with self._lock:
            if self._state in (TaskState.QUEUED, TaskState.STOLEN,
                               TaskState.PENDING):
                self._state = TaskState.EXECUTING
                return True
            return False

    def is_queued(self) -> bool:
        """Validity callback handed to the queue: stolen entries vanish."""
        with self._lock:
            return self._state is TaskState.QUEUED

    def try_attach(self, subtask: "Task") -> bool:
        """Attach *subtask* to run right after this task completes
        (FORCE case 3).  Fails iff this task already completed — the
        caller must then run the subtask itself."""
        with self._lock:
            if self._state is TaskState.COMPLETED:
                return False
            if self._attached is not None:
                raise RuntimeError(
                    f"task {self.name!r} already has an attached subtask")
            self._attached = subtask
            return True

    # -- retry support ---------------------------------------------------

    def reset_for_retry(self) -> bool:
        """Return a failed task to PENDING so the engine can re-submit
        it (counting the attempt).

        Succeeds only when the failure happened in *this* task's body
        (state QUEUED — the injected-fault-before-begin case — or
        EXECUTING).  A COMPLETED task whose *attached* subtask failed is
        not resettable: re-running it would double-execute the parent
        body.
        """
        with self._lock:
            if self._state not in (TaskState.QUEUED, TaskState.EXECUTING):
                return False
            self._state = TaskState.PENDING
            self.attempts += 1
            return True

    def clone_for_retry(self) -> "Task":
        """A fresh task with the same body for speculative re-execution
        after a timeout (the original may still be running; its state
        machine must stay untouched)."""
        clone = Task(self.fn, priority=self.priority, name=self.name)
        clone.attempts = self.attempts + 1
        # The watchdog thread has no span context; keep the original's
        # so the retry stays inside the request's trace.
        clone.span_context = self.span_context
        return clone

    # -- execution -------------------------------------------------------

    def execute(self) -> None:
        """Run the task body, then any attached subtask (Algorithm 3).

        Attached subtasks may themselves have attachments; the loop
        drains the chain on the current thread.
        """
        current: Optional[Task] = self
        while current is not None:
            if not current.try_begin():
                raise RuntimeError(
                    f"task {current.name!r} executed twice "
                    f"(state={current.state})")
            current.fn()
            with current._lock:
                current._state = TaskState.COMPLETED
                nxt = current._attached
                current._attached = None
            current = nxt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Task(id={self.task_id}, name={self.name!r}, "
                f"priority={self.priority}, state={self.state.value})")


def force(update_task: Optional[Task], subtask: Task) -> None:
    """FORCE (Algorithm 1): ensure *update_task* has run, then run
    *subtask*, without ever waiting.

    Called from the thread scheduled to execute the forward task.  The
    three cases of Section VI-B:

    1. update completed (or never existed) → run the subtask here;
    2. update queued → steal it, run update then subtask here;
    3. update executing → attach the subtask; the updating thread runs
       it on completion and this thread returns for other work.
    """
    if update_task is None:
        subtask.execute()
        return
    if update_task.try_steal():
        # Case 2: we now own the update; run it and the subtask follows
        # via the execute() body below.
        update_task.execute()
        subtask.execute()
        return
    # Either executing, completed, or pending-but-unqueued; try to attach.
    if update_task.try_attach(subtask):
        # Case 3: delegated to the executing thread.
        return
    # Case 1: already completed.
    subtask.execute()
