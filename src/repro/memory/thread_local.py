"""Thread-local memory pools — the Section VII-C future-work extension.

"In the future, we might consider implementing more advanced memory
allocators, such as ones with thread-local pools in addition to the
global pool."  This allocator gives each thread a private front-end of
bounded size per chunk class; allocation tries the local pool first
(no synchronisation at all), then falls back to a shared
:class:`repro.memory.PoolAllocator`.  Frees fill the local pool up to
``local_capacity`` chunks per size class and overflow to the global
pool, so memory still circulates between threads over time.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import make_lock
from repro.memory.pools import (
    NUM_POOLS,
    PoolAllocator,
    PooledArray,
    _round_up_pow2,
)

__all__ = ["ThreadLocalAllocator"]


class ThreadLocalAllocator:
    """Two-level allocator: per-thread front-end over a shared pool.

    Parameters
    ----------
    backing:
        The shared :class:`PoolAllocator` (created if omitted).
    local_capacity:
        Maximum idle chunks a thread keeps per size class before frees
        overflow to the shared pool.
    """

    def __init__(self, backing: Optional[PoolAllocator] = None,
                 local_capacity: int = 4) -> None:
        if local_capacity < 0:
            raise ValueError(
                f"local_capacity must be >= 0, got {local_capacity}")
        self.backing = backing if backing is not None else PoolAllocator(
            alignment=64, name="tl-backing")
        self.local_capacity = local_capacity
        self._tls = threading.local()
        self._stats_lock = make_lock("memory.tl_stats")
        self.local_hits = 0  # guarded-by: _stats_lock
        self.global_requests = 0  # guarded-by: _stats_lock

    def _local_pools(self) -> List[List[np.ndarray]]:
        pools = getattr(self._tls, "pools", None)
        if pools is None:
            pools = [[] for _ in range(NUM_POOLS)]
            self._tls.pools = pools
        return pools

    # ------------------------------------------------------------------

    def allocate(self, nbytes: int) -> Tuple[np.ndarray, int]:
        """Return (chunk, pool_index); the local pool is lock-free."""
        _, index = _round_up_pow2(nbytes)
        pools = self._local_pools()
        if index < NUM_POOLS and pools[index]:
            chunk = pools[index].pop()
            with self._stats_lock:
                self.local_hits += 1
            return chunk, index
        with self._stats_lock:
            self.global_requests += 1
        return self.backing.allocate(nbytes)

    def deallocate(self, chunk: np.ndarray, pool_index: int) -> None:
        """Free to the local pool; overflow to the shared pool."""
        pools = self._local_pools()
        if (0 <= pool_index < NUM_POOLS
                and len(pools[pool_index]) < self.local_capacity):
            if chunk.nbytes != (1 << pool_index):
                raise ValueError(
                    f"chunk of {chunk.nbytes} bytes does not belong to "
                    f"pool {pool_index}")
            pools[pool_index].append(chunk)
            return
        self.backing.deallocate(chunk, pool_index)

    # ------------------------------------------------------------------

    def allocate_array(self, shape, dtype=np.float64) -> PooledArray:
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape_t)) * dt.itemsize)
        chunk, index = self.allocate(nbytes)
        flat = chunk[: int(np.prod(shape_t)) * dt.itemsize].view(dt)
        arr = flat.reshape(shape_t).view(PooledArray)
        arr._chunk = chunk
        arr._pool_index = index
        arr._allocator = self  # type: ignore[assignment]
        return arr

    def deallocate_array(self, array: PooledArray) -> None:
        chunk = getattr(array, "_chunk", None)
        if chunk is None:
            raise ValueError("array was not allocated by this allocator "
                             "(or is a view)")
        if array._allocator is not self:
            raise ValueError("array belongs to a different allocator")
        self.deallocate(chunk, array._pool_index)
        array._chunk = None
        array._allocator = None

    # ------------------------------------------------------------------

    @property
    def local_hit_rate(self) -> float:
        with self._stats_lock:
            total = self.local_hits + self.global_requests
            return self.local_hits / total if total else 0.0

    def local_chunks(self) -> Dict[int, int]:
        """Idle chunk counts per class in *this thread's* pool."""
        return {i: len(p) for i, p in enumerate(self._local_pools()) if p}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ThreadLocalAllocator(capacity={self.local_capacity}, "
                f"local_hit_rate={self.local_hit_rate:.2f})")
