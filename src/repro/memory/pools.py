"""Pooled power-of-two memory allocators (Section VII-C).

ZNN implements two custom allocators — one for (large, SIMD-aligned) 3D
images and one for small auxiliary objects — each maintaining 32 global
pools of memory chunks, pool *i* holding chunks of ``2**i`` bytes.
Requests round the size up to the next power of two; frees push the
chunk back onto its pool and **no memory is ever returned to the
system**, so usage peaks after a few training rounds and the worst-case
overhead is bounded by 2x.

We reproduce the design with numpy byte buffers.  Pool operations use
``collections.deque`` whose ``append``/``pop`` are atomic under the GIL,
mirroring the boost lock-free queues of the original: an allocate or
deallocate never blocks on a lock.

:class:`PooledArray` wraps a chunk as an ndarray of the requested shape;
:func:`image_allocator`/:func:`small_object_allocator` expose the two
global allocators with ZNN's alignment split (64-byte alignment for
images, none for small objects).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import (checking_enabled, make_lock, note_access,
                                    track)
from repro.observability.metrics import get_registry

__all__ = [
    "AllocatorStats",
    "PoolAllocator",
    "PooledArray",
    "image_allocator",
    "small_object_allocator",
    "reset_global_allocators",
]

NUM_POOLS = 32


def _round_up_pow2(n: int) -> Tuple[int, int]:
    """Return (2**i >= n, i).  n must be >= 1."""
    if n < 1:
        raise ValueError(f"size must be >= 1, got {n}")
    i = max(0, (n - 1).bit_length())
    return 1 << i, i


@dataclass
class AllocatorStats:
    """Counters describing allocator behaviour over its lifetime."""

    system_allocations: int = 0
    pool_hits: int = 0
    deallocations: int = 0
    bytes_from_system: int = 0
    bytes_requested: int = 0

    @property
    def requests(self) -> int:
        return self.system_allocations + self.pool_hits

    @property
    def hit_rate(self) -> float:
        return self.pool_hits / self.requests if self.requests else 0.0

    @property
    def overhead_ratio(self) -> float:
        """Held-bytes / requested-bytes; bounded by ~2 for pow-2 rounding."""
        if not self.bytes_requested:
            return 1.0
        return self.bytes_from_system / self.bytes_requested

    def snapshot(self) -> dict:
        return {
            "system_allocations": self.system_allocations,
            "pool_hits": self.pool_hits,
            "deallocations": self.deallocations,
            "bytes_from_system": self.bytes_from_system,
            "bytes_requested": self.bytes_requested,
            "hit_rate": self.hit_rate,
        }


class PooledArray(np.ndarray):
    """An ndarray view over a pooled chunk.

    Carries the chunk and pool index so :meth:`PoolAllocator.deallocate`
    can return the backing memory.  Behaves as a normal ndarray
    otherwise; views/slices share the chunk but only the original
    pooled array should be deallocated.
    """

    _chunk: Optional[np.ndarray]
    _pool_index: int
    _allocator: Optional["PoolAllocator"]

    def __array_finalize__(self, obj):
        # Views inherit nothing: only the array handed out by allocate()
        # is deallocatable.
        self._chunk = getattr(self, "_chunk", None)
        self._pool_index = getattr(self, "_pool_index", -1)
        self._allocator = getattr(self, "_allocator", None)


class PoolAllocator:
    """A 32-pool power-of-two allocator over numpy byte chunks.

    Parameters
    ----------
    alignment:
        Byte alignment of returned chunks (the image allocator uses 64
        to enable SIMD in the original; the small-object allocator 1).
    name:
        For diagnostics.
    """

    def __init__(self, alignment: int = 1, name: str = "pool") -> None:
        if alignment < 1 or (alignment & (alignment - 1)):
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        self.alignment = alignment
        self.name = name
        self._pools: list[Deque[np.ndarray]] = [deque() for _ in range(NUM_POOLS)]
        # Stats mutation is the only shared-state write outside the
        # (atomic) deque ops; a tiny lock keeps counters exact.
        self._stats_lock = make_lock(f"memory.pool_stats.{name}")
        self.stats = AllocatorStats()  # guarded-by: _stats_lock
        self._check = checking_enabled()
        if self._check:
            # The free-lists are deliberately lock-free: deque append/pop
            # are GIL-atomic (the boost lock-free queues of §VII-C).
            track(self, name=f"memory.pool.{name}", policy="atomic")
        reg = get_registry()
        self._m_alloc = reg.counter("pool.alloc", pool=name)
        self._m_reuse = reg.counter("pool.reuse", pool=name)
        self._m_free = reg.counter("pool.free", pool=name)
        self._m_held = reg.gauge("pool.held_bytes", pool=name)
        self._m_outstanding = reg.gauge("pool.outstanding", pool=name)

    # ------------------------------------------------------------------

    def _new_chunk(self, size: int) -> np.ndarray:
        """Allocate an aligned byte buffer of exactly *size* bytes."""
        if self.alignment == 1:
            return np.empty(size, dtype=np.uint8)
        raw = np.empty(size + self.alignment, dtype=np.uint8)
        offset = (-raw.ctypes.data) % self.alignment
        return raw[offset:offset + size]

    def allocate(self, nbytes: int) -> Tuple[np.ndarray, int]:
        """Return (chunk, pool_index) with ``chunk.nbytes >= nbytes``.

        Reuses a pooled chunk when available, otherwise allocates from
        the system (and remembers the system bytes forever — pool memory
        is never released).
        """
        size, index = _round_up_pow2(nbytes)
        if index >= NUM_POOLS:
            raise MemoryError(
                f"request of {nbytes} bytes exceeds the largest pool "
                f"(2**{NUM_POOLS - 1})")
        if self._check:
            note_access(self, "write")
        try:
            chunk = self._pools[index].pop()
            hit = True
        except IndexError:
            chunk = self._new_chunk(size)
            hit = False
        with self._stats_lock:
            self.stats.bytes_requested += nbytes
            if hit:
                self.stats.pool_hits += 1
            else:
                self.stats.system_allocations += 1
                self.stats.bytes_from_system += size
            held = self.stats.bytes_from_system
        self._m_alloc.inc()
        if hit:
            self._m_reuse.inc()
        else:
            self._m_held.set(held)
        self._m_outstanding.inc()
        return chunk, index

    def deallocate(self, chunk: np.ndarray, pool_index: int) -> None:
        """Return *chunk* to its pool (never to the system)."""
        if not 0 <= pool_index < NUM_POOLS:
            raise ValueError(f"invalid pool index {pool_index}")
        if chunk.nbytes != (1 << pool_index):
            raise ValueError(
                f"chunk of {chunk.nbytes} bytes does not belong to pool "
                f"{pool_index} (expects {1 << pool_index})")
        if self._check:
            note_access(self, "write")
        self._pools[pool_index].append(chunk)
        with self._stats_lock:
            self.stats.deallocations += 1
        self._m_free.inc()
        self._m_outstanding.dec()

    # ------------------------------------------------------------------

    def allocate_array(self, shape: int | Sequence[int],
                       dtype=np.float64) -> PooledArray:
        """Allocate a pooled ndarray of *shape*/*dtype*."""
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape_t)) * dt.itemsize)
        chunk, index = self.allocate(nbytes)
        flat = chunk[: int(np.prod(shape_t)) * dt.itemsize].view(dt)
        arr = flat.reshape(shape_t).view(PooledArray)
        arr._chunk = chunk
        arr._pool_index = index
        arr._allocator = self
        return arr

    def deallocate_array(self, array: PooledArray) -> None:
        """Return a :class:`PooledArray`'s chunk to its pool."""
        chunk = getattr(array, "_chunk", None)
        if chunk is None:
            raise ValueError("array was not allocated by a PoolAllocator "
                             "(or is a view)")
        if array._allocator is not self:
            raise ValueError("array belongs to a different allocator")
        self.deallocate(chunk, array._pool_index)
        array._chunk = None
        array._allocator = None

    # ------------------------------------------------------------------

    def pooled_chunks(self) -> list[int]:
        """Number of idle chunks per pool (diagnostics)."""
        return [len(p) for p in self._pools]

    def held_bytes(self) -> int:
        """Total bytes ever obtained from the system (never decreases)."""
        return self.stats.bytes_from_system

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PoolAllocator(name={self.name!r}, "
                f"alignment={self.alignment}, "
                f"held={self.held_bytes()})")


# ---------------------------------------------------------------------------
# The two global allocators of Section VII-C.  "No memory is shared
# between the two allocators."
# ---------------------------------------------------------------------------

_image_allocator: Optional[PoolAllocator] = None  # guarded-by: _global_lock
_small_allocator: Optional[PoolAllocator] = None  # guarded-by: _global_lock
_global_lock = make_lock("memory.pool_globals")


def image_allocator() -> PoolAllocator:
    """The global 3D-image allocator (64-byte aligned)."""
    global _image_allocator
    with _global_lock:
        if _image_allocator is None:
            _image_allocator = PoolAllocator(alignment=64, name="images")
        return _image_allocator


def small_object_allocator() -> PoolAllocator:
    """The global small-object allocator (unaligned)."""
    global _small_allocator
    with _global_lock:
        if _small_allocator is None:
            _small_allocator = PoolAllocator(alignment=1, name="small-objects")
        return _small_allocator


def reset_global_allocators() -> None:
    """Discard both global allocators (tests / benchmarks only)."""
    global _image_allocator, _small_allocator
    with _global_lock:
        _image_allocator = None
        _small_allocator = None
