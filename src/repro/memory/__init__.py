"""Memory substrate: pooled power-of-two allocators (Section VII-C)."""

from repro.memory.pools import (
    AllocatorStats,
    PoolAllocator,
    PooledArray,
    image_allocator,
    reset_global_allocators,
    small_object_allocator,
)
from repro.memory.thread_local import ThreadLocalAllocator

__all__ = [
    "AllocatorStats",
    "PoolAllocator",
    "PooledArray",
    "image_allocator",
    "reset_global_allocators",
    "small_object_allocator",
    "ThreadLocalAllocator",
]
