"""Memory substrate: pooled power-of-two allocators (Section VII-C),
in-process and cross-process."""

from repro.memory.pools import (
    AllocatorStats,
    PoolAllocator,
    PooledArray,
    image_allocator,
    reset_global_allocators,
    small_object_allocator,
)
from repro.memory.shared_pool import (
    AttachedBlock,
    BlockHandle,
    SharedMemoryPool,
    attach_block,
)
from repro.memory.thread_local import ThreadLocalAllocator

__all__ = [
    "AllocatorStats",
    "AttachedBlock",
    "BlockHandle",
    "PoolAllocator",
    "PooledArray",
    "SharedMemoryPool",
    "attach_block",
    "image_allocator",
    "reset_global_allocators",
    "small_object_allocator",
    "ThreadLocalAllocator",
]
