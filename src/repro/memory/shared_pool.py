"""Pooled cross-process shared-memory allocator.

The multi-process data-parallel trainer (``repro.parallel``) keeps
kernels, biases and gradient-summation slots in
``multiprocessing.shared_memory`` blocks so worker processes exchange
arrays without serialising them.  This module extends the Section VII-C
pooled-allocator design of :mod:`repro.memory.pools` across process
boundaries: requests round up to the next power of two, freed blocks
return to one of 32 per-size free lists (never to the operating
system), and the worst-case held-bytes overhead stays bounded by 2x.

Only the **owning** process allocates and frees; worker processes
receive picklable :class:`BlockHandle` descriptions and map the same
physical pages with :func:`attach_block`.  The owner's ``close()``
unlinks every segment it ever created, which is why pooled reuse —
rather than per-round segment churn — matters here even more than in
the in-process allocator: shared-memory segments are a finite kernel
resource and leak past process death.

Statistics reuse :class:`repro.memory.pools.AllocatorStats` and the
``pool.*`` metric families (labelled ``pool=<name>``), so allocator
dashboards cover both in-process and cross-process pools.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Deque, Dict, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import make_lock
from repro.memory.pools import NUM_POOLS, AllocatorStats, _round_up_pow2
from repro.observability.metrics import get_registry

__all__ = [
    "BlockHandle",
    "AttachedBlock",
    "SharedMemoryPool",
    "attach_block",
]


@dataclass(frozen=True)
class BlockHandle:
    """Picklable identity of one pooled shared-memory chunk.

    ``size`` is the chunk's power-of-two byte size (``2**pool_index``),
    not the caller's request.
    """

    name: str
    size: int
    pool_index: int


class AttachedBlock:
    """A shared-memory chunk mapped into this process.

    Wraps the ``SharedMemory`` segment and exposes typed ndarray views
    over (a prefix of) its bytes.  The process that created the block
    (via :class:`SharedMemoryPool`) owns unlinking; attachers only ever
    ``close()``.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: BlockHandle, owner: bool) -> None:
        self.shm = shm
        self.handle = handle
        self.owner = owner
        self._closed = False

    def as_array(self, shape: int | Sequence[int],
                 dtype=np.float64) -> np.ndarray:
        """An ndarray view of *shape*/*dtype* over the chunk's prefix."""
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape_t)) * dt.itemsize
        if nbytes > self.handle.size:
            raise ValueError(
                f"view of {nbytes} bytes exceeds block size "
                f"{self.handle.size}")
        return np.ndarray(shape_t, dtype=dt, buffer=self.shm.buf)

    def close(self) -> None:
        """Unmap the segment from this process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner only)."""
        if not self.owner:
            raise RuntimeError("only the owning process may unlink")
        self.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AttachedBlock({self.handle.name!r}, "
                f"size={self.handle.size}, owner={self.owner})")


def attach_block(handle: BlockHandle) -> AttachedBlock:
    """Map an existing block (created by another process's pool) into
    this process.

    The spawned worker inherits the parent's resource tracker, so the
    attach needs no extra bookkeeping: the owner remains responsible
    for unlinking.
    """
    shm = shared_memory.SharedMemory(name=handle.name)
    return AttachedBlock(shm, handle, owner=False)


class SharedMemoryPool:
    """A 32-pool power-of-two allocator over shared-memory segments.

    The cross-process sibling of :class:`repro.memory.pools.PoolAllocator`:
    ``allocate``/``deallocate`` round to powers of two and recycle
    through per-size free lists.  Unlike the in-process allocator the
    pool tracks every segment it ever created so :meth:`close` can
    unlink them all — shared memory outlives processes, so "never
    return memory to the system" must end at pool shutdown.
    """

    def __init__(self, name: str = "shared") -> None:
        self.name = name
        # Free lists and segment registry are shared between the fleet
        # router's dispatcher and reader threads, so all structural
        # mutation happens under _lock (stats stay on their own lock;
        # the two are never nested).
        self._lock = make_lock(f"memory.shared_pool.{name}")
        self._pools: list[Deque[AttachedBlock]] = [
            deque() for _ in range(NUM_POOLS)]  # guarded-by: _lock
        self._all: Dict[str, AttachedBlock] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._stats_lock = make_lock(f"memory.shared_pool_stats.{name}")
        self.stats = AllocatorStats()  # guarded-by: _stats_lock
        reg = get_registry()
        self._m_alloc = reg.counter("pool.alloc", pool=name)
        self._m_reuse = reg.counter("pool.reuse", pool=name)
        self._m_free = reg.counter("pool.free", pool=name)
        self._m_held = reg.gauge("pool.held_bytes", pool=name)
        self._m_outstanding = reg.gauge("pool.outstanding", pool=name)

    # ------------------------------------------------------------------

    def allocate(self, nbytes: int) -> AttachedBlock:
        """Return a block with ``handle.size >= nbytes``, reusing a
        pooled segment when one of the right size class is free."""
        size, index = _round_up_pow2(nbytes)
        if index >= NUM_POOLS:
            raise MemoryError(
                f"request of {nbytes} bytes exceeds the largest pool "
                f"(2**{NUM_POOLS - 1})")
        with self._lock:
            if self._closed:
                raise RuntimeError(f"pool {self.name!r} is closed")
            try:
                block = self._pools[index].popleft()
                hit = True
            except IndexError:
                shm = shared_memory.SharedMemory(create=True, size=size)
                block = AttachedBlock(
                    shm, BlockHandle(shm.name, size, index), owner=True)
                self._all[shm.name] = block
                hit = False
        with self._stats_lock:
            self.stats.bytes_requested += nbytes
            if hit:
                self.stats.pool_hits += 1
            else:
                self.stats.system_allocations += 1
                self.stats.bytes_from_system += size
            held = self.stats.bytes_from_system
        self._m_alloc.inc()
        if hit:
            self._m_reuse.inc()
        else:
            self._m_held.set(held)
        self._m_outstanding.inc()
        return block

    def deallocate(self, block: AttachedBlock) -> None:
        """Return *block* to its free list (never to the system)."""
        with self._lock:
            if self._closed:
                return  # close() already unlinked everything
            if block.handle.name not in self._all:
                raise ValueError(
                    f"block {block.handle.name!r} does not belong to "
                    f"pool {self.name!r}")
            self._pools[block.handle.pool_index].append(block)
        with self._stats_lock:
            self.stats.deallocations += 1
        self._m_free.inc()
        self._m_outstanding.dec()

    def allocate_array(self, shape: int | Sequence[int],
                       dtype=np.float64) -> Tuple[AttachedBlock, np.ndarray]:
        """Allocate a block and return it with an ndarray view of
        *shape*/*dtype* over it."""
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape_t)) * dt.itemsize)
        block = self.allocate(nbytes)
        return block, block.as_array(shape_t, dt)

    # ------------------------------------------------------------------

    def held_bytes(self) -> int:
        """Total shared-memory bytes obtained from the system."""
        return self.stats.bytes_from_system

    def pooled_chunks(self) -> list[int]:
        """Number of idle blocks per pool (diagnostics)."""
        with self._lock:
            return [len(p) for p in self._pools]

    def close(self) -> None:
        """Unlink every segment this pool ever created (idempotent).

        Outstanding views become invalid; callers must stop using
        arrays obtained from the pool before closing it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            blocks = list(self._all.values())
            self._all.clear()
            for pool in self._pools:
                pool.clear()
        for block in blocks:
            block.unlink()

    def __enter__(self) -> "SharedMemoryPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedMemoryPool(name={self.name!r}, "
                f"held={self.held_bytes()}, "
                f"segments={len(self._all)})")
