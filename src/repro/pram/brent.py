"""Brent's theorem and the theoretically achievable speedup (Section V-A).

Brent's theorem [17]: a computation doable in ``T_inf`` on infinitely
many PRAM processors satisfies ``T_P <= T_inf + (T_1 - T_inf) / P``,
giving the speedup lower bound of Eq. (2):

    S_P >= S_inf / (1 + (S_inf - 1) / P),       S_inf = T_1 / T_inf.

For layered fully-connected ConvNets we evaluate ``T_1`` by summing the
layer costs of Tables I–II and ``T_inf`` with the infinite-processor
schedule of Section V-A: layers sequential, everything within a layer
parallel (with the ``ceil(log2 f)`` binary-collapse term for convergent
sums), forward + backward + the *max* of the update times.

:func:`achievable_speedup_curve` regenerates the Fig 4 series: kernel
5^3, FFT constant C = 5, widths 1–120, depths 4–40, P in
{8, 18, 40, 60, 120}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.pram.costs import (
    DEFAULT_FFT_CONSTANT,
    LayerCosts,
    conv_layer_costs_direct,
    conv_layer_costs_fft,
    conv_layer_tinf,
    nonconv_layer_tinf,
    transfer_layer_costs,
)
from repro.utils.shapes import as_shape3

__all__ = [
    "brent_time_bound",
    "brent_speedup_bound",
    "NetworkTimes",
    "layered_network_times",
    "achievable_speedup",
    "achievable_speedup_curve",
    "FIG4_PROCESSORS",
    "FIG4_DEPTHS",
]

FIG4_PROCESSORS = (8, 18, 40, 60, 120)
FIG4_DEPTHS = (4, 8, 16, 24, 32, 40)


def brent_time_bound(t1: float, tinf: float, processors: int) -> float:
    """Brent's bound: ``T_P <= T_inf + (T_1 - T_inf) / P``."""
    if processors < 1:
        raise ValueError(f"processors must be >= 1, got {processors}")
    if tinf > t1:
        raise ValueError(f"T_inf ({tinf}) cannot exceed T_1 ({t1})")
    return tinf + (t1 - tinf) / processors


def brent_speedup_bound(t1: float, tinf: float, processors: int) -> float:
    """Eq. (2): the theoretically achievable speedup."""
    if tinf <= 0:
        raise ValueError(f"T_inf must be > 0, got {tinf}")
    s_inf = t1 / tinf
    return s_inf / (1.0 + (s_inf - 1.0) / processors)


@dataclass(frozen=True)
class NetworkTimes:
    """T_1 and T_inf of one learning iteration of a layered network."""

    t1: float
    tinf: float

    @property
    def s_inf(self) -> float:
        return self.t1 / self.tinf


def layered_network_times(width: int, depth: int,
                          image_size: int | Sequence[int] = 16,
                          kernel: int | Sequence[int] = 5,
                          mode: str = "direct",
                          constant: float = DEFAULT_FFT_CONSTANT,
                          include_transfer: bool = True) -> NetworkTimes:
    """T_1 / T_inf for *depth* fully-connected conv layers of *width*
    (each followed by a transfer layer), per Section V-A.

    The first conv layer maps 1 -> width; the rest width -> width.  All
    layers see the same image size (the analysis ignores the small
    valid-convolution shrinkage, as the paper's plots do).
    """
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be >= 1")
    n = as_shape3(image_size, name="image_size")
    k = as_shape3(kernel, name="kernel")

    t1 = 0.0
    fwd_inf = bwd_inf = 0.0
    upd_inf_max = 0.0
    f_in = 1
    for _ in range(depth):
        if mode == "direct":
            layer = conv_layer_costs_direct(f_in, width, n, k)
        else:
            layer = conv_layer_costs_fft(f_in, width, n,
                                         memoized=(mode == "fft-memo"),
                                         constant=constant)
        tinf = conv_layer_tinf(f_in, width, n, k, mode=mode,
                               constant=constant)
        t1 += layer.total
        fwd_inf += tinf.forward
        bwd_inf += tinf.backward
        upd_inf_max = max(upd_inf_max, tinf.update)
        if include_transfer:
            xfer = transfer_layer_costs(width, n)
            xinf = nonconv_layer_tinf("transfer", n)
            t1 += xfer.total
            fwd_inf += xinf.forward
            bwd_inf += xinf.backward
            upd_inf_max = max(upd_inf_max, xinf.update)
        f_in = width
    return NetworkTimes(t1=t1, tinf=fwd_inf + bwd_inf + upd_inf_max)


def achievable_speedup(processors: int, width: int, depth: int,
                       image_size: int | Sequence[int] = 16,
                       kernel: int | Sequence[int] = 5,
                       mode: str = "direct",
                       constant: float = DEFAULT_FFT_CONSTANT) -> float:
    """One point of Fig 4."""
    times = layered_network_times(width, depth, image_size, kernel, mode,
                                  constant)
    return brent_speedup_bound(times.t1, times.tinf, processors)


def achievable_speedup_curve(processors: int,
                             widths: Sequence[int],
                             depth: int = 8,
                             image_size: int | Sequence[int] = 16,
                             kernel: int | Sequence[int] = 5,
                             mode: str = "direct",
                             constant: float = DEFAULT_FFT_CONSTANT
                             ) -> List[float]:
    """One line of Fig 4: achievable speedup vs network width."""
    return [achievable_speedup(processors, w, depth, image_size, kernel,
                               mode, constant) for w in widths]


def fig4_series(mode: str = "direct",
                widths: Sequence[int] = tuple(range(2, 121, 2)),
                depths: Sequence[int] = FIG4_DEPTHS,
                processors: Sequence[int] = FIG4_PROCESSORS,
                image_size: int | Sequence[int] = 16,
                kernel: int | Sequence[int] = 5,
                constant: float = DEFAULT_FFT_CONSTANT
                ) -> Dict[int, Dict[int, List[float]]]:
    """All Fig 4 lines: ``{P: {depth: [speedup per width]}}``.

    Panel (a) is ``mode="direct"``, panel (b) ``mode="fft-memo"``.
    """
    return {p: {d: achievable_speedup_curve(p, widths, d, image_size,
                                            kernel, mode, constant)
                for d in depths}
            for p in processors}
