"""FLOP cost formulas — Tables I, II, III and IV of the paper.

Complexity is measured in floating-point operations.  The paper assumes
FFT complexity ``C * n^3 * log2(n^3)`` for an ``n x n x n`` image, with
``C = 5`` used for the Fig 4 plots; we keep ``C`` a parameter and allow
anisotropic shapes (``N = prod(shape)``, ``cost = C * N * log2(N)``).

Two granularities are provided:

* **per-task** costs (one edge / one node-level FFT), consumed by the
  task-graph builder and the discrete-event simulator; and
* **per-layer** aggregates reproducing the table rows verbatim,
  consumed by the Brent-bound analysis (Fig 4) and the table benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.utils.shapes import as_shape3, valid_conv_shape, voxels

__all__ = [
    "DEFAULT_FFT_CONSTANT",
    "fft_cost",
    "direct_conv_task_cost",
    "pointwise_product_cost",
    "transfer_task_cost",
    "pool_task_cost",
    "filter_task_cost",
    "LayerCosts",
    "conv_layer_costs_direct",
    "conv_layer_costs_fft",
    "pooling_layer_costs",
    "filtering_layer_costs",
    "transfer_layer_costs",
    "conv_layer_tinf",
    "nonconv_layer_tinf",
]

#: The constant C of Table II / Fig 4 ("assumed to be 5").
DEFAULT_FFT_CONSTANT = 5.0


def fft_cost(shape: int | Sequence[int], constant: float = DEFAULT_FFT_CONSTANT
             ) -> float:
    """FLOPs of one 3D FFT of *shape*: ``C * N * log2 N``."""
    n = voxels(shape)
    return constant * n * math.log2(max(n, 2))


def direct_conv_task_cost(image_shape: int | Sequence[int],
                          kernel_shape: int | Sequence[int],
                          sparsity: int | Sequence[int] = 1) -> float:
    """FLOPs of one direct valid convolution: ``n'^3 * k^3``.

    The same count applies to the edge's backward (full) convolution
    and to its kernel-gradient convolution — every pass touches each
    (output-voxel, kernel-tap) pair once (Table II, "Direct").
    """
    out = valid_conv_shape(image_shape, kernel_shape, sparsity)
    return float(voxels(out) * voxels(kernel_shape))


def pointwise_product_cost(image_shape: int | Sequence[int]) -> float:
    """FLOPs of one spectral pointwise multiply-accumulate: ``4 n^3``
    (a complex multiply is 4 real multiplies plus adds; the paper
    counts 4 per voxel)."""
    return 4.0 * voxels(image_shape)


def transfer_task_cost(image_shape: int | Sequence[int]) -> float:
    """Transfer function forward/backward/update on one image: n^3."""
    return float(voxels(image_shape))


def pool_task_cost(image_shape: int | Sequence[int]) -> float:
    """Max-pooling forward (and backward) on one image: n^3."""
    return float(voxels(image_shape))


def filter_task_cost(image_shape: int | Sequence[int],
                     window: int | Sequence[int],
                     backward: bool = False) -> float:
    """Max-filtering: forward ``6 n^3 log k`` (three separable 1-D
    passes with O(log k) heap ops), backward ``n^3`` (Table I)."""
    n = voxels(image_shape)
    if backward:
        return float(n)
    k = max(as_shape3(window, name="window"))
    return 6.0 * n * math.log2(max(k, 2))


# ---------------------------------------------------------------------------
# Per-layer aggregates: Table I and Table II rows.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LayerCosts:
    """FLOPs of one layer for each pass of one learning iteration."""

    forward: float
    backward: float
    update: float

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.update

    def as_dict(self) -> Dict[str, float]:
        return {"forward": self.forward, "backward": self.backward,
                "update": self.update, "total": self.total}


def conv_layer_costs_direct(f_in: int, f_out: int,
                            image_shape: int | Sequence[int],
                            kernel_shape: int | Sequence[int],
                            sparsity: int | Sequence[int] = 1) -> LayerCosts:
    """Table II "Direct": every pass costs ``f' * f * n'^3 * k^3``."""
    per_edge = direct_conv_task_cost(image_shape, kernel_shape, sparsity)
    edges = f_in * f_out
    return LayerCosts(edges * per_edge, edges * per_edge, edges * per_edge)


def conv_layer_costs_fft(f_in: int, f_out: int,
                         image_shape: int | Sequence[int],
                         memoized: bool = True,
                         constant: float = DEFAULT_FFT_CONSTANT) -> LayerCosts:
    """Table II "FFT-based" and "FFT-based (Memoized)".

    Forward: ``3C n^3 log n [f' + f + f'*f] + 4 f'*f n^3`` — f image
    FFTs, f'*f kernel FFTs, f' inverse FFTs, one spectral product per
    edge.  Memoization removes the kernel re-transforms from the
    backward pass and the image/gradient re-transforms from the update
    (9C -> 6C in the total).
    """
    one_fft = fft_cost(image_shape, constant)
    prod = pointwise_product_cost(image_shape)
    edges = f_in * f_out
    fwd = one_fft * (f_in + edges + f_out) + prod * edges
    if memoized:
        bwd = one_fft * (f_out + f_in) + prod * edges
        upd = one_fft * edges + prod * edges
    else:
        bwd = one_fft * (f_out + edges + f_in) + prod * edges
        upd = one_fft * (f_in + f_out + edges) + prod * edges
    return LayerCosts(fwd, bwd, upd)


def pooling_layer_costs(f: int, image_shape: int | Sequence[int]) -> LayerCosts:
    """Table I "Pooling": forward f*n^3, backward f*n^3, no update."""
    n = voxels(image_shape)
    return LayerCosts(f * n, f * n, 0.0)


def filtering_layer_costs(f: int, image_shape: int | Sequence[int],
                          window: int | Sequence[int]) -> LayerCosts:
    """Table I "Filtering": forward f*6n^3 log k, backward f*n^3."""
    return LayerCosts(f * filter_task_cost(image_shape, window),
                      f * filter_task_cost(image_shape, window, backward=True),
                      0.0)


def transfer_layer_costs(f: int, image_shape: int | Sequence[int]) -> LayerCosts:
    """Table I "Transfer function": f*n^3 for each of the three passes."""
    n = voxels(image_shape)
    return LayerCosts(f * n, f * n, f * n)


# ---------------------------------------------------------------------------
# T-infinity per layer: Tables III and IV.
# ---------------------------------------------------------------------------

def conv_layer_tinf(f_in: int, f_out: int,
                    image_shape: int | Sequence[int],
                    kernel_shape: int | Sequence[int],
                    mode: str = "direct",
                    sparsity: int | Sequence[int] = 1,
                    constant: float = DEFAULT_FFT_CONSTANT) -> LayerCosts:
    """Table III: time for a fully connected conv layer with infinitely
    many processors.

    All edges run in parallel; summing the f convergent convolutions at
    each output node takes ``ceil(log2 f)`` rounds of the binary
    collapse, each costing one image addition (n'^3 direct, 4n^3 in
    the spectral domain).
    """
    n3 = voxels(image_shape)
    log_f_in = math.ceil(math.log2(max(f_in, 1))) if f_in > 1 else 0
    log_f_out = math.ceil(math.log2(max(f_out, 1))) if f_out > 1 else 0
    if mode == "direct":
        per_edge = direct_conv_task_cost(image_shape, kernel_shape, sparsity)
        out3 = voxels(valid_conv_shape(image_shape, kernel_shape, sparsity))
        fwd = per_edge + out3 * log_f_in
        bwd = per_edge + n3 * log_f_out
        upd = per_edge
    elif mode in ("fft", "fft-memo"):
        two_ffts = 2 * fft_cost(image_shape, constant)  # forward + inverse
        fwd = two_ffts + 4 * n3 * log_f_in
        bwd = two_ffts + 4 * n3 * log_f_out
        if mode == "fft-memo":
            # Update reuses both memoized spectra: one inverse FFT + product.
            upd = fft_cost(image_shape, constant) + 4 * n3
        else:
            upd = two_ffts + 4 * n3
    else:
        raise ValueError(f"unknown conv mode {mode!r}")
    return LayerCosts(fwd, bwd, upd)


def nonconv_layer_tinf(kind: str, image_shape: int | Sequence[int],
                       window: int | Sequence[int] = 2) -> LayerCosts:
    """Table IV: pooling/filtering/transfer layers with infinite
    processors — all nodes in parallel, so the per-node cost."""
    n3 = voxels(image_shape)
    if kind == "pool":
        return LayerCosts(float(n3), float(n3), 0.0)
    if kind == "filter":
        k = max(as_shape3(window, name="window"))
        return LayerCosts(6.0 * n3 * math.log2(max(k, 2)), float(n3), 0.0)
    if kind == "transfer":
        return LayerCosts(float(n3), float(n3), float(n3))
    raise ValueError(f"unknown layer kind {kind!r}")
