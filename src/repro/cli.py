"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Version, subsystem inventory and the Table V machine catalog.
``figure {4,5,6,7,8,9}``
    Regenerate a paper figure as a text table (simulated machines /
    calibrated GPU models; see DESIGN.md).
``simulate``
    One discrete-event scheduling run: machine, dims, width, threads,
    policy.
``autotune``
    Measure the direct-vs-FFT crossover on this host for a range of
    kernel sizes.
``train``
    Train a network from a spec file (or the built-in 3D benchmark) on
    synthetic boundary-detection data, with optional checkpointing and
    (``--trace-out``) a Chrome-trace of every executed task.
``metrics``
    Run a short instrumented training workload and print the metrics
    registry snapshot (queue / engine / FFT-cache / allocator /
    trainer counters — see docs/observability.md).
``trace``
    Run a short traced training workload and write ``chrome://tracing``
    JSON — or, with ``--merge``, combine per-process span trace files
    (``repro.trace/v1``, e.g. from ``repro serve --trace-dir``) into
    one Chrome trace with stable pid/tid naming; ``--tree`` prints the
    span-tree text view instead.
``profile``
    Run a short profiled training workload and emit the per-layer
    ``cost_model.json`` (measured seconds + analytic FLOPs/bytes per
    (edge, backend, op); see docs/observability.md).
``slo``
    Run a short serving workload under a deadline and print the SLO
    report: p50/p95/p99 admission-wait, service and end-to-end
    latencies plus deadline attainment.
``loadtest``
    Generate (or load) a seed-deterministic workload trace and replay
    it — through the discrete-event serving simulator (``--sim``) or
    against a live in-process server / worker fleet, optionally with
    the closed-loop autoscaler — emitting a ``repro.loadtest/v1``
    report: p50/p99 latency, served fraction, shed/deadline counts
    and worker-seconds cost (see docs/serving.md "Capacity
    planning").
``gradcheck``
    Finite-difference verification of a spec-file network's gradients
    (use after adding custom ops).
``specialize``
    Plan ZNNi per-layer direct/FFT backends and the throughput-optimal
    serving tile for a spec (arXiv:1606.05688, part a): sweep 5-smooth
    candidate tiles under a memory budget, price them with the
    analytic FLOP formulas or a measured ``repro profile`` cost model,
    and emit a ``repro.specialize/v1`` plan for ``serve --specialize``
    (see docs/serving.md "Per-layer specialization").
``serve``
    Serve dense inference for a trained checkpoint over HTTP: tiling
    planner + warm dense-twin cache + bounded queue with backpressure
    (see docs/serving.md).
``infer``
    Send one volume to a running ``repro serve`` endpoint and save or
    summarise the dense output.  Exits 75 if the server stayed
    overloaded, 76 on a missed deadline.
``lint``
    Run the project's concurrency/metrics lint rules (guarded-by
    discipline, raw acquires, blocking calls under locks, swap-only
    critical sections, metric-name catalog) over source paths.  Exits
    1 when violations are found (see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import reporting

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZNN reproduction: task-parallel 3D ConvNet training")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version, inventory, machine catalog")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", choices=["4", "5", "6", "7", "8", "9"])
    fig.add_argument("--machine", default="xeon-18",
                     help="Table V machine key (figure 5)")
    fig.add_argument("--dims", type=int, default=3, choices=(2, 3),
                     help="2D or 3D networks (figure 5)")
    fig.add_argument("--mode", default="direct",
                     choices=("direct", "fft-memo"),
                     help="convolution cost model (figure 4 panels a/b)")
    fig.add_argument("--chart", action="store_true",
                     help="also draw an ASCII chart (figures 4, 6, 7)")

    sim = sub.add_parser("simulate", help="one scheduling simulation")
    sim.add_argument("--machine", default="xeon-18")
    sim.add_argument("--dims", type=int, default=3, choices=(2, 3))
    sim.add_argument("--width", type=int, default=20)
    sim.add_argument("--threads", type=int, default=None,
                     help="worker threads (default: machine hw threads)")
    sim.add_argument("--policy", default="priority",
                     choices=("priority", "fifo", "lifo", "random"))

    tune = sub.add_parser("autotune", help="measure FFT/direct crossover")
    tune.add_argument("--image", type=int, default=32)
    tune.add_argument("--kernels", default="2,3,5,7",
                      help="comma-separated kernel sizes")
    tune.add_argument("--repeats", type=int, default=2)

    train = sub.add_parser("train",
                           help="train on synthetic boundary data")
    train.add_argument("--spec", default=None,
                       help="network spec file (default: small 3D net)")
    train.add_argument("--rounds", type=int, default=20)
    train.add_argument("--workers", type=int, default=None, metavar="W",
                       help="data-parallel worker processes; the final "
                            "checkpoint is bitwise identical for any W "
                            "(default: the in-process sequential "
                            "trainer)")
    train.add_argument("--batch", type=int, default=None, metavar="B",
                       help="global minibatch size per round for "
                            "data-parallel training (default 1; results "
                            "depend on B, never on --workers)")
    train.add_argument("--oversubscribe", action="store_true",
                       help="allow --workers to exceed the visible "
                            "CPU count")
    train.add_argument("--input-size", type=int, default=24)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--momentum", type=float, default=0.9)
    train.add_argument("--conv-mode", default="auto",
                       choices=("auto", "direct", "fft"))
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", default=None,
                       help="write a .npz checkpoint here when done")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="write an atomic checkpoint to "
                            "--checkpoint-dir every N rounds (also "
                            "enables NaN/Inf rollback)")
    train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for periodic checkpoints / resume")
    train.add_argument("--resume", action="store_true",
                       help="restart from the latest checkpoint in "
                            "--checkpoint-dir (no-op when none exists)")
    train.add_argument("--task-retries", type=int, default=0, metavar="K",
                       help="retry failed engine tasks up to K times "
                            "with exponential backoff")
    train.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="watchdog timeout per task (parallel engine; "
                            "advisory on the serial engine)")
    train.add_argument("--volume-size", type=int, default=48)
    train.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write a chrome://tracing JSON of every "
                            "executed task to FILE")
    train.add_argument("--metrics", action="store_true",
                       help="print the metrics-registry snapshot after "
                            "training")

    met = sub.add_parser("metrics",
                         help="run a short instrumented training "
                              "workload and print the metrics snapshot")
    met.add_argument("--rounds", type=int, default=3)
    met.add_argument("--workers", type=int, default=1)
    met.add_argument("--input-size", type=int, default=20)
    met.add_argument("--volume-size", type=int, default=32)
    met.add_argument("--conv-mode", default="fft",
                     choices=("auto", "direct", "fft"))
    met.add_argument("--seed", type=int, default=0)
    met.add_argument("--json", action="store_true",
                     help="emit the snapshot as JSON instead of a table")

    tr = sub.add_parser("trace",
                        help="run a short traced training workload and "
                             "write chrome://tracing JSON, or merge "
                             "per-process span trace files")
    tr.add_argument("--out", default="trace.json", metavar="FILE")
    tr.add_argument("--merge", nargs="+", default=None, metavar="FILE",
                    help="merge repro.trace/v1 per-process trace files "
                         "(e.g. from repro serve --trace-dir) into one "
                         "chrome://tracing JSON at --out")
    tr.add_argument("--tree", action="store_true",
                    help="with --merge: print the span-tree text view "
                         "instead of writing Chrome JSON")
    tr.add_argument("--rounds", type=int, default=3)
    tr.add_argument("--workers", type=int, default=2)
    tr.add_argument("--input-size", type=int, default=20)
    tr.add_argument("--volume-size", type=int, default=32)
    tr.add_argument("--conv-mode", default="fft",
                    choices=("auto", "direct", "fft"))
    tr.add_argument("--seed", type=int, default=0)

    prof = sub.add_parser("profile",
                          help="run a short profiled training workload "
                               "and emit the per-layer cost model")
    prof.add_argument("--out", default="cost_model.json", metavar="FILE",
                      help="where to write the validated "
                           "repro.cost_model/v1 JSON")
    prof.add_argument("--rounds", type=int, default=3)
    prof.add_argument("--workers", type=int, default=1)
    prof.add_argument("--input-size", type=int, default=20)
    prof.add_argument("--volume-size", type=int, default=32)
    prof.add_argument("--conv-mode", default="fft",
                      choices=("auto", "direct", "fft"))
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--json", action="store_true",
                      help="print the cost model as JSON instead of a "
                           "table")

    slo = sub.add_parser("slo",
                         help="run a short serving workload under a "
                              "deadline and print the SLO report")
    slo.add_argument("--requests", type=int, default=12)
    slo.add_argument("--volume-size", type=int, default=16)
    slo.add_argument("--deadline", type=float, default=5.0,
                     metavar="SECONDS",
                     help="per-request deadline (default 5.0)")
    slo.add_argument("--workers", type=int, default=2,
                     help="serving worker tasks")
    slo.add_argument("--conv-mode", default="fft",
                     choices=("direct", "fft"))
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--json", action="store_true",
                     help="print the report as JSON instead of a table")

    lt = sub.add_parser("loadtest",
                        help="replay a workload trace (live or --sim) "
                             "and emit a loadtest report")
    lt.add_argument("--scenario", default="steady",
                    choices=("steady", "diurnal", "flash-crowd",
                             "multi-model"),
                    help="trace scenario preset (default: steady)")
    lt.add_argument("--trace", default=None, metavar="FILE",
                    help="replay this repro.workload/v1 JSONL trace "
                         "instead of generating one")
    lt.add_argument("--duration", type=float, default=30.0,
                    help="generated trace length in seconds")
    lt.add_argument("--rate", type=float, default=1.0,
                    help="base arrival rate in requests/second")
    lt.add_argument("--multiplier", type=float, default=1.0,
                    metavar="X",
                    help="load multiplier: compress the trace X x in "
                         "time (default 1.0)")
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument("--size", default="12:24", metavar="MIN:MAX",
                    help="request cube-edge bounds in voxels "
                         "(default 12:24)")
    lt.add_argument("--deadline", type=float, default=30.0,
                    help="per-request deadline in seconds "
                         "(0 = no deadline)")
    lt.add_argument("--sim", action="store_true",
                    help="replay through the discrete-event serving "
                         "simulator instead of a live server")
    lt.add_argument("--workers", type=int, default=2,
                    help="initial worker count (simulated workers, "
                         "or serving threads without --fleet)")
    lt.add_argument("--fleet", type=int, default=0, metavar="N",
                    help="live mode: run N supervised worker "
                         "processes behind the failover router "
                         "(0 = in-process server, the default)")
    lt.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                    help="enable the hysteresis autoscaler between "
                         "MIN and MAX workers (live autoscaling "
                         "needs --fleet)")
    lt.add_argument("--control-interval", type=float, default=0.5,
                    help="autoscaler tick interval in seconds")
    lt.add_argument("--max-queue", type=int, default=32,
                    help="admission-queue capacity")
    lt.add_argument("--cost-model", default=None, metavar="FILE",
                    help="sim mode: derive per-request service cost "
                         "from this repro profile cost_model.json")
    lt.add_argument("--speed", type=float, default=1.0,
                    help="live mode: replay time compression factor")
    lt.add_argument("--conv-mode", default="fft",
                    choices=("direct", "fft"))
    lt.add_argument("--out", default=None, metavar="FILE",
                    help="write the report JSON here")
    lt.add_argument("--emit-trace", default=None, metavar="FILE",
                    help="also write the replayed trace as "
                         "repro.workload/v1 JSONL")
    lt.add_argument("--json", action="store_true",
                    help="print the report as JSON instead of a "
                         "table")

    gc = sub.add_parser("gradcheck",
                        help="finite-difference check of a spec file's "
                             "gradients")
    gc.add_argument("--spec", required=True)
    gc.add_argument("--input-size", type=int, default=12)
    gc.add_argument("--conv-mode", default="direct",
                    choices=("direct", "fft"))
    gc.add_argument("--seed", type=int, default=0)

    spz = sub.add_parser("specialize",
                         help="plan ZNNi per-layer direct/FFT backends "
                              "and the serving tile for a spec")
    spz.add_argument("--spec", required=True,
                     help="[layered] spec file to plan for")
    spz.add_argument("--checkpoint", default=None,
                     help=".npz checkpoint (default: random weights; "
                          "the plan depends only on shapes)")
    spz.add_argument("--name", default="default",
                     help="model name recorded in the plan "
                          "(default: default)")
    spz.add_argument("--volume", default="48", metavar="SHAPE",
                     help="target volume shape, e.g. 48 or 32,64,64 "
                          "(default 48)")
    spz.add_argument("--cost-model", default=None, metavar="FILE",
                     help="price candidates with this repro profile "
                          "cost_model.json (default: analytic FLOP "
                          "formulas at rate 1.0)")
    spz.add_argument("--tile-voxels", type=int, default=None,
                     help="input-tile voxel budget (default 2^21)")
    spz.add_argument("--memory-mb", type=float, default=None,
                     help="peak working-set budget in MiB; exits 65 "
                          "when no candidate fits")
    spz.add_argument("--out", default=None, metavar="FILE",
                     help="write the repro.specialize/v1 plan JSON "
                          "here (feed to repro serve --specialize)")
    spz.add_argument("--no-measure", action="store_true",
                     help="skip the measured-throughput pass (plan "
                          "only, fully deterministic output)")
    spz.add_argument("--seed", type=int, default=0,
                     help="seed for the measurement volume")
    spz.add_argument("--json", action="store_true",
                     help="print the plan document as JSON instead of "
                          "a table")

    srv = sub.add_parser("serve",
                         help="serve dense inference for a checkpoint "
                              "over HTTP")
    srv.add_argument("--spec", required=True,
                     help="[layered] spec file the checkpoint was "
                          "trained with")
    srv.add_argument("--checkpoint", default=None,
                     help=".npz checkpoint to restore (default: random "
                          "weights, useful for smoke tests)")
    srv.add_argument("--name", default="default",
                     help="model name clients address (default: default)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8473,
                     help="TCP port (0 picks a free one)")
    srv.add_argument("--workers", type=int, default=2,
                     help="serving worker tasks (threads; per process "
                          "in --fleet mode)")
    srv.add_argument("--fleet", type=int, default=0, metavar="N",
                     help="run N supervised worker processes behind a "
                          "failover router instead of one in-process "
                          "server (0 = single process, the default)")
    srv.add_argument("--inflight-per-worker", type=int, default=4,
                     help="fleet mode: dispatch window per worker "
                          "process")
    srv.add_argument("--request-attempts", type=int, default=3,
                     metavar="K",
                     help="fleet mode: total dispatch attempts per "
                          "request (first try + failovers)")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     help="seconds a SIGTERM graceful drain may take "
                          "before leftovers are failed")
    srv.add_argument("--max-queue", type=int, default=16,
                     help="admission-queue capacity (beyond it requests "
                          "are rejected with 503 + Retry-After)")
    srv.add_argument("--max-batch", type=int, default=4,
                     help="micro-batch cap per dequeue")
    srv.add_argument("--tile-voxels", type=int, default=None,
                     help="input-tile voxel budget for the tiling "
                          "planner (default 2^21)")
    srv.add_argument("--conv-mode", default="fft",
                     choices=("direct", "fft"))
    srv.add_argument("--specialize", default=None, metavar="FILE",
                     help="apply this repro.specialize/v1 plan (from "
                          "repro specialize --out): per-layer conv "
                          "backends and tile for covered requests")
    srv.add_argument("--max-models", type=int, default=4,
                     help="warm dense-twin cache capacity")
    srv.add_argument("--request-retries", type=int, default=0,
                     metavar="K",
                     help="re-run a failed request up to K times")
    srv.add_argument("--trace-dir", default=None, metavar="DIR",
                     help="enable request tracing and write this "
                          "process's repro.trace/v1 span file into DIR "
                          "on shutdown (merge with repro trace --merge)")

    inf = sub.add_parser("infer",
                         help="send one volume to a repro serve endpoint")
    inf.add_argument("--url", default="http://127.0.0.1:8473")
    inf.add_argument("--model", default="default")
    inf.add_argument("--input", default=None, metavar="FILE",
                     help=".npy volume to send")
    inf.add_argument("--random", default=None, metavar="SHAPE",
                     help="send a random volume instead, e.g. 48 or "
                          "32,64,64")
    inf.add_argument("--seed", type=int, default=0)
    inf.add_argument("--output", default=None, metavar="FILE",
                     help="write the dense output here as .npy")
    inf.add_argument("--timeout", type=float, default=None,
                     help="request deadline in seconds")
    inf.add_argument("--max-attempts", type=int, default=1,
                     help="total submissions when the server answers "
                          "503 (sleeps its Retry-After hint in between)")
    inf.add_argument("--trace-id", default=None, metavar="ID",
                     help="send an X-Trace-Id header so a tracing "
                          "server records the request under this trace")

    flt = sub.add_parser("fleet",
                         help="inspect a running serving fleet")
    flt_sub = flt.add_subparsers(dest="fleet_command", required=True)
    flt_status = flt_sub.add_parser(
        "status", help="render /healthz of a repro serve endpoint as a "
                       "per-worker table")
    flt_status.add_argument("--url", default="http://127.0.0.1:8473")
    flt_status.add_argument("--json", action="store_true",
                            help="print the raw health document")

    lint = sub.add_parser("lint",
                          help="run the concurrency/metrics lint rules "
                               "over source paths")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated subset of rules to run "
                           "(default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list available rules and exit")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"),
                      help="violation output format")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print findings silenced by an in-source "
                           "suppression or a reasoned escape")

    det = sub.add_parser(
        "check-determinism",
        help="run the train/serve/loadgen probe twice under perturbed "
             "hash seeds and thread schedules and diff stage digests")
    det.add_argument("--probe", action="store_true",
                     help="run one probe in-process and print stage "
                          "digests (used internally by the harness)")
    det.add_argument("--seeds", default=None,
                     help="comma-separated PYTHONHASHSEED values for the "
                          "two runs (default: 0,4242)")
    det.add_argument("--threads", default=None,
                     help="comma-separated worker counts for the two "
                          "runs (default: 1,2)")
    det.add_argument("--json", action="store_true",
                     help="print the comparison document as JSON")
    return parser


def _cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — ZNN reproduction "
          f"(Zlateski, Lee & Seung, IPDPS 2016)")
    print("subsystems: core tensor graph scheduler sync memory pram "
          "simulate baselines data observability")
    header, rows = reporting.table5()
    print(reporting.render_table("Table V — machine models", header, rows))
    return 0


def _cmd_figure(args) -> int:
    if args.number == "4":
        header, rows = reporting.figure4(mode=args.mode)
        title = f"Fig 4 — achievable speedup ({args.mode})"
    elif args.number == "5":
        header, rows = reporting.figure5(args.machine, args.dims)
        title = f"Fig 5 — {args.dims}D speedup vs threads on {args.machine}"
    elif args.number in ("6", "7"):
        dims = 2 if args.number == "6" else 3
        header, rows = reporting.figure6_7(dims)
        title = f"Fig {args.number} — {dims}D max speedup vs width"
    elif args.number == "8":
        header, rows = reporting.figure8()
        title = "Fig 8 — ZNN vs GPU frameworks (2D, seconds/update)"
    else:
        header, rows = reporting.figure9()
        title = "Fig 9 — ZNN vs Theano (3D, seconds/update)"
    print(reporting.render_table(title, header, rows))
    if getattr(args, "chart", False) and args.number in ("4", "6", "7"):
        xs = [int(h.split("=")[1]) for h in header[1:]]
        series = {row[0]: [(x, float(v)) for x, v in zip(xs, row[1:])
                           if v != "OOM"]
                  for row in rows}
        print()
        print(reporting.ascii_chart(series, x_label="network width",
                                    y_label="speedup"))
    return 0


def _cmd_simulate(args) -> int:
    from repro.simulate import get_machine, paper_task_graph, simulate_schedule

    machine = get_machine(args.machine)
    threads = args.threads if args.threads else machine.threads
    tg = paper_task_graph(args.dims, args.width)
    result = simulate_schedule(tg, machine, threads, policy=args.policy)
    print(f"machine   {machine.name}")
    print(f"network   {args.dims}D width {args.width} "
          f"({result.tasks} tasks/round)")
    print(f"threads   {threads}  policy {args.policy}")
    print(f"speedup   {result.speedup:.2f}  "
          f"utilization {result.utilization:.2%}")
    return 0


def _cmd_autotune(args) -> int:
    from repro.core import autotune_layer

    kernels = [int(k) for k in args.kernels.split(",") if k]
    rows = []
    for k in kernels:
        mode, t_d, t_f = autotune_layer((args.image,) * 3, k,
                                        repeats=args.repeats)
        rows.append([f"{k}^3", f"{t_d:.4f}", f"{t_f:.4f}", mode])
    print(reporting.render_table(
        f"direct vs FFT on {args.image}^3 images (this host)",
        ["kernel", "direct s", "fft s", "chosen"], rows))
    return 0


def _train_provider(volume_size: int, seed: int, input_size: int,
                    out_shape) -> "object":
    """Build the synthetic boundary-detection provider ``repro train``
    uses.  Module-level and deterministic in its arguments so
    data-parallel worker processes can rebuild it identically from a
    pickled reference."""
    from repro.data import PatchProvider, make_cell_volume

    volume = make_cell_volume(shape=volume_size, num_cells=16,
                              noise=0.08, seed=seed + 1)
    volume.image[:] = ((volume.image - volume.image.mean())
                       / volume.image.std())
    return PatchProvider(volume, (input_size,) * 3, out_shape,
                         seed=seed + 2, pooled=True)


def _cmd_train_parallel(args) -> int:
    """The ``--workers``/``--batch`` path: multi-process data-parallel
    training with a deterministic cross-process gradient reduction."""
    import numpy as np

    from repro.core.serialization import save_network, state_digest
    from repro.core.training import TrainingDiverged
    from repro.parallel import ModelConfig, ParallelTrainer
    from repro.parallel import trainer as parallel_trainer

    workers = args.workers if args.workers is not None else 1
    batch = args.batch if args.batch is not None else 1
    if workers < 1:
        print(f"--workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    if batch < 1:
        print(f"--batch must be >= 1, got {batch}", file=sys.stderr)
        return 2
    cpus = parallel_trainer.visible_cpus()
    if workers > cpus and not args.oversubscribe:
        print(f"--workers {workers} exceeds the {cpus} visible CPU(s): "
              "data-parallel workers are CPU-bound processes, so extra "
              "workers only add overhead. Pass --oversubscribe to "
              "force.", file=sys.stderr)
        return 2
    for flag, value in (("--resume", args.resume),
                        ("--task-retries", args.task_retries),
                        ("--task-timeout", args.task_timeout)):
        if value:
            print(f"{flag} is not supported with data-parallel "
                  "training (--workers/--batch)", file=sys.stderr)
            return 2
    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2

    if args.spec:
        config = ModelConfig(
            input_shape=(args.input_size,) * 3, spec_path=args.spec,
            conv_mode=args.conv_mode, loss="binary-logistic",
            seed=args.seed, learning_rate=args.learning_rate,
            momentum=args.momentum)
    else:
        config = ModelConfig(
            input_shape=(args.input_size,) * 3, spec="CTMCTCT",
            layered_kwargs={"width": 6, "kernel": 3, "window": 2,
                            "transfer": "tanh",
                            "final_transfer": "linear",
                            "skip_kernels": True, "output_nodes": 1},
            conv_mode=args.conv_mode, loss="binary-logistic",
            seed=args.seed, learning_rate=args.learning_rate,
            momentum=args.momentum)
    if args.trace_out:
        # Hierarchical round tracing: the env flag is inherited by the
        # spawned workers, whose spans ship back over the pipe, so the
        # coordinator's buffer holds the whole multi-process trace.
        import os as _os

        from repro.observability.tracing import get_tracer

        _os.environ["REPRO_TRACING"] = "1"
        get_tracer().enable()

    graph = config.build_graph()
    graph.validate()
    graph.propagate_shapes(config.input_shape)
    out_shape = graph.output_nodes[0].shape
    voxels = float(np.prod(out_shape))
    rounds = args.rounds

    trainer = ParallelTrainer(
        config, _train_provider,
        (args.volume_size, args.seed, args.input_size, out_shape),
        workers=workers, batch=batch)
    try:
        net = trainer.network
        print(f"network: {len(net.nodes)} nodes, {len(net.edges)} "
              f"edges; input {(args.input_size,) * 3} -> output "
              f"{out_shape}")
        print(f"data-parallel: {workers} process(es), "
              f"global batch {batch}")
        report = trainer.run(
            rounds,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            callback=lambda i, loss: print(
                f"round {i:4d}  loss/voxel {loss / voxels:.4f}")
            if i % max(rounds // 10, 1) == 0 else None)
        print(f"mean seconds/update: "
              f"{report.mean_seconds_per_update:.4f}")
        if report.losses:
            print(f"final loss/voxel: {report.losses[-1] / voxels:.4f}")
        if report.checkpoints:
            print(f"latest checkpoint: {report.checkpoints[-1]}")
        if args.checkpoint:
            save_network(net, args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}")
        if report.worker_deaths:
            print(f"worker deaths survived: {report.worker_deaths}")
        print(f"state digest: {state_digest(net)}")
    except TrainingDiverged as exc:
        print(f"training diverged: {exc}", file=sys.stderr)
        return 1
    finally:
        trainer.close()
    if args.trace_out:
        import json

        from repro.observability.tracing import (get_tracer,
                                                 spans_to_chrome_trace)

        spans = get_tracer().spans()
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(spans_to_chrome_trace(spans), fh)
        processes = sorted({s.process for s in spans})
        print(f"trace written to {args.trace_out} "
              f"({len(spans)} spans from {len(processes)} process(es): "
              f"{', '.join(processes)})")
    if args.metrics:
        from repro.observability import render_metrics

        print(render_metrics())
    return 0


def _cmd_train(args) -> int:
    import numpy as np

    from repro.core import Network, SGD, Trainer
    from repro.core.serialization import load_latest_checkpoint, save_network
    from repro.data import PatchProvider, make_cell_volume
    from repro.graph import build_layered_network, load_spec
    from repro.resilience import (RECOVERY_METRICS, RetryPolicy,
                                  recovery_summary)
    from repro.scheduler import TraceRecorder

    if args.workers is not None or args.batch is not None:
        return _cmd_train_parallel(args)
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    retry_policy = None
    if args.task_retries or args.task_timeout:
        retry_policy = RetryPolicy(max_retries=args.task_retries,
                                   timeout=args.task_timeout)
    if args.spec:
        graph = load_spec(args.spec)
    else:
        graph = build_layered_network("CTMCTCT", width=6, kernel=3,
                                      window=2, transfer="tanh",
                                      final_transfer="linear",
                                      skip_kernels=True, output_nodes=1)
    recorder = TraceRecorder() if args.trace_out else None
    net = Network(graph, input_shape=(args.input_size,) * 3,
                  conv_mode=args.conv_mode, loss="binary-logistic",
                  num_workers=1, seed=args.seed,
                  recorder=recorder, retry_policy=retry_policy,
                  optimizer=SGD(learning_rate=args.learning_rate,
                                momentum=args.momentum))
    out_shape = net.output_nodes[0].shape
    print(f"network: {len(net.nodes)} nodes, {len(net.edges)} edges; "
          f"input {(args.input_size,) * 3} -> output {out_shape}")

    rounds = args.rounds
    if args.resume:
        resumed = load_latest_checkpoint(net, args.checkpoint_dir)
        if resumed is None:
            print(f"no checkpoint in {args.checkpoint_dir}; "
                  "starting from scratch")
        else:
            rounds = max(0, args.rounds - net.rounds)
            print(f"resumed from {resumed} (round {net.rounds}; "
                  f"{rounds} rounds remaining)")

    volume = make_cell_volume(shape=args.volume_size, num_cells=16,
                              noise=0.08, seed=args.seed + 1)
    volume.image[:] = ((volume.image - volume.image.mean())
                       / volume.image.std())
    provider = PatchProvider(volume, (args.input_size,) * 3, out_shape,
                             seed=args.seed + 2, pooled=True)
    voxels = float(np.prod(out_shape))
    report = Trainer(net, provider).run(
        rounds=rounds,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        callback=lambda i, l: print(f"round {i:4d}  loss/voxel "
                                    f"{l / voxels:.4f}")
        if i % max(rounds // 10, 1) == 0 else None)
    print(f"mean seconds/update: {report.mean_seconds_per_update:.4f}")
    if report.losses:
        print(f"final loss/voxel: {report.losses[-1] / voxels:.4f}")
    if report.checkpoints:
        print(f"latest checkpoint: {report.checkpoints[-1]}")
    if args.checkpoint:
        save_network(net, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    net.close()
    recovery = {RECOVERY_METRICS[family]: count
                for family, count in recovery_summary().items() if count}
    if recovery:
        print("recovery events: "
              + ", ".join(f"{label} {int(count)}"
                          for label, count in recovery.items()))
    else:
        print("recovery events: none")
    if recorder is not None:
        from repro.observability import write_chrome_trace

        write_chrome_trace(recorder, args.trace_out)
        s = recorder.summary()
        print(f"trace written to {args.trace_out} "
              f"({s.tasks} tasks, {s.workers} workers, "
              f"utilization {s.utilization:.0%}, {s.failed} failed)")
    if args.metrics:
        from repro.observability import render_metrics

        print(render_metrics())
    return 0


def _training_workload(args, recorder=None) -> None:
    """A small instrumented training run shared by ``repro metrics``
    and ``repro trace`` (exercises queue, engine, FFT cache, pooled
    allocator and trainer metrics)."""
    from repro.core import Network, SGD, Trainer
    from repro.data import PatchProvider, make_cell_volume
    from repro.graph import build_layered_network

    graph = build_layered_network("CTMCT", width=3, kernel=3, window=2,
                                  transfer="tanh", final_transfer="linear",
                                  skip_kernels=True, output_nodes=1)
    net = Network(graph, input_shape=(args.input_size,) * 3,
                  conv_mode=args.conv_mode, loss="binary-logistic",
                  num_workers=args.workers, seed=args.seed,
                  recorder=recorder,
                  optimizer=SGD(learning_rate=1e-3, momentum=0.9))
    volume = make_cell_volume(shape=args.volume_size, num_cells=8,
                              noise=0.08, seed=args.seed + 1)
    provider = PatchProvider(volume, (args.input_size,) * 3,
                             net.output_nodes[0].shape,
                             seed=args.seed + 2, pooled=True)
    Trainer(net, provider).run(rounds=args.rounds)
    net.close()


def _cmd_metrics(args) -> int:
    import json

    from repro.observability import get_registry, render_metrics

    registry = get_registry()
    if not registry.enabled:  # e.g. REPRO_METRICS=0; the user asked anyway
        print("note: metrics registry was disabled; enabling for this run",
              file=sys.stderr)
        registry.enable()
    registry.reset()
    _training_workload(args)
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(render_metrics(
            registry=registry,
            title=f"metrics after {args.rounds} training rounds "
                  f"({args.workers} workers, {args.conv_mode})"))
    return 0


def _cmd_trace(args) -> int:
    from repro.observability import write_chrome_trace
    from repro.scheduler import TraceRecorder

    if args.merge:
        return _cmd_trace_merge(args)
    recorder = TraceRecorder()
    _training_workload(args, recorder=recorder)
    write_chrome_trace(recorder, args.out)
    s = recorder.summary()
    print(f"trace written to {args.out}")
    print(f"{s.tasks} tasks over {s.span:.3f}s on {s.workers} worker(s); "
          f"utilization {s.utilization:.0%}, "
          f"mean queue wait {s.mean_queue_wait * 1e3:.2f}ms, "
          f"{s.failed} failed")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load "
          "the file to inspect the task cascade")
    return 0


def _cmd_trace_merge(args) -> int:
    """``repro trace --merge``: per-process span files -> one Chrome
    trace on the shared epoch-aligned timeline."""
    import json

    from repro.observability.tracing import (merge_trace_files,
                                             read_trace_file,
                                             render_span_tree)

    try:
        if args.tree:
            spans = []
            for path in args.merge:
                spans.extend(read_trace_file(path))
            spans.sort(key=lambda s: (s.start, s.process, s.span_id))
            print(render_span_tree(spans))
            return 0
        doc = merge_trace_files(args.merge, args.out)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    processes = sorted({e["args"]["name"] for e in doc["traceEvents"]
                        if e.get("ph") == "M"
                        and e.get("name") == "process_name"})
    print(f"merged {len(args.merge)} trace file(s) into {args.out}: "
          f"{len(slices)} spans across {len(processes)} process(es) "
          f"({', '.join(processes)})")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.observability.profile import (get_profiler,
                                             load_cost_model,
                                             render_cost_model,
                                             write_cost_model)

    profiler = get_profiler()
    profiler.enable()
    profiler.clear()
    _training_workload(args)
    if not len(profiler):
        print("no profiled samples were recorded", file=sys.stderr)
        return 1
    write_cost_model(args.out, profiler)
    doc = load_cost_model(args.out)  # round-trips the validation
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_cost_model(doc))
    print(f"cost model written to {args.out} "
          f"({len(doc['entries'])} (edge, backend, op) entries)")
    return 0


def _cmd_slo(args) -> int:
    import json

    import numpy as np

    from repro.observability.slo import render_slo_report
    from repro.serving import (DeadlineExceeded, InferenceServer,
                               ModelRegistry, ModelSpec)

    spec = ModelSpec(name="default", spec="CT", conv_mode=args.conv_mode,
                     builder_kwargs={"width": 2, "kernel": 3,
                                     "transfer": "tanh"})
    registry = ModelRegistry(max_models=2)
    registry.register(spec)
    server = InferenceServer(registry, num_workers=args.workers)
    server.start()
    rng = np.random.default_rng(args.seed)
    missed = 0
    try:
        for _ in range(args.requests):
            volume = rng.standard_normal((args.volume_size,) * 3)
            try:
                server.infer("default", volume, timeout=args.deadline)
            except DeadlineExceeded:
                missed += 1
    finally:
        server.stop()
    report = server.slo.report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo_report(report))
    attainment = report["deadline"]["attainment"]
    print(f"{args.requests} request(s), deadline {args.deadline:.2f}s: "
          f"{missed} missed, attainment {attainment:.1%}")
    return 0


def _parse_range(value: str, what: str):
    try:
        lo_s, hi_s = value.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise SystemExit(
            f"--{what} must look like MIN:MAX, got {value!r}")
    if not 1 <= lo <= hi:
        raise SystemExit(
            f"--{what} needs 1 <= MIN <= MAX, got {value!r}")
    return lo, hi


def _cmd_loadtest(args) -> int:
    import json

    from repro.loadgen import (
        HysteresisPolicy,
        ServiceModel,
        SimConfig,
        build_report,
        dump_report,
        generate_trace,
        load_trace,
        render_loadtest_report,
        replay_trace,
        scenario_config,
        simulate_serving,
        validate_loadtest_report,
        write_trace,
    )

    if args.trace:
        trace = load_trace(args.trace)
    else:
        size_min, size_max = _parse_range(args.size, "size")
        config = scenario_config(
            args.scenario, seed=args.seed, duration=args.duration,
            base_rate=args.rate, size_min=size_min,
            size_max=size_max,
            deadline=args.deadline if args.deadline > 0 else None)
        trace = generate_trace(config)
    if args.multiplier != 1.0:
        trace = trace.scaled(args.multiplier)
    if args.emit_trace:
        write_trace(args.emit_trace, trace)

    policy = None
    if args.autoscale:
        lo, hi = _parse_range(args.autoscale, "autoscale")
        policy = HysteresisPolicy(min_workers=lo, max_workers=hi)

    if args.sim:
        report = _loadtest_sim(args, trace, policy, ServiceModel,
                               SimConfig, simulate_serving,
                               build_report)
    else:
        report = _loadtest_live(args, trace, policy, replay_trace,
                                build_report)
    validate_loadtest_report(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dump_report(report))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_loadtest_report(report))
    return 0


def _loadtest_sim(args, trace, policy, ServiceModel, SimConfig,
                  simulate_serving, build_report) -> dict:
    service = ServiceModel()
    if args.cost_model:
        from repro.observability.profile import load_cost_model

        service = ServiceModel.from_cost_model(
            load_cost_model(args.cost_model))
    config = SimConfig(workers=args.workers,
                       max_queue=args.max_queue, service=service,
                       control_interval=args.control_interval)
    result = simulate_serving(trace, config, policy)
    counts = {"served": 0, "shed": 0, "deadline": 0, "failed": 0}
    latencies = []
    waits = []
    for outcome in result.outcomes:
        counts[outcome.status] += 1
        if outcome.latency is not None:
            latencies.append(outcome.latency)
        if outcome.wait is not None:
            waits.append(outcome.wait)
    autoscaler = {"enabled": False}
    if policy is not None:
        autoscaler = {
            "enabled": True,
            "min": policy.min_workers,
            "max": policy.max_workers,
            "initial": min(max(args.workers, policy.min_workers),
                           policy.max_workers),
            "final": result.final_workers,
            "decisions": len(result.decisions),
        }
    return build_report(
        "sim", trace, counts, latencies, waits=waits,
        worker_seconds=result.worker_seconds, workers=args.workers,
        autoscaler=autoscaler, multiplier=args.multiplier)


def _loadtest_live(args, trace, policy, replay_trace,
                   build_report) -> dict:
    import time

    from repro.loadgen import FleetAutoscaler
    from repro.serving import (FleetServer, InferenceServer,
                               ModelRegistry, ModelSpec)

    names = sorted({r.model for r in trace.requests}) or ["default"]
    specs = [ModelSpec(name=name, spec="CT",
                       conv_mode=args.conv_mode,
                       builder_kwargs={"width": 2, "kernel": 3,
                                       "transfer": "tanh"})
             for name in names]
    if policy is not None and args.fleet <= 0:
        raise SystemExit(
            "live autoscaling scales worker processes: "
            "combine --autoscale with --fleet N")
    autoscaler = None
    if args.fleet > 0:
        prewarm = min((r.shape for r in trace.requests),
                      default=None)
        server = FleetServer(
            specs, num_workers=args.fleet,
            max_queue=args.max_queue, threads_per_worker=1,
            prewarm_shape=prewarm)
    else:
        registry = ModelRegistry(max_models=4)
        for spec in specs:
            registry.register(spec)
        server = InferenceServer(registry, num_workers=args.workers,
                                 max_queue=args.max_queue)
    started = time.monotonic()
    server.start()
    try:
        if policy is not None:
            autoscaler = FleetAutoscaler(
                server, policy,
                interval=args.control_interval).start()
        result = replay_trace(trace, server, speed=args.speed)
    finally:
        if autoscaler is not None:
            autoscaler.stop()
        elapsed = time.monotonic() - started
        server.stop()
    counts = {"served": 0, "shed": 0, "deadline": 0, "failed": 0}
    latencies = []
    for outcome in result.outcomes:
        counts[outcome.status] += 1
        if outcome.latency is not None:
            latencies.append(outcome.latency)
    if autoscaler is not None:
        worker_seconds = autoscaler.worker_seconds
        autoscaler_doc = {
            "enabled": True,
            "min": policy.min_workers,
            "max": policy.max_workers,
            "initial": args.fleet,
            "final": server.active_workers,
            "decisions": len(autoscaler.decisions()),
        }
    else:
        workers = args.fleet if args.fleet > 0 else args.workers
        worker_seconds = workers * elapsed
        autoscaler_doc = {"enabled": False}
    return build_report(
        "live", trace, counts, latencies,
        worker_seconds=worker_seconds,
        workers=args.fleet if args.fleet > 0 else args.workers,
        autoscaler=autoscaler_doc, multiplier=args.multiplier)


def _cmd_gradcheck(args) -> int:
    import numpy as np

    from repro.core import Network, check_gradients
    from repro.graph import load_spec

    graph = load_spec(args.spec)
    net = Network(graph, input_shape=(args.input_size,) * 3,
                  conv_mode=args.conv_mode, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    x = rng.standard_normal((args.input_size,) * 3)
    targets = {n.name: rng.standard_normal(n.shape)
               for n in net.output_nodes}
    report = check_gradients(net, x, targets)
    print(f"checked {report.checked} gradients; "
          f"max relative error {report.max_relative_error:.2e}")
    if report.ok:
        print("OK — all gradients match finite differences")
        return 0
    for failure in report.failures:
        print(f"FAIL  {failure}")
    return 1


def _cmd_specialize(args) -> int:
    import json
    import time

    import numpy as np

    from repro.serving import (ModelRegistry, ModelSpec, PlanInfeasible,
                               plan_specialization)
    from repro.serving.specialize import CostModel
    from repro.utils.shapes import voxels

    dims = [int(v) for v in args.volume.replace(",", " ").split()]
    shape = tuple(dims) if len(dims) > 1 else (dims[0],) * 3
    spec = ModelSpec.from_files(args.name, args.spec,
                                checkpoint=args.checkpoint,
                                conv_mode="direct")
    cost = (CostModel.from_file(args.cost_model)
            if args.cost_model else None)
    memory_bytes = (int(args.memory_mb * (1 << 20))
                    if args.memory_mb is not None else None)
    try:
        plan = plan_specialization(spec, shape, cost_model=cost,
                                   tile_voxels=args.tile_voxels,
                                   memory_bytes=memory_bytes)
    except PlanInfeasible as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 65  # EX_DATAERR: no plan satisfies the constraints
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(plan.to_json())
    measured = None
    if not args.no_measure:
        # Serve one seeded volume under the plan and report the
        # achieved dense-output throughput next to the prediction.
        registry = ModelRegistry(max_models=2)
        registry.register(spec)
        registry.set_plan(plan)
        volume = np.random.default_rng(args.seed).standard_normal(shape)
        warm = registry.warm(args.name, plan.input_tile,
                             conv_modes=plan.conv_mode_map)
        warm.run(volume)  # untimed warm-up pass (engine + spectra)
        start = time.perf_counter()
        dense = warm.run(volume)
        elapsed = time.perf_counter() - start
        measured = dense.size / elapsed
        registry.close()
    if args.json:
        doc = plan.to_doc()
        if measured is not None:
            doc["measured_voxels_per_second"] = measured
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        analytic = plan.cost_model == "analytic"
        print(f"model {args.name!r}: spec {spec.spec}, fov {plan.fov}, "
              f"volume {plan.volume_shape}")
        print(f"plan: tile {plan.input_tile} "
              f"({voxels(plan.input_tile)} voxels), "
              f"{plan.num_tiles} tile(s), working set "
              f"{plan.working_set_bytes / (1 << 20):.1f} MiB, "
              f"{plan.candidates} candidates "
              f"(cost model: {plan.cost_model})")
        print(f"{'layer':>5}  mode")
        for index, mode in plan.layer_modes:
            print(f"{index:>5}  {mode}")
        unit = ("voxels/unit-cost" if analytic else "voxels/s")
        print(f"predicted: {plan.predicted_voxels_per_second:.3g} "
              f"{unit}"
              + (" (analytic: FLOP-denominated, not wall-clock)"
                 if analytic else ""))
        if measured is not None:
            print(f"measured:  {measured:.3g} voxels/s "
                  f"(seed {args.seed}, one warmed run)")
    if args.out:
        print(f"plan written to {args.out}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import os
    import signal
    import time

    from repro.resilience import RetryPolicy
    from repro.serving import (InferenceServer, ModelRegistry, ModelSpec,
                               ServingHTTPServer)
    from repro.serving.tiler import DEFAULT_TILE_VOXELS

    if args.trace_dir:
        from repro.observability.tracing import get_tracer

        os.makedirs(args.trace_dir, exist_ok=True)
        tracer = get_tracer()
        tracer.enable()
        tracer.set_process("serve")

    spec = ModelSpec.from_files(args.name, args.spec,
                                checkpoint=args.checkpoint,
                                conv_mode=args.conv_mode)
    plans = []
    if args.specialize:
        from repro.serving import SpecializationPlan

        splan = SpecializationPlan.from_file(args.specialize)
        if splan.model != spec.name:
            print(f"plan {args.specialize} targets model "
                  f"{splan.model!r} but this server registers "
                  f"{spec.name!r}; rerun repro specialize with "
                  f"--name {spec.name}", file=sys.stderr)
            return 2
        plans.append(splan)
    if args.fleet > 0:
        from repro.serving import FleetServer

        inference = FleetServer(
            [spec], num_workers=args.fleet,
            max_queue=args.max_queue, max_batch=args.max_batch,
            threads_per_worker=args.workers,
            inflight_per_worker=args.inflight_per_worker,
            tile_voxels=args.tile_voxels or DEFAULT_TILE_VOXELS,
            max_models=args.max_models,
            max_attempts=args.request_attempts,
            plans=plans)
    else:
        registry = ModelRegistry(max_models=args.max_models)
        registry.register(spec)
        for splan in plans:
            registry.set_plan(splan)
        retry_policy = (RetryPolicy(max_retries=args.request_retries)
                        if args.request_retries else None)
        inference = InferenceServer(
            registry, num_workers=args.workers,
            max_queue=args.max_queue, max_batch=args.max_batch,
            tile_voxels=args.tile_voxels or DEFAULT_TILE_VOXELS,
            retry_policy=retry_policy)
    http = ServingHTTPServer(inference, host=args.host, port=args.port)
    http.start()
    fov = spec.fov
    print(f"model {args.name!r}: spec {spec.spec}, "
          f"fov {fov} ({args.conv_mode}"
          f"{', random weights' if not args.checkpoint else ''})")
    for splan in plans:
        n_fft = sum(1 for _, m in splan.layer_modes if m == "fft")
        print(f"specialized: tile {splan.input_tile}, "
              f"{n_fft}/{len(splan.layer_modes)} conv layers on fft "
              f"(plan {args.specialize})")
    if args.fleet > 0:
        print(f"serving on {http.url} "
              f"(fleet of {args.fleet} worker processes, "
              f"queue {args.max_queue}, batch {args.max_batch})",
              flush=True)
    else:
        print(f"serving on {http.url} "
              f"(workers {args.workers}, queue {args.max_queue}, "
              f"batch {args.max_batch})", flush=True)
    # SIGTERM (e.g. from a CI harness or an orchestrator) shuts down
    # as gracefully as ^C; fleet mode drains first (stop admitting,
    # finish in-flight, /healthz flips to draining/503) so no accepted
    # request is dropped by a rolling restart.
    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    stopped = False
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        if args.fleet > 0:
            print("draining", flush=True)
            drained = http.drain(timeout=args.drain_timeout)
            stopped = True
            print("drained" if drained
                  else f"drain timed out after {args.drain_timeout}s")
        print("shutting down")
    finally:
        if not stopped:
            http.stop()
        if args.trace_dir:
            from repro.observability.tracing import write_trace_file

            path = os.path.join(args.trace_dir,
                                f"trace-serve-{os.getpid()}.json")
            write_trace_file(path)
            print(f"trace file written to {path}")
    return 0


def _cmd_infer(args) -> int:
    import numpy as np

    from repro.serving import (DeadlineExceeded, HttpServingClient,
                               ServerOverloaded, ServingError)

    if (args.input is None) == (args.random is None):
        print("exactly one of --input / --random is required",
              file=sys.stderr)
        return 2
    if args.input is not None:
        volume = np.load(args.input, allow_pickle=False)
    else:
        dims = [int(v) for v in args.random.replace(",", " ").split()]
        shape = tuple(dims) if len(dims) > 1 else (dims[0],) * 3
        volume = np.random.default_rng(args.seed).standard_normal(shape)
    client = HttpServingClient(args.url, max_attempts=args.max_attempts)
    try:
        dense = client.infer(args.model, volume, timeout=args.timeout,
                             trace_id=args.trace_id)
    except ServerOverloaded as exc:
        print(f"rejected: {exc} (retry after {exc.retry_after:.2f}s)",
              file=sys.stderr)
        return 75  # EX_TEMPFAIL: the request was refused, not dropped
    except DeadlineExceeded as exc:
        print(f"deadline missed: {exc}", file=sys.stderr)
        return 76
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 70
    print(f"input {volume.shape} -> dense {dense.shape}; "
          f"mean {dense.mean():.6f}, min {dense.min():.6f}, "
          f"max {dense.max():.6f}")
    if client.last_trace_id:
        print(f"trace id: {client.last_trace_id}")
    if args.output:
        np.save(args.output, dense)
        print(f"output written to {args.output}")
    return 0


def _cmd_fleet(args) -> int:
    import json
    import urllib.error
    import urllib.request

    # /healthz answers 503 (with the same JSON document as the body)
    # while draining or once no worker is healthy, so the status
    # command must read the body on HTTPError too.
    url = f"{args.url.rstrip('/')}/healthz"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            doc = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            print(f"error: HTTP {exc.code} from {url}", file=sys.stderr)
            return 69
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 69
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"fleet status: {doc.get('status', '?')} "
          f"(role {doc.get('role', '?')})")
    print(f"models: {', '.join(doc.get('models', [])) or '-'}")
    admission = doc.get("admission", {})
    print(f"queue: {doc.get('queue_depth', '?')}"
          f"/{doc.get('max_queue', '?')} queued, "
          f"{doc.get('orphaned', 0)} orphaned, "
          f"capacity {admission.get('capacity', '?')}")
    workers = doc.get("workers")
    if not isinstance(workers, dict):
        # Single-process server: workers is a thread count.
        print(f"workers: {workers}")
        return 0
    header = (f"{'id':>3}  {'state':<12} {'pid':>7}  {'restarts':>8}  "
              f"{'queued':>6}  {'inflight':>8}  {'served':>7}  "
              f"{'missed':>6}  last restart reason")
    print(header)
    for wid in sorted(workers, key=lambda w: int(w)):
        info = workers[wid]
        print(f"{wid:>3}  {info.get('state', '?'):<12} "
              f"{str(info.get('pid', '-')):>7}  "
              f"{info.get('restarts', 0):>8}  "
              f"{info.get('queued', 0):>6}  "
              f"{info.get('inflight', 0):>8}  "
              f"{info.get('served', 0):>7}  "
              f"{info.get('deadline_missed', 0):>6}  "
              f"{info.get('last_restart_reason') or '-'}")
    status = doc.get("status")
    return 0 if status in ("ok", "draining") else 69


def _determinism_probe() -> int:
    """One determinism-probe run: train, serve, loadtest a small
    deterministic recipe and print one ``{"stage", "digest"}`` JSON
    line per stage digest.

    Worker counts come from ``REPRO_DET_THREADS`` (the sanitizer's
    perturbation axis); every seed is pinned, so the digests must be
    identical across probe runs regardless of ``PYTHONHASHSEED`` or
    the thread schedule.
    """
    import hashlib
    import json

    from repro.analysis.runtime import DET_THREADS_ENV
    from repro.core import Network, state_digest
    from repro.data.provider import RandomProvider
    from repro.graph import build_layered_network
    from repro.loadgen import (
        SimConfig,
        build_report,
        dump_report,
        generate_trace,
        scenario_config,
        simulate_serving,
    )
    from repro.parallel import ModelConfig, ParallelTrainer
    from repro.serving.tiler import plan_volume, run_plan

    threads = int(os.environ.get(DET_THREADS_ENV, "2") or "2")

    def emit(stage: str, digest: str) -> None:
        print(json.dumps({"stage": stage, "digest": digest},
                         sort_keys=True))

    # Stage 1 — training: the golden recipe (IEEE-exact ops only) at
    # the perturbed worker count; Algorithm 4's fixed-order summation
    # makes the final state digest worker-count invariant.
    layered = {"width": 2, "kernel": 3, "transfer": "linear",
               "final_transfer": "linear", "output_nodes": 1}
    cfg = ModelConfig(
        input_shape=(10, 10, 10), spec="CTCT",
        layered_kwargs=dict(layered), conv_mode="direct",
        loss="euclidean", seed=2026, learning_rate=1e-5, momentum=0.9)
    trainer = ParallelTrainer(
        cfg, RandomProvider, ((10, 10, 10), (6, 6, 6), False, None),
        workers=threads, batch=2, worker_timeout=120.0)
    try:
        report = trainer.run(2)
        emit("train.state_digest", state_digest(trainer.network))
        emit("train.losses", hashlib.sha256(
            json.dumps(list(report.losses)).encode()).hexdigest())
    finally:
        trainer.close()

    # Stage 2 — serving: tiled inference over a fixed volume; the
    # stitched dense output must be bitwise stable.
    import numpy as np

    fov = (5, 5, 5)  # two chained 3^3 direct convolutions
    volume = np.ascontiguousarray(
        np.random.default_rng(123).random((9, 9, 9)))
    plan = plan_volume(volume.shape, fov, max_voxels=343,
                      fast_sizes=False)
    graph = build_layered_network("CTCT", **layered)
    network = Network(graph, input_shape=plan.input_tile,
                      conv_mode="direct", deterministic_sums=True,
                      num_workers=threads, seed=7)
    try:
        dense = run_plan(network, volume, plan)
        emit("serve.dense_volume", hashlib.sha256(
            dense.tobytes()).hexdigest())
    finally:
        network.close()

    # Stage 3 — loadgen: a seeded trace through the discrete-event
    # simulator; the serialized report must be byte-identical.
    trace = generate_trace(
        scenario_config("steady", seed=11, duration=10.0,
                        base_rate=4.0))
    result = simulate_serving(trace, SimConfig(workers=2, max_queue=8))
    counts = {"served": 0, "shed": 0, "deadline": 0, "failed": 0}
    latencies = []
    waits = []
    for outcome in result.outcomes:
        counts[outcome.status] += 1
        if outcome.latency is not None:
            latencies.append(outcome.latency)
        if outcome.wait is not None:
            waits.append(outcome.wait)
    doc = build_report("sim", trace, counts, latencies, waits=waits,
                       worker_seconds=result.worker_seconds, workers=2)
    emit("loadtest.report", hashlib.sha256(
        dump_report(doc).encode()).hexdigest())
    return 0


def _parse_pair(value, what, default):
    if value is None:
        return default
    parts = [p.strip() for p in value.split(",") if p.strip()]
    if len(parts) != 2:
        raise SystemExit(f"--{what} needs two comma-separated values, "
                         f"got {value!r}")
    return int(parts[0]), int(parts[1])


def _cmd_check_determinism(args) -> int:
    import json

    from repro.analysis.runtime import run_determinism_check

    if args.probe:
        return _determinism_probe()
    seeds = _parse_pair(args.seeds, "seeds", (0, 4242))
    threads = _parse_pair(args.threads, "threads", (1, 2))
    doc = run_determinism_check(seeds=seeds, threads=threads)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif doc["matched"]:
        print("repro check-determinism: OK — "
              f"{len(doc['stages'])} stage digest(s) identical under "
              f"PYTHONHASHSEED {seeds[0]}→{seeds[1]}, "
              f"threads {threads[0]}→{threads[1]}")
        for run in doc["runs"]:
            for stage, digest in run["digests"].items():
                print(f"  {stage}: {digest[:16]}…")
            break
    else:
        first = doc["first_divergence"]
        print("repro check-determinism: DIVERGENCE at stage "
              f"{first['stage']!r}")
        print(f"  run A (seed={seeds[0]}, threads={threads[0]}): "
              f"{first['run_a']}")
        print(f"  run B (seed={seeds[1]}, threads={threads[1]}): "
              f"{first['run_b']}")
        print("  earlier stages matched — the leak is in this stage's "
              "arithmetic or serialization", file=sys.stderr)
    return 0 if doc["matched"] else 1


def _cmd_lint(args) -> int:
    from repro.analysis import ALL_RULES, lint_paths, render_violations

    if args.list_rules:
        for name in sorted(ALL_RULES):
            print(name)
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        violations = lint_paths(args.paths, rules=rules,
                                include_suppressed=True)
    except (ValueError, OSError, SyntaxError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    active = [v for v in violations if not v.suppressed]
    suppressed = [v for v in violations if v.suppressed]
    if args.format == "sarif":
        shown = violations
    elif args.show_suppressed:
        shown = violations
    else:
        shown = active
    if shown:
        print(render_violations(shown, fmt=args.format))
    elif args.format == "json":
        print("[]")
    elif args.format == "sarif":
        print(render_violations([], fmt="sarif"))
    else:
        ran = rules if rules is not None else sorted(ALL_RULES)
        print(f"repro lint: {', '.join(ran)}: clean")
    summary = f"{len(active)} violation(s)"
    if suppressed:
        summary += f", {len(suppressed)} suppressed"
    print(summary, file=sys.stderr)
    return 1 if active else 0


_COMMANDS = {
    "info": _cmd_info,
    "figure": _cmd_figure,
    "simulate": _cmd_simulate,
    "autotune": _cmd_autotune,
    "train": _cmd_train,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "slo": _cmd_slo,
    "loadtest": _cmd_loadtest,
    "gradcheck": _cmd_gradcheck,
    "specialize": _cmd_specialize,
    "serve": _cmd_serve,
    "infer": _cmd_infer,
    "fleet": _cmd_fleet,
    "lint": _cmd_lint,
    "check-determinism": _cmd_check_determinism,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
