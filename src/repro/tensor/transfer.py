"""Transfer functions and their Jacobians (Sections II and III-A).

A transfer function edge adds a scalar *bias* to every voxel and applies
a nondecreasing nonlinearity.  The paper names the logistic function,
the hyperbolic tangent and half-wave rectification (ReLU); we add the
identity for linear output layers.

Each nonlinearity exposes its derivative *in terms of the forward
output* — for all the supported functions ``f'(x)`` is expressible from
``y = f(x)``, which lets the backward pass (``grad * f'``) reuse the
memoized forward image instead of recomputing or storing pre-activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = [
    "TransferFunction",
    "RELU",
    "LOGISTIC",
    "TANH",
    "LINEAR",
    "get_transfer",
    "TRANSFER_FUNCTIONS",
]


@dataclass(frozen=True)
class TransferFunction:
    """A voxelwise nonlinearity with derivative-from-output.

    Attributes
    ----------
    name:
        Registry key.
    forward:
        ``y = f(x)`` applied elementwise.
    derivative_from_output:
        ``f'(x)`` computed from ``y = f(x)``.
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative_from_output: Callable[[np.ndarray], np.ndarray]

    def apply(self, image: np.ndarray, bias: float = 0.0) -> np.ndarray:
        """Forward transfer edge: add *bias* then apply the nonlinearity."""
        return self.forward(image + bias)

    def backward(self, grad_output: np.ndarray,
                 forward_output: np.ndarray) -> np.ndarray:
        """Transfer-function Jacobian: multiply each backward voxel by
        the derivative at the corresponding forward voxel."""
        return grad_output * self.derivative_from_output(forward_output)

    def __repr__(self) -> str:
        return f"TransferFunction({self.name!r})"


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_prime(y: np.ndarray) -> np.ndarray:
    return (y > 0.0).astype(y.dtype)


def _logistic(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise logistic.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _logistic_prime(y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_prime(y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def _identity(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64) + 0.0


def _one(y: np.ndarray) -> np.ndarray:
    return np.ones_like(y)


RELU = TransferFunction("relu", _relu, _relu_prime)
LOGISTIC = TransferFunction("logistic", _logistic, _logistic_prime)
TANH = TransferFunction("tanh", _tanh, _tanh_prime)
LINEAR = TransferFunction("linear", _identity, _one)

TRANSFER_FUNCTIONS: Dict[str, TransferFunction] = {
    f.name: f for f in (RELU, LOGISTIC, TANH, LINEAR)
}


def get_transfer(name: str | TransferFunction) -> TransferFunction:
    """Look up a transfer function by name (or pass one through)."""
    if isinstance(name, TransferFunction):
        return name
    try:
        return TRANSFER_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown transfer function {name!r}; "
            f"available: {sorted(TRANSFER_FUNCTIONS)}") from None
