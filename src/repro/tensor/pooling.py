"""Max-pooling forward and Jacobian (Sections II and III-A).

Max-pooling divides an image of size ``n^3`` into blocks of size ``p^3``
(``n`` divisible by ``p``) and keeps each block's maximum, yielding
``(n/p)^3``.  The Jacobian routes the backward value of each pooled
voxel to the block position that won the forward max, zeroing the rest.

The forward therefore also returns the winning positions; forward and
backward share one argmax so tie-breaking (first maximum in C order, as
``numpy.argmax``) is consistent by construction.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.shapes import as_shape3, pool_shape
from repro.utils.validation import check_array3

__all__ = ["max_pool_forward", "max_pool_backward"]


def _blocks(image: np.ndarray, window: Tuple[int, int, int]) -> np.ndarray:
    """View of the image as (out0, out1, out2, p0*p1*p2) blocks."""
    n = image.shape
    p = window
    out = (n[0] // p[0], n[1] // p[1], n[2] // p[2])
    view = image.reshape(out[0], p[0], out[1], p[1], out[2], p[2])
    view = view.transpose(0, 2, 4, 1, 3, 5)
    return view.reshape(out[0], out[1], out[2], p[0] * p[1] * p[2])


def max_pool_forward(image: np.ndarray, window: int | Sequence[int]
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Max-pool *image* with block size *window*.

    Returns
    -------
    (pooled, argmax):
        ``pooled`` has shape ``n/p`` per dimension; ``argmax`` holds,
        per output voxel, the flat within-block index of the winning
        input voxel (used by :func:`max_pool_backward`).
    """
    img = check_array3(image, "image")
    p = as_shape3(window, name="window")
    pool_shape(img.shape, p)  # validates divisibility
    blocks = _blocks(img, p)
    argmax = np.argmax(blocks, axis=-1)
    pooled = np.take_along_axis(blocks, argmax[..., np.newaxis], axis=-1)
    return np.ascontiguousarray(pooled[..., 0]), argmax


def max_pool_backward(grad_output: np.ndarray, argmax: np.ndarray,
                      window: int | Sequence[int]) -> np.ndarray:
    """Max-pooling Jacobian: expand ``n^3`` back to ``(n*p)^3``.

    Within each block all voxels are zeroed except the forward winner,
    which receives the corresponding backward value.
    """
    go = check_array3(grad_output, "grad_output")
    p = as_shape3(window, name="window")
    if argmax.shape != go.shape:
        raise ValueError(
            f"argmax shape {argmax.shape} != grad_output shape {go.shape}")
    out = go.shape
    blocks = np.zeros(out + (p[0] * p[1] * p[2],), dtype=go.dtype)
    np.put_along_axis(blocks, argmax[..., np.newaxis], go[..., np.newaxis],
                      axis=-1)
    blocks = blocks.reshape(out[0], out[1], out[2], p[0], p[1], p[2])
    blocks = blocks.transpose(0, 3, 1, 4, 2, 5)
    return np.ascontiguousarray(
        blocks.reshape(out[0] * p[0], out[1] * p[1], out[2] * p[2]))
