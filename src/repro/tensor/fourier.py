"""Real-FFT helpers shared by the FFT convolution path.

The paper computes all three passes of a convolutional layer (forward,
backward, update) with transforms of a single common size — the layer's
*input* image size ``n`` — which is what makes the FFT memoization of
Table II possible: the FFT of a forward image computed during the
forward pass is reused by the weight update, and the FFT of a kernel is
reused by the backward pass.

A size-``n`` circular transform is exact for all three operations:

* valid forward conv (``n`` ⊛ ``k`` → ``n'``): the circular wraparound
  only contaminates output positions ``0 .. k-2``; the valid region
  ``k-1 .. n-1`` is exact.
* full backward conv (``n'`` ⊛ ``k`` → ``n``): the linear result has
  length exactly ``n``; no wraparound at all.
* kernel gradient (correlation of ``n`` with ``n'`` at lags
  ``0 .. (k-1)s``): aliased lags fall outside the linear correlation's
  support, so the needed lags are exact.

These exactness facts are property-tested against the direct method in
``tests/tensor/test_conv_fft.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.shapes import as_shape3

__all__ = [
    "rfft_shape",
    "forward_transform",
    "inverse_transform",
    "pad_to",
    "crop_valid_tail",
    "crop_head",
    "next_fast_len",
    "fast_transform_shape",
]


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer (2^a 3^b 5^c) >= n.

    FFT libraries are fastest on highly composite sizes; padding a
    transform up to the next 5-smooth length is the classic trick (MKL
    and FFTW both do it internally; numpy's pocketfft benefits too).
    Any transform size >= the layer input size is *exact* for all three
    convolution passes (see the module docstring), so the padding is
    free of correctness caveats.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n <= 6:
        return n
    best = 1
    while best < n:
        best *= 2
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            # round p35 up to a power of two multiple
            quotient = -(-n // p35)  # ceil
            p2 = 1
            while p2 < quotient:
                p2 *= 2
            candidate = p2 * p35
            if n <= candidate < best:
                best = candidate
            if p35 * 3 > best:
                break
            p35 *= 3
        if p5 * 5 > best:
            break
        p5 *= 5
    return best


def fast_transform_shape(shape: Sequence[int]) -> Tuple[int, int, int]:
    """Per-axis :func:`next_fast_len` of *shape*."""
    s = as_shape3(shape, name="shape")
    return tuple(next_fast_len(d) for d in s)  # type: ignore[return-value]


def rfft_shape(transform_shape: Sequence[int]) -> Tuple[int, int, int]:
    """Shape of the half-spectrum produced by ``rfftn`` at *transform_shape*."""
    t = as_shape3(transform_shape, name="transform_shape")
    return (t[0], t[1], t[2] // 2 + 1)


def pad_to(image: np.ndarray, transform_shape: Sequence[int]) -> np.ndarray:
    """Zero-pad *image* at the high end of each axis to *transform_shape*."""
    t = as_shape3(transform_shape, name="transform_shape")
    if image.shape == t:
        return image
    if any(i > td for i, td in zip(image.shape, t)):
        raise ValueError(f"image {image.shape} larger than transform {t}")
    pad = [(0, td - i) for i, td in zip(image.shape, t)]
    return np.pad(image, pad, mode="constant")


def forward_transform(image: np.ndarray,
                      transform_shape: Sequence[int]) -> np.ndarray:
    """Real 3D FFT of *image* zero-padded to *transform_shape*."""
    t = as_shape3(transform_shape, name="transform_shape")
    return np.fft.rfftn(image, s=t, axes=(0, 1, 2))


def inverse_transform(spectrum: np.ndarray,
                      transform_shape: Sequence[int]) -> np.ndarray:
    """Inverse real 3D FFT back to *transform_shape*."""
    t = as_shape3(transform_shape, name="transform_shape")
    return np.fft.irfftn(spectrum, s=t, axes=(0, 1, 2))


def crop_valid_tail(image: np.ndarray,
                    out_shape: Sequence[int]) -> np.ndarray:
    """Keep the trailing *out_shape* corner (the valid region of a
    circular convolution whose wraparound contaminates the head)."""
    o = as_shape3(out_shape, name="out_shape")
    return np.ascontiguousarray(
        image[image.shape[0] - o[0]:,
              image.shape[1] - o[1]:,
              image.shape[2] - o[2]:])


def crop_head(image: np.ndarray, out_shape: Sequence[int]) -> np.ndarray:
    """Keep the leading *out_shape* corner."""
    o = as_shape3(out_shape, name="out_shape")
    return np.ascontiguousarray(image[: o[0], : o[1], : o[2]])
