"""Max-filtering forward and Jacobian (Sections II and III-A).

Max-filtering computes the maximum within a sliding window for each
window position — it does *not* reduce resolution, which is what lets a
max-filtering ConvNet with sparse convolutions compute the output of a
sliding-window max-pooling ConvNet densely and efficiently (Fig 2,
skip-kernels / filter rarefaction).

Two forward implementations are provided:

* a vectorised strided-view implementation (default, used by the edge
  types) that also yields the winning input coordinates needed by the
  Jacobian; and
* the paper's algorithm — sequential 1-D max-filterings in each of the
  three directions, each 1-D pass using a heap of size ``k`` with lazy
  deletion so every element is inserted and removed at most once at
  ``O(log k)`` each (Section II "Max-filtering").  The separable pass is
  the source of the ``6 n^3 log k`` FLOP count in Table I.

Windows may be *sparse* (dilated) with sparsity ``s``: taps sit at
offsets ``0, s, …, (k-1)s``, which is required by skip-kernel networks
where later max-filterings act on rarefied lattices.
"""

from __future__ import annotations

import heapq
from typing import Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.utils.shapes import as_shape3, effective_kernel_shape, valid_conv_shape
from repro.utils.validation import check_array3

__all__ = [
    "max_filter_forward",
    "max_filter_backward",
    "max_filter_1d_heap",
    "max_filter_separable",
]


def max_filter_forward(image: np.ndarray, window: int | Sequence[int],
                       sparsity: int | Sequence[int] = 1
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window maximum of *image*.

    Returns
    -------
    (filtered, argmax):
        ``filtered`` has shape ``n - (k-1)s`` per dimension.  ``argmax``
        has shape ``filtered.shape + (3,)`` and holds, per output voxel,
        the *absolute* input coordinates of the winning voxel.
    """
    img = check_array3(image, "image")
    k = as_shape3(window, name="window")
    s = as_shape3(sparsity, name="sparsity")
    out_shape = valid_conv_shape(img.shape, k, s)
    eff = effective_kernel_shape(k, s)
    win = sliding_window_view(img, eff)[..., :: s[0], :: s[1], :: s[2]]
    flat = win.reshape(out_shape + (k[0] * k[1] * k[2],))
    flat_arg = np.argmax(flat, axis=-1)
    filtered = np.take_along_axis(flat, flat_arg[..., np.newaxis], axis=-1)[..., 0]
    # Decompose the flat within-window index into per-axis tap indices,
    # then convert to absolute input coordinates: x + s * tap.
    u0, rem = np.divmod(flat_arg, k[1] * k[2])
    u1, u2 = np.divmod(rem, k[2])
    base = np.indices(out_shape)
    argmax = np.stack([base[0] + s[0] * u0,
                       base[1] + s[1] * u1,
                       base[2] + s[2] * u2], axis=-1)
    return np.ascontiguousarray(filtered), argmax


def max_filter_backward(grad_output: np.ndarray, argmax: np.ndarray,
                        input_shape: Sequence[int]) -> np.ndarray:
    """Max-filtering Jacobian.

    The backward image (of the forward *input* size) starts at zero and,
    for each window position, the backward value is *accumulated* at the
    coordinates that won the forward max — windows overlap, so a voxel
    can win several windows and receives the sum.
    """
    go = check_array3(grad_output, "grad_output")
    in_shape = as_shape3(input_shape, name="input_shape")
    if argmax.shape != go.shape + (3,):
        raise ValueError(
            f"argmax shape {argmax.shape} incompatible with grad_output "
            f"{go.shape}")
    grad_input = np.zeros(in_shape, dtype=go.dtype)
    flat_idx = (argmax[..., 0] * (in_shape[1] * in_shape[2])
                + argmax[..., 1] * in_shape[2]
                + argmax[..., 2])
    np.add.at(grad_input.reshape(-1), flat_idx.reshape(-1), go.reshape(-1))
    return grad_input


def max_filter_1d_heap(array: np.ndarray, k: int) -> np.ndarray:
    """1-D sliding-window maximum using a lazy-deletion heap of size ~k.

    This is the paper's description verbatim: "we keep a heap of size k
    containing the values inside the 1D sliding window.  Each element of
    the array will be inserted and removed at most once, each operation
    taking log k.  For each position of the sliding window the top of
    the heap will contain the maximum value."
    """
    a = np.asarray(array, dtype=np.float64).ravel()
    n = a.shape[0]
    if k < 1:
        raise ValueError(f"window must be >= 1, got {k}")
    if k > n:
        raise ValueError(f"window {k} larger than array length {n}")
    out = np.empty(n - k + 1, dtype=a.dtype)
    heap: list[tuple[float, int]] = []
    for i in range(n):
        heapq.heappush(heap, (-a[i], i))
        if i >= k - 1:
            # Lazily evict entries that slid out of the window.
            while heap[0][1] <= i - k:
                heapq.heappop(heap)
            out[i - k + 1] = -heap[0][0]
    return out


def max_filter_separable(image: np.ndarray, window: int | Sequence[int]
                         ) -> np.ndarray:
    """3-D max-filter by sequential 1-D max-filterings along each axis.

    The 3-D box maximum is separable, so filtering the ``n^2`` rows of
    each of the three directions in turn (Table I's ``6 n^3 log k``)
    gives the same values as the direct window maximum.  Returns values
    only (the Jacobian needs :func:`max_filter_forward`'s argmax).
    """
    img = check_array3(image, "image")
    k = as_shape3(window, name="window")
    result = img
    for axis, kd in enumerate(k):
        if kd == 1:
            continue
        moved = np.moveaxis(result, axis, -1)
        rows = moved.reshape(-1, moved.shape[-1])
        filtered = np.empty((rows.shape[0], rows.shape[1] - kd + 1),
                            dtype=rows.dtype)
        for r in range(rows.shape[0]):
            filtered[r] = max_filter_1d_heap(rows[r], kd)
        new_shape = moved.shape[:-1] + (moved.shape[-1] - kd + 1,)
        result = np.moveaxis(filtered.reshape(new_shape), -1, axis)
    return np.ascontiguousarray(result)
