"""FFT memoization — the "(Memoized)" column of Table II.

During one round of gradient learning the same spectra are needed by
multiple passes:

* the spectrum of a node's forward image is needed by every outgoing
  edge's forward pass *and again* by every outgoing edge's weight
  update;
* the spectrum of an edge's kernel is needed by the forward pass *and
  again* by the backward pass;
* the spectrum of a node's backward image is needed by every incoming
  edge's backward pass *and again* by every incoming edge's update.

Memoizing them removes one third of the FFT work per round (9C→6C in
Table II).  The paper notes this was impractical on GPUs for memory
reasons but is natural on CPUs with large RAM.

The cache is a thread-safe per-round store keyed by (round, kind, name).
``next_round`` drops everything from previous rounds, mirroring ZNN's
behaviour where memoized spectra live exactly one forward/backward
/update cycle.  Statistics (computed vs reused) feed the memoization
benchmark.

Two extensions support long-running *serving* processes
(``repro.serving``, docs/serving.md):

* **pinned kinds** — :meth:`TransformCache.pin_kind` marks a kind
  (e.g. ``"ker"``) as persistent: its entries survive ``next_round``.
  At inference time kernels never change, so a warm model's kernel
  spectra are transformed once and reused by every request.  Pinning
  is only safe while the underlying parameters are frozen; training
  code must not pin (``invalidate`` still removes single entries).
* **byte-bounded LRU eviction** — a ``max_bytes`` cap (default from the
  ``REPRO_FFT_CACHE_BYTES`` environment variable; 0/unset = unbounded)
  evicts least-recently-used entries, pinned or not, so the cache
  cannot grow without bound across many request shapes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.analysis.runtime import (checking_enabled, make_lock, note_access,
                                    track)
from repro.observability.metrics import get_registry

__all__ = ["CacheStats", "TransformCache", "cache_byte_limit_from_env"]

#: Key-prefix for entries of pinned kinds (no round component, so they
#: survive round eviction).
_PINNED = "pinned"


def cache_byte_limit_from_env() -> Optional[int]:
    """The ``REPRO_FFT_CACHE_BYTES`` cap, or None when unset/0/invalid."""
    raw = os.environ.get("REPRO_FFT_CACHE_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class CacheStats:
    """Counters for memoization effectiveness."""

    computed: int = 0
    reused: int = 0
    evicted: int = 0
    #: Entries evicted by the byte-budget LRU (subset of ``evicted``).
    lru_evicted: int = 0

    @property
    def total_requests(self) -> int:
        return self.computed + self.reused

    @property
    def reuse_fraction(self) -> float:
        total = self.total_requests
        return self.reused / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "computed": self.computed,
            "reused": self.reused,
            "evicted": self.evicted,
            "lru_evicted": self.lru_evicted,
            "reuse_fraction": self.reuse_fraction,
        }


class TransformCache:
    """Thread-safe memoization store for FFT spectra.

    Parameters
    ----------
    enabled:
        When False the cache degenerates to always-compute (the plain
        "FFT-based" column of Table II); statistics are still gathered
        so the two modes can be compared.
    max_bytes:
        Byte budget for stored spectra; least-recently-used entries are
        evicted when an insert would exceed it.  ``None`` (the default)
        reads ``REPRO_FFT_CACHE_BYTES`` from the environment; 0 or
        unset means unbounded (the paper's behaviour — training rounds
        bound the cache naturally via ``next_round``).
    """

    def __init__(self, enabled: bool = True,
                 max_bytes: Optional[int] = None) -> None:
        self.enabled = bool(enabled)
        if max_bytes is None:
            max_bytes = cache_byte_limit_from_env()
        if max_bytes is not None and max_bytes <= 0:
            max_bytes = None
        self.max_bytes = max_bytes
        self._lock = make_lock("tensor.fft_cache")
        # Insertion/access-ordered (dicts preserve order; hits re-insert)
        # so iteration order is LRU-first.
        self._store: Dict[Tuple[Hashable, ...], np.ndarray] = {}  # guarded-by: _lock
        self._round = 0  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        self._pinned_kinds: frozenset = frozenset()  # guarded-by: _lock
        self.stats = CacheStats()  # guarded-by: _lock
        self._check = checking_enabled()
        if self._check:
            track(self, name="tensor.fft_cache")
        reg = get_registry()
        self._m_hit = reg.counter("fft_cache.hit")
        self._m_miss = reg.counter("fft_cache.miss")
        self._m_evicted = reg.counter("fft_cache.evicted")
        self._m_lru_evicted = reg.counter("fft_cache.lru_evicted")
        self._m_bytes = reg.gauge("fft_cache.bytes")
        self._m_entries = reg.gauge("fft_cache.entries")
        self._m_max_bytes = reg.gauge("fft_cache.max_bytes")
        self._m_max_bytes.set(max_bytes or 0)

    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        """Current training round the cache is scoped to."""
        return self._round

    @property
    def nbytes(self) -> int:
        """Bytes of spectra currently held."""
        with self._lock:
            return self._bytes

    def pin_kind(self, kind: str) -> None:
        """Mark *kind* persistent: entries survive :meth:`next_round`.

        Serving pins ``"ker"`` so a warm model's kernel spectra are
        computed once per process rather than once per request.  Only
        safe while the parameters behind the kind are frozen.
        """
        with self._lock:
            if self._check:
                note_access(self, "write")
            self._pinned_kinds = self._pinned_kinds | {kind}

    @property
    def pinned_kinds(self) -> frozenset:
        return self._pinned_kinds

    def _key(self, kind: str, name: Hashable) -> Tuple[Hashable, ...]:
        if kind in self._pinned_kinds:
            return (_PINNED, kind, name)
        return (self._round, kind, name)

    def next_round(self) -> int:
        """Advance to the next training round, evicting all per-round
        spectra (entries of pinned kinds survive).

        ZNN's memoized spectra are only valid within one forward/
        backward/update cycle: kernels change at the update, images
        change with the next sample.
        """
        with self._lock:
            if self._check:
                note_access(self, "write")
            if self._pinned_kinds:
                keep = {k: v for k, v in self._store.items()
                        if k[0] == _PINNED}
            else:
                keep = {}
            evicted = len(self._store) - len(keep)
            self.stats.evicted += evicted
            self._store = keep
            self._bytes = sum(  # nondeterministic: int sum, order-free
                v.nbytes for v in keep.values())
            self._round += 1
            if evicted:
                self._m_evicted.inc(evicted)
            self._m_bytes.set(self._bytes)
            self._m_entries.set(len(self._store))
            return self._round

    def invalidate(self, kind: str, name: Hashable) -> None:
        """Drop a single entry (e.g. a kernel spectrum after its update).

        Works for pinned and per-round kinds alike."""
        with self._lock:
            if self._check:
                note_access(self, "write")
            dropped = self._store.pop(self._key(kind, name), None)
            if dropped is not None:
                self._bytes -= dropped.nbytes
                self.stats.evicted += 1
                self._m_evicted.inc()
                self._m_bytes.set(self._bytes)
                self._m_entries.set(len(self._store))

    def _evict_lru_locked(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        Called with the lock held.  A single entry larger than the
        whole budget is still stored (and evicted by the next insert) —
        refusing to cache would silently disable memoization for big
        layers, which costs more than briefly exceeding the cap.
        """
        while self._bytes > self.max_bytes and len(self._store) > 1:
            key = next(iter(self._store))
            value = self._store.pop(key)
            self._bytes -= value.nbytes
            self.stats.evicted += 1
            self.stats.lru_evicted += 1
            self._m_evicted.inc()
            self._m_lru_evicted.inc()

    def get_or_compute(self, kind: str, name: Hashable,
                       compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached spectrum for (kind, name), computing at most
        once per round (once per process for pinned kinds).

        The computation runs *outside* the lock; if two threads race on
        the same key both compute but only one result is stored — the
        spectra are deterministic so either is correct.  This trades a
        rare duplicated FFT for never holding the lock during an FFT,
        in the same spirit as the paper's wait-free summation.
        """
        key = self._key(kind, name)
        if self.enabled:
            with self._lock:
                cached = self._store.get(key)
                if cached is not None and self.max_bytes is not None:
                    # Refresh recency: re-insert at the MRU end.
                    del self._store[key]
                    self._store[key] = cached
            if cached is not None:
                with self._lock:
                    self.stats.reused += 1
                self._m_hit.inc()
                return cached
        value = compute()
        with self._lock:
            if self._check:
                note_access(self, "write")
            self.stats.computed += 1
            if self.enabled:
                if key not in self._store:
                    self._store[key] = value
                    self._bytes += value.nbytes
                    if self.max_bytes is not None:
                        self._evict_lru_locked()
                    self._m_bytes.set(self._bytes)
                    self._m_entries.set(len(self._store))
                value = self._store[key]
        self._m_miss.inc()
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TransformCache(enabled={self.enabled}, round={self._round}, "
                f"entries={len(self)}, bytes={self.nbytes}, "
                f"max_bytes={self.max_bytes}, stats={self.stats.snapshot()})")
