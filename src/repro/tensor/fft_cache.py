"""FFT memoization — the "(Memoized)" column of Table II.

During one round of gradient learning the same spectra are needed by
multiple passes:

* the spectrum of a node's forward image is needed by every outgoing
  edge's forward pass *and again* by every outgoing edge's weight
  update;
* the spectrum of an edge's kernel is needed by the forward pass *and
  again* by the backward pass;
* the spectrum of a node's backward image is needed by every incoming
  edge's backward pass *and again* by every incoming edge's update.

Memoizing them removes one third of the FFT work per round (9C→6C in
Table II).  The paper notes this was impractical on GPUs for memory
reasons but is natural on CPUs with large RAM.

The cache is a thread-safe per-round store keyed by (round, kind, name).
``invalidate_round`` drops everything from previous rounds, mirroring
ZNN's behaviour where memoized spectra live exactly one forward/backward
/update cycle.  Statistics (computed vs reused) feed the memoization
benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Tuple

import numpy as np

from repro.observability.metrics import get_registry

__all__ = ["CacheStats", "TransformCache"]


@dataclass
class CacheStats:
    """Counters for memoization effectiveness."""

    computed: int = 0
    reused: int = 0
    evicted: int = 0

    @property
    def total_requests(self) -> int:
        return self.computed + self.reused

    @property
    def reuse_fraction(self) -> float:
        total = self.total_requests
        return self.reused / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "computed": self.computed,
            "reused": self.reused,
            "evicted": self.evicted,
            "reuse_fraction": self.reuse_fraction,
        }


class TransformCache:
    """Thread-safe memoization store for FFT spectra.

    Parameters
    ----------
    enabled:
        When False the cache degenerates to always-compute (the plain
        "FFT-based" column of Table II); statistics are still gathered
        so the two modes can be compared.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._store: Dict[Tuple[Hashable, ...], np.ndarray] = {}
        self._round = 0
        self._bytes = 0
        self.stats = CacheStats()
        reg = get_registry()
        self._m_hit = reg.counter("fft_cache.hit")
        self._m_miss = reg.counter("fft_cache.miss")
        self._m_evicted = reg.counter("fft_cache.evicted")
        self._m_bytes = reg.gauge("fft_cache.bytes")
        self._m_entries = reg.gauge("fft_cache.entries")

    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        """Current training round the cache is scoped to."""
        return self._round

    def next_round(self) -> int:
        """Advance to the next training round, evicting all spectra.

        ZNN's memoized spectra are only valid within one forward/
        backward/update cycle: kernels change at the update, images
        change with the next sample.
        """
        with self._lock:
            evicted = len(self._store)
            self.stats.evicted += evicted
            self._store.clear()
            self._bytes = 0
            self._round += 1
            if evicted:
                self._m_evicted.inc(evicted)
            self._m_bytes.set(0)
            self._m_entries.set(0)
            return self._round

    def invalidate(self, kind: str, name: Hashable) -> None:
        """Drop a single entry (e.g. a kernel spectrum after its update)."""
        with self._lock:
            dropped = self._store.pop((self._round, kind, name), None)
            if dropped is not None:
                self._bytes -= dropped.nbytes
                self._m_evicted.inc()
                self._m_bytes.set(self._bytes)
                self._m_entries.set(len(self._store))

    def get_or_compute(self, kind: str, name: Hashable,
                       compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached spectrum for (kind, name), computing at most
        once per round.

        The computation runs *outside* the lock; if two threads race on
        the same key both compute but only one result is stored — the
        spectra are deterministic so either is correct.  This trades a
        rare duplicated FFT for never holding the lock during an FFT,
        in the same spirit as the paper's wait-free summation.
        """
        key = (self._round, kind, name)
        if self.enabled:
            with self._lock:
                cached = self._store.get(key)
            if cached is not None:
                with self._lock:
                    self.stats.reused += 1
                self._m_hit.inc()
                return cached
        value = compute()
        with self._lock:
            self.stats.computed += 1
            if self.enabled:
                if key not in self._store:
                    self._store[key] = value
                    self._bytes += value.nbytes
                    self._m_bytes.set(self._bytes)
                    self._m_entries.set(len(self._store))
                value = self._store[key]
        self._m_miss.inc()
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TransformCache(enabled={self.enabled}, round={self._round}, "
                f"entries={len(self)}, stats={self.stats.snapshot()})")
