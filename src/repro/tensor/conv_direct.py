"""Direct (spatial-domain) 3D convolution and correlation, with sparsity.

This is the "Direct" column of Table II in the paper.  All functions
operate on 3D float arrays; 2D and 1D inputs are promoted to 3D with
leading singleton axes.

Conventions
-----------
*Correlation* is the un-flipped inner product used throughout modern
ConvNet code:

    corr_valid(I, K)[x] = sum_u I[x + s*u] * K[u]

*Convolution* is the textbook (MATLAB ``conv``) operation — correlation
with the kernel reflected along all three dimensions.  The paper's
forward pass performs a *valid convolution* and its backward pass a
*full convolution* with the reflected kernel (Section III-A); both are
expressible in either vocabulary and we provide both.

*Sparsity* ``s`` (Section II) dilates the kernel: only every s-th voxel
within the sliding window enters the linear combination, so a kernel of
size ``k`` has an effective footprint of ``(k-1)*s + 1`` voxels per
dimension.  Sparse convolution is what makes max-filtering ConvNets
equivalent to sliding-window max-pooling ConvNets (Fig 2).

Implementation notes (per the HPC guides): the forward-path
correlations accumulate one kernel tap at a time over strided views of
the image, in a fixed C order over the taps.  Each tap is a fused
scalar-multiply/add over a contiguous block, so the heavy loops still
run in compiled ufunc code — but, unlike a BLAS ``tensordot``
contraction, the floating-point reduction order never depends on the
image extent.  That makes direct convolution *bitwise translation
covariant*: a voxel computed inside a small tile equals the same voxel
computed inside the whole volume, bit for bit, which the serving tiler
relies on to stitch seam-free dense output.  (BLAS GEMV reassociates
the sum differently depending on the number of rows, so tensordot-based
contraction is only covariant up to ~1 ulp.)  The tap accumulation also
never materialises the ``out_shape + kernel_shape`` window copy that a
tensordot contraction would.  The kernel-gradient path keeps the
tensordot form: its output is kernel-sized, so the window tensor is
small and no covariance property is required of it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.utils.shapes import (
    as_shape3,
    effective_kernel_shape,
    full_conv_shape,
    valid_conv_shape,
    voxels,
)
from repro.utils.validation import check_array3

__all__ = [
    "correlate_valid",
    "correlate_full",
    "convolve_valid",
    "convolve_full",
    "conv_backward_input",
    "conv_kernel_gradient",
    "direct_pass_cost",
    "flip3",
    "dilate_kernel",
]


def direct_pass_cost(image_shape: int | Sequence[int],
                     kernel_shape: int | Sequence[int],
                     sparsity: int | Sequence[int] = 1) -> dict:
    """Analytic cost annotation of one direct conv pass at these shapes.

    ``flops`` is the Table II count ``n'^3 * k^3`` (every pass — valid
    forward, full backward, kernel gradient — touches each
    (output-voxel, kernel-tap) pair once).  ``bytes`` follows the
    tap-accumulation structure of :func:`_accumulate_taps`: the output
    block is streamed once per kernel tap plus one final write, in
    float64.  Consumed by :mod:`repro.observability.profile` to turn
    measured per-edge timings into achieved FLOP/s.
    """
    from repro.pram.costs import direct_conv_task_cost

    k = voxels(kernel_shape)
    out = voxels(valid_conv_shape(image_shape, kernel_shape, sparsity))
    return {
        "flops": direct_conv_task_cost(image_shape, kernel_shape,
                                       sparsity),
        "bytes": 8.0 * (k * out + out),
    }


def flip3(kernel: np.ndarray) -> np.ndarray:
    """Reflect a 3D kernel along all three dimensions."""
    return kernel[::-1, ::-1, ::-1]


def dilate_kernel(kernel: np.ndarray, sparsity: int | Sequence[int]) -> np.ndarray:
    """Zero-stuff *kernel* so taps sit every s-th voxel (effective footprint).

    Used by the FFT path; the direct path subsamples the window view
    instead and never materialises the dilated kernel.
    """
    k = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    if s == (1, 1, 1):
        return k
    eff = effective_kernel_shape(k.shape, s)
    out = np.zeros(eff, dtype=k.dtype)
    out[:: s[0], :: s[1], :: s[2]] = k
    return out


def _accumulate_taps(image: np.ndarray, kernel: np.ndarray,
                     sparsity: tuple[int, int, int],
                     out_shape: tuple[int, int, int]) -> np.ndarray:
    """Correlate by accumulating one kernel tap at a time, in C order.

    ``out = sum_u kernel[u] * image[s*u : s*u + out_shape]`` with the
    sum taken tap by tap.  The reduction order is a function of the
    kernel shape alone — never of the image extent or the voxel's
    position — so the result is bitwise identical whether a voxel is
    evaluated inside a small tile or a whole volume.
    """
    o0, o1, o2 = out_shape
    s0, s1, s2 = sparsity
    out = np.zeros(out_shape, dtype=np.result_type(image, kernel))
    tap = np.empty(out_shape, dtype=out.dtype)
    for kz in range(kernel.shape[0]):
        z = kz * s0
        for ky in range(kernel.shape[1]):
            y = ky * s1
            for kx in range(kernel.shape[2]):
                x = kx * s2
                block = image[z:z + o0, y:y + o1, x:x + o2]
                np.multiply(block, kernel[kz, ky, kx], out=tap)
                out += tap
    return out


def correlate_valid(image: np.ndarray, kernel: np.ndarray,
                    sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Valid sparse correlation: output shape ``n - (k-1)*s`` per dim."""
    img = check_array3(image, "image")
    ker = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    out_shape = valid_conv_shape(img.shape, ker.shape, s)
    return _accumulate_taps(img, ker, s, out_shape)


def convolve_valid(image: np.ndarray, kernel: np.ndarray,
                   sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Valid sparse convolution (kernel reflected): the paper's forward op."""
    ker = check_array3(kernel, "kernel")
    return correlate_valid(image, flip3(ker), sparsity)


def _pad_full(image: np.ndarray, kernel_shape: tuple[int, int, int],
              sparsity: tuple[int, int, int]) -> np.ndarray:
    eff = effective_kernel_shape(kernel_shape, sparsity)
    pad = [(e - 1, e - 1) for e in eff]
    return np.pad(image, pad, mode="constant")


def correlate_full(image: np.ndarray, kernel: np.ndarray,
                   sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Full sparse correlation: output shape ``n + (k-1)*s`` per dim."""
    img = check_array3(image, "image")
    ker = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    out_shape = full_conv_shape(img.shape, ker.shape, s)
    padded = _pad_full(img, ker.shape, s)
    return _accumulate_taps(padded, ker, s, out_shape)


def convolve_full(image: np.ndarray, kernel: np.ndarray,
                  sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Full sparse convolution (kernel reflected): the paper's backward op."""
    ker = check_array3(kernel, "kernel")
    return correlate_full(image, flip3(ker), sparsity)


def conv_backward_input(grad_output: np.ndarray, kernel: np.ndarray,
                        sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Gradient w.r.t. the input of ``correlate_valid(I, K, s)``.

    Mathematically a full convolution of the output gradient with the
    (un-flipped) kernel — exactly the paper's "Convolution Jacobian":
    the kernel reflected along all three dimensions, full convolution.
    Output shape grows back to the forward input shape.
    """
    return convolve_full(grad_output, kernel, sparsity)


def conv_kernel_gradient(image: np.ndarray, grad_output: np.ndarray,
                         sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Gradient w.r.t. the kernel of ``correlate_valid(I, K, s)``.

    ``dK[u] = sum_x I[x + s*u] * dO[x]`` — a valid correlation of the
    forward input with the backward image, sampled at the kernel's
    dilated tap positions, yielding an image the same size as the kernel
    (Section III-B "Kernel update").
    """
    img = check_array3(image, "image")
    go = check_array3(grad_output, "grad_output")
    s = as_shape3(sparsity, name="sparsity")
    # Windows the size of the output gradient, one per dilated lag; then
    # subsample lags by the sparsity to land on the kernel taps.
    view = sliding_window_view(img, go.shape)
    lags = view[:: s[0], :: s[1], :: s[2]]
    return np.tensordot(lags, go, axes=3)
