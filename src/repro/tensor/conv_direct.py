"""Direct (spatial-domain) 3D convolution and correlation, with sparsity.

This is the "Direct" column of Table II in the paper.  All functions
operate on 3D float arrays; 2D and 1D inputs are promoted to 3D with
leading singleton axes.

Conventions
-----------
*Correlation* is the un-flipped inner product used throughout modern
ConvNet code:

    corr_valid(I, K)[x] = sum_u I[x + s*u] * K[u]

*Convolution* is the textbook (MATLAB ``conv``) operation — correlation
with the kernel reflected along all three dimensions.  The paper's
forward pass performs a *valid convolution* and its backward pass a
*full convolution* with the reflected kernel (Section III-A); both are
expressible in either vocabulary and we provide both.

*Sparsity* ``s`` (Section II) dilates the kernel: only every s-th voxel
within the sliding window enters the linear combination, so a kernel of
size ``k`` has an effective footprint of ``(k-1)*s + 1`` voxels per
dimension.  Sparse convolution is what makes max-filtering ConvNets
equivalent to sliding-window max-pooling ConvNets (Fig 2).

Implementation notes (per the HPC guides): the sliding windows are
zero-copy strided views (``sliding_window_view``) subsampled inside the
window for dilation, and the contraction is a single ``tensordot`` so
the heavy loop runs in compiled BLAS code, touching memory contiguously.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.utils.shapes import (
    as_shape3,
    effective_kernel_shape,
    full_conv_shape,
    valid_conv_shape,
)
from repro.utils.validation import check_array3

__all__ = [
    "correlate_valid",
    "correlate_full",
    "convolve_valid",
    "convolve_full",
    "conv_backward_input",
    "conv_kernel_gradient",
    "flip3",
    "dilate_kernel",
]


def flip3(kernel: np.ndarray) -> np.ndarray:
    """Reflect a 3D kernel along all three dimensions."""
    return kernel[::-1, ::-1, ::-1]


def dilate_kernel(kernel: np.ndarray, sparsity: int | Sequence[int]) -> np.ndarray:
    """Zero-stuff *kernel* so taps sit every s-th voxel (effective footprint).

    Used by the FFT path; the direct path subsamples the window view
    instead and never materialises the dilated kernel.
    """
    k = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    if s == (1, 1, 1):
        return k
    eff = effective_kernel_shape(k.shape, s)
    out = np.zeros(eff, dtype=k.dtype)
    out[:: s[0], :: s[1], :: s[2]] = k
    return out


def _windows(image: np.ndarray, kernel_shape: tuple[int, int, int],
             sparsity: tuple[int, int, int]) -> np.ndarray:
    """Zero-copy view of all sliding windows, dilation-subsampled.

    Returns an array of shape ``out_shape + kernel_shape`` where
    ``out_shape = n - (k-1)*s`` per dimension.
    """
    eff = effective_kernel_shape(kernel_shape, sparsity)
    view = sliding_window_view(image, eff)
    return view[..., :: sparsity[0], :: sparsity[1], :: sparsity[2]]


def correlate_valid(image: np.ndarray, kernel: np.ndarray,
                    sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Valid sparse correlation: output shape ``n - (k-1)*s`` per dim."""
    img = check_array3(image, "image")
    ker = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    valid_conv_shape(img.shape, ker.shape, s)  # shape check
    win = _windows(img, ker.shape, s)
    return np.tensordot(win, ker, axes=3)


def convolve_valid(image: np.ndarray, kernel: np.ndarray,
                   sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Valid sparse convolution (kernel reflected): the paper's forward op."""
    ker = check_array3(kernel, "kernel")
    return correlate_valid(image, flip3(ker), sparsity)


def _pad_full(image: np.ndarray, kernel_shape: tuple[int, int, int],
              sparsity: tuple[int, int, int]) -> np.ndarray:
    eff = effective_kernel_shape(kernel_shape, sparsity)
    pad = [(e - 1, e - 1) for e in eff]
    return np.pad(image, pad, mode="constant")


def correlate_full(image: np.ndarray, kernel: np.ndarray,
                   sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Full sparse correlation: output shape ``n + (k-1)*s`` per dim."""
    img = check_array3(image, "image")
    ker = check_array3(kernel, "kernel")
    s = as_shape3(sparsity, name="sparsity")
    full_conv_shape(img.shape, ker.shape, s)  # shape check
    padded = _pad_full(img, ker.shape, s)
    win = _windows(padded, ker.shape, s)
    return np.tensordot(win, ker, axes=3)


def convolve_full(image: np.ndarray, kernel: np.ndarray,
                  sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Full sparse convolution (kernel reflected): the paper's backward op."""
    ker = check_array3(kernel, "kernel")
    return correlate_full(image, flip3(ker), sparsity)


def conv_backward_input(grad_output: np.ndarray, kernel: np.ndarray,
                        sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Gradient w.r.t. the input of ``correlate_valid(I, K, s)``.

    Mathematically a full convolution of the output gradient with the
    (un-flipped) kernel — exactly the paper's "Convolution Jacobian":
    the kernel reflected along all three dimensions, full convolution.
    Output shape grows back to the forward input shape.
    """
    return convolve_full(grad_output, kernel, sparsity)


def conv_kernel_gradient(image: np.ndarray, grad_output: np.ndarray,
                         sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """Gradient w.r.t. the kernel of ``correlate_valid(I, K, s)``.

    ``dK[u] = sum_x I[x + s*u] * dO[x]`` — a valid correlation of the
    forward input with the backward image, sampled at the kernel's
    dilated tap positions, yielding an image the same size as the kernel
    (Section III-B "Kernel update").
    """
    img = check_array3(image, "image")
    go = check_array3(grad_output, "grad_output")
    s = as_shape3(sparsity, name="sparsity")
    # Windows the size of the output gradient, one per dilated lag; then
    # subsample lags by the sparsity to land on the kernel taps.
    view = sliding_window_view(img, go.shape)
    lags = view[:: s[0], :: s[1], :: s[2]]
    return np.tensordot(lags, go, axes=3)
