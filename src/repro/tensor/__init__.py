"""Tensor-operation substrate: direct & FFT convolution, pooling,
max-filtering, transfer functions, FFT memoization."""

from repro.tensor.conv_direct import (
    conv_backward_input,
    conv_kernel_gradient,
    convolve_full,
    convolve_valid,
    correlate_full,
    correlate_valid,
    dilate_kernel,
    flip3,
)
from repro.tensor.conv_fft import (
    FftConvPlan,
    fft_conv_backward_input,
    fft_conv_kernel_gradient,
    fft_convolve_full,
    fft_correlate_valid,
)
from repro.tensor.fft_cache import CacheStats, TransformCache
from repro.tensor.filtering import (
    max_filter_1d_heap,
    max_filter_backward,
    max_filter_forward,
    max_filter_separable,
)
from repro.tensor.pooling import max_pool_backward, max_pool_forward
from repro.tensor.transfer import (
    LINEAR,
    LOGISTIC,
    RELU,
    TANH,
    TRANSFER_FUNCTIONS,
    TransferFunction,
    get_transfer,
)

__all__ = [
    "conv_backward_input",
    "conv_kernel_gradient",
    "convolve_full",
    "convolve_valid",
    "correlate_full",
    "correlate_valid",
    "dilate_kernel",
    "flip3",
    "FftConvPlan",
    "fft_conv_backward_input",
    "fft_conv_kernel_gradient",
    "fft_convolve_full",
    "fft_correlate_valid",
    "CacheStats",
    "TransformCache",
    "max_filter_1d_heap",
    "max_filter_backward",
    "max_filter_forward",
    "max_filter_separable",
    "max_pool_backward",
    "max_pool_forward",
    "LINEAR",
    "LOGISTIC",
    "RELU",
    "TANH",
    "TRANSFER_FUNCTIONS",
    "TransferFunction",
    "get_transfer",
]
