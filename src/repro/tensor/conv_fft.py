"""FFT-based 3D convolution — the "FFT-based" columns of Table II.

All three passes of a convolutional edge are computed with real FFTs of
one common *transform size*: the layer's input image size ``n``.  With a
single cached spectrum per kernel (the un-flipped, dilated kernel,
zero-padded to ``n``) the passes become pointwise spectral products:

==========  ==========================================  ================
pass        spectral form                               spatial result
==========  ==========================================  ================
forward     ``conj(FK) * FI``                           head-crop to n'
backward    ``FK * FdO``                                exactly n
update      ``conj(FdO) * FI``                          head-crop to k_eff,
                                                        subsample by s
==========  ==========================================  ================

where ``FI``/``FdO``/``FK`` are size-``n`` rfftn spectra of the forward
input image, the backward (gradient) image and the kernel.  Exactness of
the size-``n`` circular transforms is argued in :mod:`repro.tensor.fourier`
and property-tested against the direct method.

The plan object is the unit the autotuner (Section IV) selects per layer,
and the spectra are what :class:`repro.tensor.fft_cache.TransformCache`
memoizes across passes to realise the "(Memoized)" column of Table II.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.resilience.faults import active_plan
from repro.tensor.conv_direct import dilate_kernel
from repro.tensor.fourier import (
    crop_head,
    fast_transform_shape,
    forward_transform,
    inverse_transform,
)
from repro.utils.shapes import (
    Shape3,
    as_shape3,
    effective_kernel_shape,
    full_conv_shape,
    valid_conv_shape,
)
from repro.utils.validation import check_array3

__all__ = [
    "fft_correlate_valid",
    "fft_convolve_full",
    "fft_conv_backward_input",
    "fft_conv_kernel_gradient",
    "FftConvPlan",
]


# ---------------------------------------------------------------------------
# Standalone one-shot functions (used for testing and by the autotuner's
# single-convolution benchmarks).
# ---------------------------------------------------------------------------

def fft_correlate_valid(image: np.ndarray, kernel: np.ndarray,
                        sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """FFT equivalent of :func:`repro.tensor.conv_direct.correlate_valid`."""
    plan = FftConvPlan(check_array3(image, "image").shape,
                       check_array3(kernel, "kernel").shape, sparsity)
    return plan.forward(plan.image_spectrum(image), plan.kernel_spectrum(kernel))


def fft_conv_backward_input(grad_output: np.ndarray, kernel: np.ndarray,
                            sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """FFT equivalent of :func:`repro.tensor.conv_direct.conv_backward_input`."""
    go = check_array3(grad_output, "grad_output")
    ker = check_array3(kernel, "kernel")
    image_shape = full_conv_shape(go.shape, ker.shape, sparsity)
    plan = FftConvPlan(image_shape, ker.shape, sparsity)
    return plan.backward(plan.grad_spectrum(go), plan.kernel_spectrum(kernel))


def fft_convolve_full(image: np.ndarray, kernel: np.ndarray,
                      sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """FFT full convolution (alias of the backward-input computation)."""
    return fft_conv_backward_input(image, kernel, sparsity)


def fft_conv_kernel_gradient(image: np.ndarray, grad_output: np.ndarray,
                             sparsity: int | Sequence[int] = 1) -> np.ndarray:
    """FFT equivalent of :func:`repro.tensor.conv_direct.conv_kernel_gradient`."""
    img = check_array3(image, "image")
    go = check_array3(grad_output, "grad_output")
    eff = tuple(i - o + 1 for i, o in zip(img.shape, go.shape))
    s = as_shape3(sparsity, name="sparsity")
    k = tuple((e - 1) // sd + 1 for e, sd in zip(eff, s))
    plan = FftConvPlan(img.shape, k, s)
    return plan.kernel_gradient(plan.image_spectrum(img), plan.grad_spectrum(go))


# ---------------------------------------------------------------------------
# Per-layer plan
# ---------------------------------------------------------------------------

class FftConvPlan:
    """Per-edge/per-layer FFT convolution plan at a fixed transform size.

    Parameters
    ----------
    image_shape:
        Shape of the layer's *input* images (the common transform size n).
    kernel_shape:
        Shape of the (undilated) kernels.
    sparsity:
        Kernel dilation factor(s) — Section II "sparse convolution".
    """

    def __init__(self, image_shape: int | Sequence[int],
                 kernel_shape: int | Sequence[int],
                 sparsity: int | Sequence[int] = 1,
                 fast_sizes: bool = False) -> None:
        self.image_shape: Shape3 = as_shape3(image_shape, name="image_shape")
        self.kernel_shape: Shape3 = as_shape3(kernel_shape, name="kernel_shape")
        self.sparsity: Shape3 = as_shape3(sparsity, name="sparsity")
        self.effective_kernel_shape: Shape3 = effective_kernel_shape(
            self.kernel_shape, self.sparsity)
        self.output_shape: Shape3 = valid_conv_shape(
            self.image_shape, self.kernel_shape, self.sparsity)
        # Any transform size >= the image size is exact for all three
        # passes; padding up to 5-smooth sizes buys FFT speed.
        self.transform_shape: Shape3 = (
            fast_transform_shape(self.image_shape) if fast_sizes
            else self.image_shape)

    # -- spectra -----------------------------------------------------------

    def image_spectrum(self, image: np.ndarray) -> np.ndarray:
        """rfftn of a forward input image at the transform size."""
        img = check_array3(image, "image")
        if img.shape != self.image_shape:
            raise ValueError(f"image shape {img.shape} != plan {self.image_shape}")
        return forward_transform(img, self.transform_shape)

    def grad_spectrum(self, grad_output: np.ndarray) -> np.ndarray:
        """rfftn of a backward (gradient) image, zero-padded to the
        transform size."""
        go = check_array3(grad_output, "grad_output")
        if go.shape != self.output_shape:
            raise ValueError(
                f"grad_output shape {go.shape} != plan output {self.output_shape}")
        return forward_transform(go, self.transform_shape)

    def kernel_spectrum(self, kernel: np.ndarray) -> np.ndarray:
        """rfftn of the dilated (un-flipped) kernel, zero-padded to the
        transform size.  This single spectrum serves forward *and*
        backward passes — the reuse the memoized column of Table II
        counts on."""
        ker = check_array3(kernel, "kernel")
        if ker.shape != self.kernel_shape:
            raise ValueError(
                f"kernel shape {ker.shape} != plan {self.kernel_shape}")
        return forward_transform(dilate_kernel(ker, self.sparsity),
                                 self.transform_shape)

    # -- spectral products (the per-edge task bodies) ------------------------

    def forward_product(self, image_spec: np.ndarray,
                        kernel_spec: np.ndarray) -> np.ndarray:
        """Spectrum of the valid correlation (to be node-summed, then
        finalised with :meth:`finalize_forward`)."""
        fault = active_plan()
        if fault is not None:
            fault.check("fft", "fft:forward_product")
        return np.conj(kernel_spec) * image_spec

    def backward_product(self, grad_spec: np.ndarray,
                         kernel_spec: np.ndarray) -> np.ndarray:
        """Spectrum of the full convolution of the output gradient."""
        fault = active_plan()
        if fault is not None:
            fault.check("fft", "fft:backward_product")
        return kernel_spec * grad_spec

    def update_product(self, image_spec: np.ndarray,
                       grad_spec: np.ndarray) -> np.ndarray:
        """Spectrum whose inverse holds the kernel gradient lags."""
        fault = active_plan()
        if fault is not None:
            fault.check("fft", "fft:update_product")
        return np.conj(grad_spec) * image_spec

    # -- finalisers (inverse transform + crop), applied once per node sum ----

    def finalize_forward(self, spectrum_sum: np.ndarray) -> np.ndarray:
        spatial = inverse_transform(spectrum_sum, self.transform_shape)
        return crop_head(spatial, self.output_shape)

    def finalize_backward(self, spectrum_sum: np.ndarray) -> np.ndarray:
        spatial = inverse_transform(spectrum_sum, self.transform_shape)
        return crop_head(spatial, self.image_shape)

    def finalize_update(self, spectrum: np.ndarray) -> np.ndarray:
        spatial = inverse_transform(spectrum, self.transform_shape)
        lags = crop_head(spatial, self.effective_kernel_shape)
        s = self.sparsity
        return np.ascontiguousarray(lags[:: s[0], :: s[1], :: s[2]])

    # -- convenience end-to-end passes ---------------------------------------

    def forward(self, image_spec: np.ndarray,
                kernel_spec: np.ndarray) -> np.ndarray:
        """Valid correlation of one image with one kernel."""
        return self.finalize_forward(self.forward_product(image_spec, kernel_spec))

    def backward(self, grad_spec: np.ndarray,
                 kernel_spec: np.ndarray) -> np.ndarray:
        """Input gradient (full convolution) for one edge."""
        return self.finalize_backward(self.backward_product(grad_spec, kernel_spec))

    def kernel_gradient(self, image_spec: np.ndarray,
                        grad_spec: np.ndarray) -> np.ndarray:
        """Kernel gradient for one edge."""
        return self.finalize_update(self.update_product(image_spec, grad_spec))

    # -- introspection --------------------------------------------------------

    def pass_cost(self) -> dict:
        """Analytic cost annotation of one FFT conv pass under this plan.

        ``flops`` charges one size-``transform_shape`` FFT plus the
        pointwise spectral product (Table II's "FFT-based" column at
        this plan's actual transform size, which may exceed the image
        when ``fast_sizes`` padded it).  The memoized image/gradient
        spectra are computed once per *node* and shared by its edges,
        so the per-edge figure charges the product plus one
        kernel-or-finalise transform — matching what a per-edge timer
        brackets.  ``bytes`` counts the float64 spectrum traffic of
        the pass: two spectrum reads, the product write and the
        inverse-transform read.
        """
        from repro.pram.costs import fft_cost, pointwise_product_cost

        n = 1
        for extent in self.transform_shape:
            n *= extent
        return {
            "flops": fft_cost(self.transform_shape)
            + pointwise_product_cost(self.transform_shape),
            "bytes": 8.0 * 4 * n,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FftConvPlan(image={self.image_shape}, "
                f"kernel={self.kernel_shape}, sparsity={self.sparsity})")
