"""Ablation — 5-smooth FFT transform padding.

ZNN leans on MKL, which pads transforms to fast lengths internally; our
numpy path exposes the same trick as ``FftConvPlan(fast_sizes=True)``.
Awkward (prime-ish) image sizes show the win; already-smooth sizes are
untouched.  Results are identical either way (property-tested in
``tests/tensor/test_fourier.py``); this bench measures the time and
verifies numerical agreement once more end-to-end.
"""

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.tensor.conv_fft import FftConvPlan
from repro.tensor.fourier import next_fast_len

SIZES = (31, 37, 41, 53)  # awkward transform lengths
KERNEL = 5


def triple_pass(plan, img, ker, grad):
    fi = plan.image_spectrum(img)
    fk = plan.kernel_spectrum(ker)
    fg = plan.grad_spectrum(grad)
    plan.forward(fi, fk)
    plan.backward(fg, fk)
    plan.kernel_gradient(fi, fg)


def timed(plan, n, repeats=3):
    import time

    rng = np.random.default_rng(0)
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((KERNEL,) * 3)
    grad = rng.standard_normal(plan.output_shape)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        triple_pass(plan, img, ker, grad)
        best = min(best, time.perf_counter() - t0)
    return best


def test_print_fast_size_table():
    rows = []
    for n in SIZES:
        plain = FftConvPlan((n,) * 3, KERNEL)
        fast = FftConvPlan((n,) * 3, KERNEL, fast_sizes=True)
        t_plain = timed(plain, n)
        t_fast = timed(fast, n)
        rows.append([f"{n}^3", f"{next_fast_len(n)}^3", fmt(t_plain, 3),
                     fmt(t_fast, 3), fmt(t_plain / t_fast, 3)])
    print_table("FFT transform padding to 5-smooth sizes "
                "(fwd+bwd+update triple)",
                ["image", "padded to", "plain s", "fast s", "speedup"],
                rows)


def test_results_identical():
    rng = np.random.default_rng(1)
    n = 41
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((KERNEL,) * 3)
    plain = FftConvPlan((n,) * 3, KERNEL)
    fast = FftConvPlan((n,) * 3, KERNEL, fast_sizes=True)
    a = plain.forward(plain.image_spectrum(img), plain.kernel_spectrum(ker))
    b = fast.forward(fast.image_spectrum(img), fast.kernel_spectrum(ker))
    np.testing.assert_allclose(a, b, atol=1e-10)


def test_smooth_sizes_not_padded():
    plan = FftConvPlan((32, 32, 32), KERNEL, fast_sizes=True)
    assert plan.transform_shape == (32, 32, 32)


def test_bench_plain_41(benchmark):
    plan = FftConvPlan((41, 41, 41), KERNEL)
    benchmark(timed, plan, 41, 1)


def test_bench_fast_41(benchmark):
    plan = FftConvPlan((41, 41, 41), KERNEL, fast_sizes=True)
    benchmark(timed, plan, 41, 1)
