"""Fig 5 — achieved speedup vs worker threads, 2D and 3D networks, on
the four Table V machines (discrete-event simulation; see DESIGN.md).

Prints one panel per (machine, dims): speedup against thread count for
several widths, and asserts the Section VIII shape claims:

* near-linear ramp while threads <= cores,
* continued but slower gains through the hardware-thread range,
* wider networks closer to the ceiling.

Default grid is trimmed (2 machines x 3 widths); ``ZNN_BENCH_FULL=1``
sweeps all four machines and the paper's twelve widths.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.simulate import (
    MACHINES,
    PAPER_WIDTHS,
    default_thread_counts,
    get_machine,
    paper_task_graph,
    simulate_schedule,
)

if full_run():
    MACHINE_KEYS = tuple(MACHINES)
    WIDTHS = PAPER_WIDTHS
    DIMS = (2, 3)
else:
    MACHINE_KEYS = ("xeon-18", "xeon-phi")
    WIDTHS = (5, 20, 60)
    DIMS = (3,)

# Table V accompanies Fig 5 in the paper's evaluation.


def test_print_table5():
    rows = [[key, m.name, m.cores, m.threads, f"{m.ghz} GHz"]
            for key, m in MACHINES.items()]
    print_table("Table V — machines", ["key", "name", "cores",
                                       "threads", "freq"], rows)
    assert len(rows) == 4


@pytest.mark.parametrize("machine_key", MACHINE_KEYS)
@pytest.mark.parametrize("dims", DIMS)
def test_fig5_panel(machine_key, dims):
    machine = get_machine(machine_key)
    threads = default_thread_counts(machine)
    rows = []
    curves = {}
    for width in WIDTHS:
        tg = paper_task_graph(dims, width)
        curve = [simulate_schedule(tg, machine, w).speedup for w in threads]
        curves[width] = dict(zip(threads, curve))
        rows.append([width] + [fmt(s, 3) for s in curve])
    print_table(f"Fig 5 — {dims}D on {machine.name}",
                ["width"] + [f"W={w}" for w in threads], rows)

    wide = curves[max(WIDTHS)]
    # Near-linear ramp to the core count for wide networks.
    assert wide[machine.cores] > 0.8 * machine.cores
    # Slower but positive gains through the hardware-thread range.
    assert wide[machine.threads] > wide[machine.cores]
    gain = wide[machine.threads] - wide[machine.cores]
    assert gain < machine.threads - machine.cores
    # Wider networks do at least as well as narrow ones at full threads.
    assert wide[machine.threads] >= curves[min(WIDTHS)][machine.threads]


def test_bench_simulate_one_round(benchmark):
    tg = paper_task_graph(3, 20)
    machine = get_machine("xeon-18")
    benchmark(simulate_schedule, tg, machine, machine.threads)
