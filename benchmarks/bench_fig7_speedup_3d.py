"""Fig 7 — maximal achieved speedup vs network width, 3D networks
(direct convolution), all four machines.

Shape claims as Fig 6; additionally the abstract's headline — over 90x
speedup on the Xeon Phi — must hold for wide networks.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.simulate import MACHINES, get_machine, max_speedup_vs_width

WIDTHS = (5, 10, 20, 40, 80) if not full_run() else \
    (5, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100, 120)
MACHINE_KEYS = ("xeon-18", "xeon-phi") if not full_run() else tuple(MACHINES)


@pytest.mark.parametrize("machine_key", MACHINE_KEYS)
def test_fig7_curve(machine_key):
    machine = get_machine(machine_key)
    curve = max_speedup_vs_width(3, WIDTHS, machine)
    print_table(f"Fig 7 — 3D max speedup vs width on {machine.name}",
                ["width", "speedup"],
                [[w, fmt(s, 4)] for w, s in curve])
    speedups = dict(curve)
    assert speedups[max(WIDTHS)] > 0.75 * machine.max_speedup()
    assert speedups[max(WIDTHS)] >= speedups[min(WIDTHS)]


def test_phi_over_90x_headline():
    """Abstract: 'ZNN can attain over 90x speedup on a many-core CPU
    (Xeon Phi Knights Corner)' — for sufficiently wide networks."""
    machine = get_machine("xeon-phi")
    speedups = dict(max_speedup_vs_width(3, (80,), machine))
    print_table("Headline check — Xeon Phi, 3D width 80",
                ["width", "speedup"], [[80, fmt(speedups[80], 4)]])
    assert speedups[80] > 90.0


def test_multicore_speedup_roughly_core_count():
    """Abstract: 'speedup roughly equal to the number of physical
    cores' on multicore Xeons."""
    for key in ("xeon-8", "xeon-18", "xeon-40"):
        machine = get_machine(key)
        s = dict(max_speedup_vs_width(3, (40,), machine))[40]
        assert machine.cores * 0.85 < s < machine.cores * 1.6


def test_bench_fig7_point(benchmark):
    machine = get_machine("xeon-18")
    benchmark(max_speedup_vs_width, 3, (20,), machine)
