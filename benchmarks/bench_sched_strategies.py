"""Section X — priority scheduling vs FIFO / LIFO / random order.

"The alternative scheduling strategies achieve noticeably lower
scalability than the one proposed in the paper for most networks."
We schedule the paper's 3D task graph on simulated machines under each
ready-queue policy and compare speedups, and also run a real training
round through the live engine with each strategy to confirm identical
results (correctness is policy-independent; only performance differs).
"""

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.core import Network, SGD
from repro.graph import build_layered_network
from repro.simulate import get_machine, paper_task_graph, simulate_schedule

POLICIES = ("priority", "fifo", "lifo", "random")
WIDTHS = (5, 20, 60) if not full_run() else (5, 10, 20, 40, 80, 120)


def test_policy_speedups():
    machine = get_machine("xeon-phi")
    rows = []
    results = {}
    for width in WIDTHS:
        tg = paper_task_graph(3, width)
        speedups = {p: simulate_schedule(tg, machine, machine.threads,
                                         policy=p).speedup
                    for p in POLICIES}
        results[width] = speedups
        rows.append([width] + [fmt(speedups[p], 4) for p in POLICIES])
    print_table(f"scheduling policies on {machine.name} (3D net)",
                ["width"] + list(POLICIES), rows)
    # The priority policy is never (meaningfully) beaten.
    for width, speedups in results.items():
        best_alt = max(speedups[p] for p in POLICIES if p != "priority")
        assert speedups["priority"] >= best_alt * 0.97


def test_all_policies_same_training_result(rng=np.random.default_rng(0)):
    x = rng.standard_normal((12, 12, 12))

    def run(scheduler):
        graph = build_layered_network("CTMCT", width=2, kernel=2, window=2)
        net = Network(graph, input_shape=(12, 12, 12), seed=3,
                      num_workers=2, scheduler=scheduler,
                      optimizer=SGD(learning_rate=0.01))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        losses = [net.train_step(x, targets) for _ in range(2)]
        net.close()
        return losses

    ref = run("priority")
    for sched in ("fifo", "lifo", "work-stealing"):
        np.testing.assert_allclose(run(sched), ref, atol=1e-8)


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_policy(benchmark, policy):
    tg = paper_task_graph(3, 10)
    machine = get_machine("xeon-18")
    benchmark(simulate_schedule, tg, machine, machine.threads, policy)
