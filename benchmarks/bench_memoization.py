"""Section IV ablation — FFT memoization.

Table II predicts memoization removes one third of the FFT work per
round (9C -> 6C).  We train the same FFT-mode network with the cache
enabled and disabled, counting actual FFT computations per round and
measuring wall time per update.
"""

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.core import Network, SGD
from repro.graph import build_layered_network


def train_rounds(memoize, rounds=3, width=4, n=18, seed=0):
    graph = build_layered_network("CTCT", width=width, kernel=3,
                                  transfer="tanh")
    net = Network(graph, input_shape=(n, n, n), conv_mode="fft",
                  memoize=memoize, seed=seed,
                  optimizer=SGD(learning_rate=1e-3))
    rng = np.random.default_rng(1)
    x = rng.standard_normal((n, n, n))
    targets = {node.name: np.zeros(node.shape)
               for node in net.output_nodes}
    import time
    t0 = time.perf_counter()
    for _ in range(rounds):
        net.train_step(x, targets)
        net.synchronize()
    elapsed = (time.perf_counter() - t0) / rounds
    computed = net.cache.stats.computed / rounds
    return elapsed, computed, net


def test_memoization_fft_counts():
    t_memo, ffts_memo, net_m = train_rounds(True)
    t_plain, ffts_plain, net_p = train_rounds(False)
    rows = [["memoized", fmt(ffts_memo, 4), fmt(t_memo, 3),
             fmt(net_m.cache.stats.reuse_fraction, 3)],
            ["plain", fmt(ffts_plain, 4), fmt(t_plain, 3), "0"]]
    print_table("FFT memoization per training round",
                ["mode", "FFT computations", "seconds/update",
                 "reuse fraction"], rows)
    # Memoization must save a substantial fraction of the transforms —
    # Table II predicts 1/3 of FFT *FLOPs*; transform-count savings for
    # this net (spectra reused across fwd/bwd/update) are even larger.
    assert ffts_memo < 0.8 * ffts_plain

    # Model cross-check: counted savings at least the modelled third.
    from repro.pram import conv_layer_costs_fft
    memo_model = conv_layer_costs_fft(4, 4, 18, memoized=True).total
    plain_model = conv_layer_costs_fft(4, 4, 18, memoized=False).total
    assert memo_model < plain_model


def test_memoization_identical_results():
    _, _, net_m = train_rounds(True, rounds=2, seed=3)
    _, _, net_p = train_rounds(False, rounds=2, seed=3)
    for name, kernel in net_m.kernels().items():
        np.testing.assert_allclose(kernel, net_p.kernels()[name],
                                   atol=1e-9)


def test_bench_memoized_round(benchmark):
    benchmark(train_rounds, True, 1)


def test_bench_plain_round(benchmark):
    benchmark(train_rounds, False, 1)
