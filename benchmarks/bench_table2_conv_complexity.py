"""Table II — complexity of a fully connected convolutional layer:
Direct vs FFT-based vs FFT-based (Memoized).

Prints the model FLOPs for the three methods per pass, and benchmarks
the real per-edge implementations (one forward + backward + update
triple) in direct and FFT mode.  The measured direct/FFT wall-time
ratio must move in the direction the FLOP model predicts as the kernel
grows.
"""

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.core import time_direct, time_fft
from repro.pram import conv_layer_costs_direct, conv_layer_costs_fft

N = 24
F = 4
KERNELS = (3, 5, 7) if not full_run() else (3, 5, 7, 9, 11)


def test_print_table2():
    rows = []
    for k in KERNELS:
        direct = conv_layer_costs_direct(F, F, N, k)
        fft = conv_layer_costs_fft(F, F, N, memoized=False)
        memo = conv_layer_costs_fft(F, F, N, memoized=True)
        rows.append([f"{k}^3", fmt(direct.total), fmt(fft.total),
                     fmt(memo.total),
                     fmt(memo.total / fft.total, 3)])
    print_table(f"Table II totals (f=f'={F}, n={N}^3)",
                ["kernel", "direct", "fft", "fft-memo", "memo/fft"], rows)
    # Memoization removes FFT work: strictly cheaper, and at most the
    # documented one-third of the FFT terms.
    fft = conv_layer_costs_fft(F, F, N, memoized=False)
    memo = conv_layer_costs_fft(F, F, N, memoized=True)
    assert memo.total < fft.total
    assert memo.total / fft.total > 2 / 3 - 0.05


def test_measured_ratio_tracks_model():
    """Wall-time direct/FFT ratio grows with kernel size like the FLOP
    ratio does (we assert monotonicity, not absolute agreement)."""
    measured = []
    modeled = []
    for k in (3, 7):
        measured.append(time_direct(N, k, repeats=2)
                        / time_fft(N, k, repeats=2))
        modeled.append(conv_layer_costs_direct(1, 1, N, k).total
                       / conv_layer_costs_fft(1, 1, N).total)
    print_table("direct/FFT ratios (measured vs FLOP model)",
                ["kernel", "measured", "model"],
                [[f"{k}^3", fmt(m), fmt(mo)]
                 for k, m, mo in zip((3, 7), measured, modeled)])
    assert measured[1] > measured[0]
    assert modeled[1] > modeled[0]


def test_bench_direct_triple(benchmark):
    benchmark(time_direct, N, 5, 1, 1)


def test_bench_fft_triple(benchmark):
    benchmark(time_fft, N, 5, 1, 1)
