"""Capacity-planning benchmark: simulated loadtests across load
multipliers, fixed fleet vs autoscaled.

Replays one flash-crowd trace through the serving simulator at 1x /
10x / 100x load, once with a fixed 2-worker fleet and once with the
hysteresis autoscaler (1-8 workers), and reports served fraction,
p99 latency and worker-seconds for each cell.  The acceptance claim
of the loadgen subsystem — at 100x the autoscaler serves a strictly
larger fraction than the fixed fleet while paying for capacity only
while the crowd lasts — is asserted, not just printed.  Results are
printed and written to ``BENCH_loadtest.json`` in the working
directory.

Everything here is the discrete-event simulator: no processes, no
wall-clock sensitivity, deterministic output.
"""

import json
import os

from _bench_utils import fmt, full_run, print_table
from repro.loadgen import (
    HysteresisPolicy,
    ServiceModel,
    SimConfig,
    build_report,
    dump_report,
    scenario_config,
    generate_trace,
    simulate_serving,
)

MULTIPLIERS = (1.0, 10.0, 100.0)
FIXED_WORKERS = 2
AUTOSCALE_MAX = 8
#: ~0.11 s service per 16^3 request: 2 workers clear ~18 req/s.
SERVICE = ServiceModel(seconds_per_voxel=2.5e-5,
                       overhead_seconds=0.01)


def _trace():
    duration = 120.0 if full_run() else 60.0
    return generate_trace(scenario_config(
        "flash-crowd", seed=7, duration=duration, base_rate=1.5,
        size_min=12, size_max=24, deadline=10.0))


def _run(trace, policy=None, control_interval=0.5):
    config = SimConfig(workers=FIXED_WORKERS, max_queue=32,
                       service=SERVICE,
                       control_interval=control_interval)
    result = simulate_serving(trace, config, policy)
    counts = {"served": 0, "shed": 0, "deadline": 0, "failed": 0}
    latencies = []
    for outcome in result.outcomes:
        counts[outcome.status] += 1
        if outcome.latency is not None:
            latencies.append(outcome.latency)
    doc = build_report(
        "sim", trace, counts, latencies,
        worker_seconds=result.worker_seconds,
        workers=(None if policy else FIXED_WORKERS),
        autoscaler=(None if policy is None else {
            "enabled": True, "min": policy.min_workers,
            "max": policy.max_workers,
            "decisions": len(result.decisions),
            "final": result.final_workers}),
        multiplier=trace.config.base_rate / 1.5)
    return doc


def test_loadtest_multiplier_sweep():
    base = _trace()
    rows = []
    results = {}
    for multiplier in MULTIPLIERS:
        trace = base.scaled(multiplier)
        # The control loop keeps its cadence *relative to the trace*
        # (same decisions per trace second), mirroring how the live
        # replay compresses deadlines but not the autoscaler clock.
        interval = 0.5 / multiplier
        fixed = _run(trace, control_interval=interval)
        scaled = _run(trace, HysteresisPolicy(
            min_workers=1, max_workers=AUTOSCALE_MAX,
            cooldown_ticks=1), control_interval=interval)
        for label, doc in (("fixed", fixed), ("autoscaled", scaled)):
            res = doc["results"]
            rows.append([
                fmt(multiplier, 4), label,
                res["submitted"],
                f"{res['served_fraction']:.3f}",
                fmt(res["latency"]["p99"], 3),
                fmt(doc["cost"]["worker_seconds"], 4),
            ])
            results[f"x{multiplier:g}_{label}"] = {
                "served_fraction": res["served_fraction"],
                "served": res["served"],
                "shed": res["shed"],
                "deadline_missed": res["deadline_missed"],
                "p99_latency": res["latency"]["p99"],
                "worker_seconds": doc["cost"]["worker_seconds"],
            }
        # Reports must stay schema-valid at every scale.
        dump_report(fixed)
        dump_report(scaled)
    print_table(
        "loadtest: fixed 2 workers vs autoscaled "
        f"1-{AUTOSCALE_MAX} (flash-crowd)",
        ["mult", "fleet", "requests", "served_frac", "p99_s",
         "worker_s"], rows)
    _emit("multiplier_sweep", results)
    # The subsystem's acceptance claim: under 100x overload the
    # autoscaler beats the fixed fleet on served fraction.
    assert results["x100_autoscaled"]["served_fraction"] \
        > results["x100_fixed"]["served_fraction"]
    # And it is not buying that with always-max capacity: at 1x it
    # pays no more than the fixed fleet.
    assert results["x1_autoscaled"]["worker_seconds"] \
        <= results["x1_fixed"]["worker_seconds"] * 1.01


def test_loadtest_determinism():
    trace = _trace().scaled(10.0)
    a = _run(trace, HysteresisPolicy(min_workers=1,
                                     max_workers=AUTOSCALE_MAX))
    b = _run(trace, HysteresisPolicy(min_workers=1,
                                     max_workers=AUTOSCALE_MAX))
    assert dump_report(a) == dump_report(b)
    _emit("determinism", {"byte_identical": True})


_DOC = {}


def _emit(key, value):
    """Accumulate results across tests into BENCH_loadtest.json."""
    _DOC[key] = value
    path = os.environ.get("REPRO_BENCH_LOADTEST_OUT",
                          "BENCH_loadtest.json")
    with open(path, "w") as fh:
        json.dump({"multipliers": list(MULTIPLIERS),
                   "fixed_workers": FIXED_WORKERS,
                   "autoscale_max": AUTOSCALE_MAX,
                   "full_run": full_run(), "results": _DOC}, fh,
                  indent=2)
        fh.write("\n")
