"""Fig 8 — ZNN (18-core CPU, FFT) vs Caffe / Caffe-cuDNN / Theano
(Titan X, direct) on 2D networks.

Kernels {10, 20, 30, 40}^2, output patches {1 … 64}^2, width 40,
sparse training.  Prints the seconds/update table (OOM = the paper's
missing bars) and asserts the regime structure: GPUs win for small
kernels, ZNN wins from 30^2 up, plain Caffe runs out of Titan X memory
at 30^2.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.baselines import (
    FIG8_KERNELS,
    FIG8_OUTPUTS,
    comparison_layers,
    fig8_comparison,
    gpu_seconds_per_update,
    GPU_FRAMEWORKS,
    znn_seconds_per_update,
)

OUTPUTS = FIG8_OUTPUTS if full_run() else (1, 4, 16, 64)
SYSTEMS = ("znn", "caffe", "caffe-cudnn", "theano")


@pytest.fixture(scope="module")
def rows():
    return fig8_comparison(kernels=FIG8_KERNELS, outputs=OUTPUTS)


def test_print_fig8(rows):
    table = []
    for r in rows:
        table.append([f"{r.kernel_size}^2", f"{r.output_size}^2"]
                     + [fmt(r.seconds.get(s), 3) for s in SYSTEMS]
                     + [r.winner()])
    print_table("Fig 8 — seconds/update, 2D, width 40 (sparse training)",
                ["kernel", "output"] + list(SYSTEMS) + ["winner"], table)
    assert len(rows) == len(FIG8_KERNELS) * len(OUTPUTS)


def test_regime_small_kernels_gpu_wins(rows):
    assert all(r.winner() != "znn" for r in rows if r.kernel_size == 10)


def test_regime_large_kernels_znn_wins(rows):
    assert all(r.winner() == "znn" for r in rows if r.kernel_size >= 30)


def test_caffe_and_theano_oom_at_30(rows):
    for r in rows:
        if r.kernel_size >= 30:
            assert r.seconds["caffe"] is None
            assert r.seconds["theano"] is None
        else:
            assert r.seconds["caffe"] is not None


def test_times_grow_with_output_patch(rows):
    for system in SYSTEMS:
        for k in FIG8_KERNELS:
            series = [r.seconds[system] for r in rows
                      if r.kernel_size == k and r.seconds[system] is not None]
            assert series == sorted(series)


def test_bench_znn_model(benchmark):
    layers = comparison_layers(2, 20, 16)
    benchmark(znn_seconds_per_update, layers)


def test_bench_gpu_model(benchmark):
    layers = comparison_layers(2, 20, 16)
    benchmark(gpu_seconds_per_update, GPU_FRAMEWORKS["caffe-cudnn"], layers)


def test_dense_training_no_contest():
    """Section IX: requiring the GPU frameworks to produce dense output
    (16 offsets in 2D, 64 in 3D) 'would have been no contest with
    ZNN'."""
    from repro.baselines import (dense_offset_count, gpu_dense_seconds,
                                 znn_dense_seconds)

    rows = []
    for dims, kernel, out, fw in ((2, 20, 8, "theano"),
                                  (3, 5, 4, "theano-3d")):
        gpu = gpu_dense_seconds(GPU_FRAMEWORKS[fw], dims, kernel, out)
        znn = znn_dense_seconds(dims, kernel, out)
        rows.append([f"{dims}D k={kernel}", dense_offset_count(dims),
                     fmt(gpu, 3), fmt(znn, 3), fmt(gpu / znn, 3)])
        assert znn < gpu
    print_table("dense training: GPU (offset replay) vs ZNN (max-filter)",
                ["config", "offsets", "gpu dense s", "znn dense s",
                 "znn advantage"], rows)
