"""Section IV — the FFT/direct crossover, measured and modelled.

The paper's claim: the crossover occurs at *smaller* kernel sizes for a
ConvNet layer than for a single convolution, because image and kernel
FFTs are shared across the layer's f*f' edges.  We print the layer-level
model crossover for several widths (it must be non-increasing in width)
and measure the single-conv wall-clock crossover on this host.
"""

import pytest

from _bench_utils import fmt, print_table
from repro.core import (
    autotune_layer,
    crossover_kernel_size,
    layer_crossover_kernel_size,
)

IMAGE = (32, 32, 32)
KS = tuple(range(2, 12))


def test_model_crossover_shrinks_with_width():
    rows = []
    crossovers = []
    for f in (1, 2, 4, 8, 16, 64):
        k = layer_crossover_kernel_size(IMAGE, KS, f, f)
        crossovers.append(k if k is not None else max(KS) + 1)
        rows.append([f, k if k is not None else f"> {max(KS)}"])
    print_table(f"layer-level FFT/direct crossover kernel (image {IMAGE})",
                ["width f=f'", "crossover k"], rows)
    assert all(crossovers[i] >= crossovers[i + 1]
               for i in range(len(crossovers) - 1))
    assert crossovers[-1] < crossovers[0] or crossovers[0] == max(KS) + 1


def test_measured_single_conv_crossover():
    k = crossover_kernel_size(IMAGE, (2, 3, 5, 7), repeats=2)
    rows = []
    for kk in (2, 3, 5, 7):
        mode, t_d, t_f = autotune_layer(IMAGE, kk, repeats=2)
        rows.append([f"{kk}^3", fmt(t_d, 3), fmt(t_f, 3), mode])
    print_table("measured single-convolution times on this host",
                ["kernel", "direct s", "fft s", "chosen"], rows)
    # numpy's strided direct conv loses to FFT quickly; the crossover
    # must exist within the sweep on any host.
    assert k is not None


def test_bench_autotune_layer(benchmark):
    benchmark(autotune_layer, (16, 16, 16), 3, 1, 1)
