"""Section IV + ZNNi part (a) — the FFT/direct crossover, measured,
modelled, and exploited per layer.

The paper's claim: the crossover occurs at *smaller* kernel sizes for a
ConvNet layer than for a single convolution, because image and kernel
FFTs are shared across the layer's f*f' edges.  We print the layer-level
model crossover for several widths (it must be non-increasing in width)
and measure the single-conv wall-clock crossover on this host.

ZNNi (arXiv:1606.05688) turns that observation into a serving plan:
pick the winning backend *per conv layer* from a measured cost model
and sweep 5-smooth patch sizes for throughput.  The specialization
benchmark profiles both single-mode variants at steady state, plans
from the resulting cost model, and asserts the specialized plan's
measured throughput is no worse than the best single-mode plan (within
a noise margin).  Everything lands in ``BENCH_znni.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.core import (
    autotune_layer,
    crossover_kernel_size,
    layer_crossover_kernel_size,
)
from repro.observability import get_profiler
from repro.serving import ModelRegistry, ModelSpec, plan_specialization

IMAGE = (32, 32, 32)
KS = tuple(range(2, 12))

#: The crossover-surface grid (image edge x layer width).
SURFACE_SIZES = (16, 24, 32, 48) + ((64,) if full_run() else ())
SURFACE_WIDTHS = (1, 2, 4, 8)

#: Layered example specs for the specialized-vs-single-mode comparison.
#: ``mixed`` uses per-layer kernels (a Python list survives only in
#: direct builder_kwargs — spec files parse "7 3" as one shape), so its
#: two conv layers sit on opposite sides of the crossover.
SERVING_SPECS = {
    "ctct-k3": ModelSpec(
        name="ctct-k3", spec="CTCT", conv_mode="direct",
        builder_kwargs={"width": 2, "kernel": 3, "transfer": "tanh"}),
    "ctct-k7-k3": ModelSpec(
        name="ctct-k7-k3", spec="CTCT", conv_mode="direct",
        builder_kwargs={"width": 2, "kernel": [7, 3], "transfer": "tanh"}),
}
SERVING_VOLUMES = ((32, 32, 32),) + (((64, 64, 64),) if full_run() else ())
#: Specialized must reach this fraction of the best single-mode
#: throughput — the planner picks from measured data, so losses beyond
#: run-to-run noise mean the cost model mispriced a layer.
NOISE_FLOOR = 0.85


def test_model_crossover_shrinks_with_width():
    rows = []
    crossovers = []
    for f in (1, 2, 4, 8, 16, 64):
        k = layer_crossover_kernel_size(IMAGE, KS, f, f)
        crossovers.append(k if k is not None else max(KS) + 1)
        rows.append([f, k if k is not None else f"> {max(KS)}"])
    print_table(f"layer-level FFT/direct crossover kernel (image {IMAGE})",
                ["width f=f'", "crossover k"], rows)
    assert all(crossovers[i] >= crossovers[i + 1]
               for i in range(len(crossovers) - 1))
    assert crossovers[-1] < crossovers[0] or crossovers[0] == max(KS) + 1


def test_crossover_surface():
    """The per-layer crossover surface over (image size, width).

    Both axes push the same way: wider layers amortise shared
    image/kernel transforms over more products, larger images raise the
    direct cost faster than the n log n transform cost — so the
    crossover kernel is non-increasing along each axis (None = no
    crossover inside the sweep, treated as past its end).
    """
    surface = []
    rows = []
    for n in SURFACE_SIZES:
        row = []
        for f in SURFACE_WIDTHS:
            k = layer_crossover_kernel_size((n, n, n), KS, f, f)
            row.append(k)
            surface.append({"image": n, "width": f, "crossover": k})
        rows.append([f"{n}^3"] + [k if k is not None else f"> {max(KS)}"
                                  for k in row])
    print_table("crossover-kernel surface (rows image, cols width f=f')",
                [""] + [str(f) for f in SURFACE_WIDTHS], rows)
    sentinel = max(KS) + 1
    grid = {(c["image"], c["width"]):
            c["crossover"] if c["crossover"] is not None else sentinel
            for c in surface}
    for n in SURFACE_SIZES:
        ks = [grid[(n, f)] for f in SURFACE_WIDTHS]
        assert all(a >= b for a, b in zip(ks, ks[1:])), (n, ks)
    for f in SURFACE_WIDTHS:
        ks = [grid[(n, f)] for n in SURFACE_SIZES]
        assert all(a >= b for a, b in zip(ks, ks[1:])), (f, ks)
    _emit("crossover_surface", surface)


def _measured_throughput(warm, volume, reps=3):
    """Best-of-*reps* voxels/second through a warm model (one untimed
    run first so transform caches and pools are steady)."""
    dense = warm.run(volume)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        dense = warm.run(volume)
        best = min(best, time.perf_counter() - t0)
    return dense.size / best, dense


@pytest.mark.parametrize("name", sorted(SERVING_SPECS))
@pytest.mark.parametrize("volume_shape", SERVING_VOLUMES,
                         ids=lambda v: f"{v[0]}^3")
def test_specialized_vs_single_mode(name, volume_shape):
    spec = SERVING_SPECS[name]
    volume = np.random.default_rng(7).standard_normal(volume_shape)
    registry = ModelRegistry(max_models=8)
    profiler = get_profiler()
    try:
        registry.register(spec)
        analytic = plan_specialization(spec, volume_shape)
        edges = [e for e, _ in analytic.conv_modes]
        single = {mode: registry.warm(name, analytic.input_tile,
                                      conv_modes={e: mode for e in edges})
                  for mode in ("direct", "fft")}
        # Profile both single-mode variants at steady state (first run
        # of each pays cache misses and is kept out of the model).
        for warm in single.values():
            warm.run(volume)
        profiler.enable()
        profiler.clear()
        for warm in single.values():
            warm.run(volume)
            warm.run(volume)
        cost_model = profiler.cost_model()
        profiler.disable()
        plan = plan_specialization(spec, volume_shape,
                                   cost_model=cost_model)
        results = {}
        rows = []
        outputs = {}
        for label, modes in (
                ("specialized", plan.conv_mode_map),
                ("direct", {e: "direct" for e in edges}),
                ("fft", {e: "fft" for e in edges})):
            warm = registry.warm(name, plan.input_tile, conv_modes=modes)
            results[label], outputs[label] = _measured_throughput(
                warm, volume)
            rows.append([label, fmt(results[label] / 1e6, 4),
                         " ".join(sorted(set(modes.values())))])
        print_table(
            f"{name} at {volume_shape[0]}^3: measured Mvox/s "
            f"(plan modes {dict(plan.layer_modes)})",
            ["variant", "Mvox/s", "conv modes"], rows)
        best_single = max(results["direct"], results["fft"])
        ratio = results["specialized"] / best_single
        _emit(f"serving:{name}:{volume_shape[0]}", {
            "volume": list(volume_shape),
            "input_tile": list(plan.input_tile),
            "layer_modes": {str(i): m for i, m in plan.layer_modes},
            "predicted_voxels_per_second": plan.predicted_voxels_per_second,
            "measured_voxels_per_second": {
                k: v for k, v in sorted(results.items())},
            "specialized_over_best_single": ratio,
        })
        # Specialization never loses: the planner chose from measured
        # rates, so up to noise it matches (mixed plans: beats) the
        # best single-mode plan.
        assert ratio >= NOISE_FLOOR, (name, volume_shape, results)
        # And it serves the same function: single-mode variants agree
        # with the specialized output to FFT/direct tolerance.
        np.testing.assert_allclose(outputs["specialized"],
                                   outputs["direct"],
                                   rtol=1e-9, atol=1e-11)
    finally:
        registry.close()


def test_measured_single_conv_crossover():
    k = crossover_kernel_size(IMAGE, (2, 3, 5, 7), repeats=2)
    rows = []
    for kk in (2, 3, 5, 7):
        mode, t_d, t_f = autotune_layer(IMAGE, kk, repeats=2)
        rows.append([f"{kk}^3", fmt(t_d, 3), fmt(t_f, 3), mode])
    print_table("measured single-convolution times on this host",
                ["kernel", "direct s", "fft s", "chosen"], rows)
    # numpy's strided direct conv loses to FFT quickly; the crossover
    # must exist within the sweep on any host.
    assert k is not None


def test_bench_autotune_layer(benchmark):
    benchmark(autotune_layer, (16, 16, 16), 3, 1, 1)


_DOC = {}


def _emit(key, value):
    """Accumulate results across tests into BENCH_znni.json."""
    _DOC[key] = value
    path = os.environ.get("REPRO_BENCH_ZNNI_OUT", "BENCH_znni.json")
    with open(path, "w") as fh:
        json.dump({"surface_sizes": list(SURFACE_SIZES),
                   "surface_widths": list(SURFACE_WIDTHS),
                   "noise_floor": NOISE_FLOOR,
                   "full_run": full_run(), "results": _DOC}, fh,
                  indent=2)
        fh.write("\n")
