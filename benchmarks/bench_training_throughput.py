"""Live-engine training throughput (Section VIII measurement protocol
on this host).

Measures real seconds/update of the paper's 3D architecture at small
widths with the serial engine and the threaded engine, using the
paper's warm-up-then-average protocol.  On a single-core container the
threaded engine cannot beat serial — the point here is the measurement
machinery and the per-configuration scaling (wall time ~ width^2 for
fully connected layers).
"""

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.core import Network, SGD, Trainer, measure_seconds_per_update
from repro.data import RandomProvider
from repro.graph import build_layered_network

WIDTHS = (2, 4) if not full_run() else (2, 4, 8)
INPUT = (24, 24, 24)


def build(width, num_workers=1):
    graph = build_layered_network("CTMCTCT", width=width, kernel=3,
                                  window=2, skip_kernels=True,
                                  transfer="tanh", output_nodes=1)
    return Network(graph, input_shape=INPUT, conv_mode="auto", seed=0,
                   num_workers=num_workers,
                   optimizer=SGD(learning_rate=1e-4))


def seconds_per_update(width, num_workers=1, rounds=3):
    net = build(width, num_workers)
    provider = RandomProvider(INPUT, net.output_nodes[0].shape, seed=1)
    s = measure_seconds_per_update(net, provider, warmup=1, rounds=rounds)
    net.close()
    return s


def test_print_throughput():
    rows = []
    for width in WIDTHS:
        serial = seconds_per_update(width, 1)
        threaded = seconds_per_update(width, 2)
        rows.append([width, fmt(serial, 3), fmt(threaded, 3)])
    print_table(f"seconds/update, 3D CTMCTCT on {INPUT} (this host)",
                ["width", "serial", "2 workers"], rows)
    assert all(float(r[1]) > 0 for r in rows)


def test_cost_scales_superlinearly_with_width():
    """Fully connected layers: work ~ width^2; wall time must grow
    clearly faster than linearly from width 2 to 4."""
    t2 = seconds_per_update(2)
    t4 = seconds_per_update(4)
    assert t4 > 1.5 * t2


def test_bench_train_step_width2(benchmark):
    net = build(2)
    provider = RandomProvider(INPUT, net.output_nodes[0].shape, seed=1)
    x, t = provider.sample()
    net.train_step(x, t)  # warm pools and caches

    def step():
        net.train_step(x, t)

    benchmark(step)
    net.close()


def test_bench_forward_width2(benchmark):
    net = build(2)
    provider = RandomProvider(INPUT, net.output_nodes[0].shape, seed=1)
    x, _ = provider.sample()
    net.forward(x)
    benchmark(net.forward, x)
    net.close()
