"""Section VI-A ablation — temporal locality of the priority schedule.

"…when multiple tasks with the same distance are scheduled we prefer to
execute ones computing 3D images that have to be accumulated in the
same sum, thus increasing the probability of the memory accessed being
in the cache."

We quantify this on simulated schedules: in global start-time order,
how often does the stream of accumulating tasks switch between
different node sums, and how many distinct sums live in a 32-task
window?  The priority policy should beat FIFO/LIFO/random on both.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.graph import build_task_graph
from repro.simulate import (
    get_machine,
    locality_report,
    simulate_schedule,
)
from repro.simulate.speedup import paper_graph_3d

POLICIES = ("priority", "fifo", "lifo", "random")
WIDTHS = (5, 10) if not full_run() else (5, 10, 20, 40)


@pytest.fixture(scope="module")
def reports():
    machine = get_machine("xeon-18")
    out = {}
    for width in WIDTHS:
        graph = paper_graph_3d(width)
        tg = build_task_graph(graph, conv_mode="direct")
        for policy in POLICIES:
            result = simulate_schedule(tg, machine, machine.threads,
                                       policy=policy,
                                       record_timeline=True)
            out[(width, policy)] = locality_report(result, graph)
    return out


def test_print_locality_table(reports):
    rows = []
    for width in WIDTHS:
        for policy in POLICIES:
            rep = reports[(width, policy)]
            rows.append([width, policy, fmt(rep.switch_rate, 3),
                         fmt(rep.mean_working_set, 4)])
    print_table("sum-locality of simulated schedules (xeon-18, 3D net)",
                ["width", "policy", "switch rate", "working set/32"],
                rows)


def test_priority_most_local_everywhere(reports):
    for width in WIDTHS:
        prio = reports[(width, "priority")]
        for policy in POLICIES[1:]:
            other = reports[(width, policy)]
            assert prio.switch_rate < other.switch_rate, (width, policy)
            assert prio.mean_working_set <= other.mean_working_set + 0.5


def test_wider_layers_bigger_gap(reports):
    """With more convergent edges per sum, grouping matters more: the
    priority policy's advantage (relative switch-rate reduction) should
    not shrink as width grows."""
    def advantage(width):
        prio = reports[(width, "priority")].switch_rate
        fifo = reports[(width, "fifo")].switch_rate
        return fifo - prio

    assert advantage(WIDTHS[-1]) > 0
    assert advantage(WIDTHS[0]) > 0


def test_bench_locality_analysis(benchmark):
    graph = paper_graph_3d(5)
    tg = build_task_graph(graph, conv_mode="direct")
    machine = get_machine("xeon-8")
    result = simulate_schedule(tg, machine, 8, record_timeline=True)
    benchmark(locality_report, result, graph)
