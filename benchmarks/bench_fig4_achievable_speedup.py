"""Fig 4 — theoretically achievable speedup (Brent bound, Eq. 2).

Regenerates both panels: (a) direct convolution, (b) FFT-based with
memoization; kernel 5^3, C = 5, P in {8, 18, 40, 60, 120}, depths 4–40.
Prints the speedup-vs-width series and asserts the paper's qualitative
claims: S_P -> P for wide networks, and the width needed to reach 75 %
of P grows with P.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.pram import (
    FIG4_PROCESSORS,
    achievable_speedup,
    achievable_speedup_curve,
    fig4_series,
)

WIDTHS = (5, 10, 20, 30, 40, 60, 80, 100, 120)
DEPTH = 8


@pytest.mark.parametrize("mode,panel", [("direct", "a"), ("fft-memo", "b")])
def test_print_fig4_panel(mode, panel):
    rows = []
    for p in FIG4_PROCESSORS:
        curve = achievable_speedup_curve(p, WIDTHS, depth=DEPTH, mode=mode)
        rows.append([f"P={p}"] + [fmt(s, 3) for s in curve])
    print_table(f"Fig 4({panel}) achievable speedup, {mode}, depth={DEPTH}",
                ["procs"] + [f"w={w}" for w in WIDTHS], rows)
    # S_P approaches P in the wide limit for every processor count.
    for p in FIG4_PROCESSORS:
        assert achievable_speedup(p, 120, DEPTH, mode=mode) > 0.9 * p


@pytest.mark.parametrize("mode", ["direct", "fft-memo"])
def test_width_for_75pct_grows_with_p(mode):
    def width75(p):
        for w in range(1, 400):
            if achievable_speedup(p, w, DEPTH, mode=mode) >= 0.75 * p:
                return w
        return 400

    widths = [width75(p) for p in (8, 40, 120)]
    print_table(f"width reaching 75% of P ({mode})",
                ["P", "width@75%"],
                [[p, w] for p, w in zip((8, 40, 120), widths)])
    assert widths[0] <= widths[1] <= widths[2]
    assert widths[2] > widths[0]


def test_depth_lines_cluster():
    """Fig 4 draws depths 4–40 as near-coincident lines per colour."""
    depths = (4, 16, 40) if not full_run() else tuple(range(4, 44, 4))
    series = fig4_series(widths=[60], depths=depths, processors=(40,))
    values = [series[40][d][0] for d in depths]
    spread = (max(values) - min(values)) / max(values)
    print_table("Fig 4 depth spread at width 60, P=40",
                ["depth", "speedup"],
                [[d, fmt(v, 4)] for d, v in zip(depths, values)])
    assert spread < 0.25


def test_bench_fig4_curve(benchmark):
    benchmark(achievable_speedup_curve, 60, WIDTHS, DEPTH)
