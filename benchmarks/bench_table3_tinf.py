"""Tables III & IV — per-layer times with infinitely many processors.

Prints the T_inf rows for a fully connected conv layer in all three
modes and the non-conv layers, and cross-checks the model against the
*structural* T_inf of the generated task graph (critical path of one
layer's task DAG), which the DES relies on.
"""

import pytest

from _bench_utils import fmt, print_table
from repro.graph import build_layered_network, build_task_graph
from repro.pram import conv_layer_tinf, nonconv_layer_tinf

N = 16
F = 8
K = 5


def test_print_table3():
    rows = []
    for mode in ("direct", "fft", "fft-memo"):
        t = conv_layer_tinf(F, F, N, K, mode=mode)
        rows.append([mode, fmt(t.forward), fmt(t.backward), fmt(t.update)])
    print_table(f"Table III (conv layer, f=f'={F}, n={N}^3, k={K}^3)",
                ["mode", "T_fwd_inf", "T_bwd_inf", "T_upd_inf"], rows)

    rows4 = []
    for kind in ("pool", "filter", "transfer"):
        t = nonconv_layer_tinf(kind, N, 2)
        rows4.append([kind, fmt(t.forward), fmt(t.backward), fmt(t.update)])
    print_table(f"Table IV (n={N}^3)",
                ["layer", "T_fwd_inf", "T_bwd_inf", "T_upd_inf"], rows4)


def test_taskgraph_critical_path_close_to_model():
    """The unrolled task graph's critical path should approximate the
    summed layer T_inf values of the analysis (same asymptotics; the
    task graph serialises convergent sums inside tasks rather than as a
    binary collapse, so we allow a generous band)."""
    g = build_layered_network("CTCT", width=F, kernel=K)
    g.propagate_shapes(N + 2 * (K - 1))
    tg = build_task_graph(g, conv_mode="direct")
    structural = tg.critical_path_cost()

    model = 0.0
    shapes = [(N + 2 * (K - 1),), (N + K - 1,)]
    f_in = 1
    for (n,) in shapes:
        t = conv_layer_tinf(f_in, F, n, K, mode="direct")
        x = nonconv_layer_tinf("transfer", n - K + 1)
        model += (t.forward + t.backward + x.forward + x.backward)
        f_in = F
    assert 0.3 < structural / model < 3.0


def test_bench_critical_path(benchmark):
    g = build_layered_network("CTCT", width=F, kernel=K)
    g.propagate_shapes(30)
    tg = build_task_graph(g, conv_mode="direct")
    benchmark(tg.critical_path_cost)


def test_bench_taskgraph_build(benchmark):
    g = build_layered_network("CTMCTMCTCT", width=10, kernel=3, window=2,
                              skip_kernels=True)
    g.propagate_shapes(37)
    benchmark(build_task_graph, g, "direct")
