"""Benchmark-harness fixtures.

Every benchmark regenerates one table or figure of the paper and
*prints* the rows it produces (run with ``-s`` to see them), in
addition to timing a representative kernel with pytest-benchmark.

Set ``ZNN_BENCH_FULL=1`` to sweep the paper's full parameter grids
(minutes); the default grids keep ``pytest benchmarks/`` fast.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import FULL  # noqa: E402


@pytest.fixture(scope="session")
def full():
    return FULL
