"""Live-engine utilization (instrumented traces).

Runs traced training rounds and reports per-family time split (forward/
backward/update/FFT work) and worker utilization — the live-engine
counterpart of the DES utilization numbers behind Figs 5–7.  Also
benchmarks the two future-work features: thread-local allocation and
automatic strategy selection.
"""

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.analysis import runtime as check_runtime
from repro.core import Network, SGD
from repro.graph import build_layered_network
from repro.memory import PoolAllocator, ThreadLocalAllocator
from repro.observability import get_registry, render_metrics
from repro.scheduler import TraceRecorder, select_strategy
from repro.sync import HeapOfLists


def traced_training(num_workers=2, rounds=2):
    rec = TraceRecorder()
    graph = build_layered_network("CTMCT", width=3, kernel=3, window=2,
                                  transfer="tanh")
    net = Network(graph, input_shape=(18, 18, 18), conv_mode="fft",
                  seed=0, num_workers=num_workers, recorder=rec,
                  optimizer=SGD(learning_rate=1e-3))
    rng = np.random.default_rng(1)
    x = rng.standard_normal((18, 18, 18))
    targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
    for _ in range(rounds):
        net.train_step(x, targets)
    net.synchronize()
    net.close()
    return rec


def test_print_family_breakdown():
    rec = traced_training()
    summary = rec.summary()
    total = sum(summary.time_per_family.values())
    rows = [[family, fmt(seconds, 3), fmt(seconds / total, 3)]
            for family, seconds in sorted(summary.time_per_family.items(),
                                          key=lambda kv: -kv[1])]
    print_table("traced training: time per task family",
                ["family", "seconds", "fraction"], rows)
    assert {"provider", "fwd", "bwd", "lossgrad"} <= set(
        summary.time_per_family)
    # forward+backward convolution work dominates a conv net
    heavy = (summary.time_per_family.get("fwd", 0)
             + summary.time_per_family.get("bwd", 0)
             + summary.time_per_family.get("upd", 0))
    assert heavy > 0.5 * total


def test_print_worker_utilization():
    rec = traced_training(num_workers=2)
    s = rec.summary()
    rows = [[w, fmt(b, 3)] for w, b in sorted(s.busy_per_worker.items())]
    print_table(f"worker busy time over span {s.span:.3f}s "
                f"(utilization {s.utilization:.0%})",
                ["worker", "busy s"], rows)
    assert 0 < s.utilization <= 1.0


def test_autoselect_report():
    graph = build_layered_network("CTMCT", width=4, kernel=3, window=2)
    graph.propagate_shapes(16)
    choice = select_strategy(graph, num_workers=4)
    rows = [[p, fmt(m / 1e6, 4)] for p, m in
            sorted(choice.policy_makespans.items(), key=lambda kv: kv[1])]
    print_table(f"strategy autoselect (chosen: {choice.scheduler})",
                ["policy", "makespan (MFLOP-units)"], rows)
    assert choice.scheduler in ("priority", "fifo", "lifo",
                                "work-stealing")


def test_thread_local_allocator_report():
    shared = PoolAllocator(alignment=64)
    tl = ThreadLocalAllocator(backing=shared, local_capacity=4)
    for _ in range(100):
        a = tl.allocate_array((16, 16, 16))
        tl.deallocate_array(a)
    print_table("thread-local allocator after 100 alloc/free cycles",
                ["local hit rate", "global requests"],
                [[fmt(tl.local_hit_rate, 3), tl.global_requests]])
    assert tl.local_hit_rate > 0.9


def test_print_metrics_registry_snapshot():
    """A traced run's registry snapshot — the same counters the CLI's
    ``repro metrics`` command prints."""
    reg = get_registry()
    reg.reset()
    traced_training(num_workers=1, rounds=1)
    snap = reg.snapshot()
    print(render_metrics(snap, title="registry after one traced round"))
    assert snap.get("queue.pop", 0) > 0
    assert any(name.startswith("engine.tasks") for name in snap)


def test_bench_traced_round(benchmark):
    benchmark(traced_training, 1, 1)


def test_bench_traced_round_metrics_disabled(benchmark):
    """Same round with the registry in no-op mode — compare against
    test_bench_traced_round to bound instrumentation overhead (<5%)."""
    reg = get_registry()
    reg.disable()
    try:
        benchmark(traced_training, 1, 1)
    finally:
        reg.enable()


def test_bench_traced_round_span_tracing(benchmark):
    """Same round with hierarchical span tracing on (REPRO_TRACING
    semantics) — compare against test_bench_traced_round to see the
    per-span cost in situ.  Span recording costs ~3µs/span micro
    (open + close + ring append); at this toy 18³ scale the round is
    only a few ms, so the relative overhead is larger than at the
    representative volumes the CI trace-smoke lane gates at ≤5%."""
    from repro.observability.tracing import Tracer, set_tracer

    previous = set_tracer(Tracer(enabled=True, process="bench"))
    try:
        benchmark(traced_training, 1, 1)
    finally:
        set_tracer(previous)


def test_bench_traced_round_span_tracing_off(benchmark):
    """The tracing-off fast path (one enabled-check branch per
    instrumentation site) — the pair of
    test_bench_traced_round_span_tracing."""
    from repro.observability.tracing import Tracer, set_tracer

    previous = set_tracer(Tracer(enabled=False, process="bench"))
    try:
        benchmark(traced_training, 1, 1)
    finally:
        set_tracer(previous)


def test_bench_traced_round_repro_check(benchmark):
    """Same round with the REPRO_CHECK runtime checker enabled —
    compare against test_bench_traced_round for the debug-mode cost
    (CheckedLock + lockset notes on every queue/pool/cache op)."""
    if check_runtime.checking_enabled():
        pytest.skip("REPRO_CHECK already on; baseline bench meaningless")
    check_runtime.enable_checks()
    try:
        benchmark(traced_training, 1, 1)
        check_runtime.assert_clean()
    finally:
        check_runtime.disable_checks()


def test_bench_queue_cycle_checker_off(benchmark):
    """Hot-path cost with checking off (the default, and the shipped
    configuration): make_lock() handed the queue a plain
    threading.Lock and each op pays one captured-bool branch — the
    <1%-when-off budget of docs/static_analysis.md.  Compare with
    test_bench_queue_cycle_checker_on."""
    if check_runtime.checking_enabled():
        pytest.skip("REPRO_CHECK already on; off-mode bench meaningless")
    queue = HeapOfLists()

    def cycle():
        queue.push(1, "item")
        queue.pop(block=False)

    benchmark(cycle)


def test_bench_queue_cycle_checker_on(benchmark):
    check_runtime.enable_checks()
    try:
        queue = HeapOfLists()

        def cycle():
            queue.push(1, "item")
            queue.pop(block=False)

        benchmark(cycle)
        check_runtime.assert_clean()
    finally:
        check_runtime.disable_checks()


def test_bench_autoselect(benchmark):
    graph = build_layered_network("CTC", width=3, kernel=2)
    graph.propagate_shapes(12)
    benchmark(select_strategy, graph, 4)


def test_bench_thread_local_cycle(benchmark):
    tl = ThreadLocalAllocator(local_capacity=4)
    a = tl.allocate_array((16, 16, 16))
    tl.deallocate_array(a)

    def cycle():
        arr = tl.allocate_array((16, 16, 16))
        tl.deallocate_array(arr)

    benchmark(cycle)
