"""Section VII-B ablation — wait-free concurrent summation vs the
naive locked sum.

The wait-free method does the O(n^3) additions outside the critical
section; the naive method holds the lock for the whole addition, so its
critical-section time scales with the image size.  We measure wall time
for T threads accumulating into one node under both schemes, plus
single-thread overhead of each.
"""

import threading
import time

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.sync import ConcurrentSum, NaiveLockedSum

SHAPE = (48, 48, 48)
THREADS = 4
PER_THREAD = 4


def accumulate(impl_cls, threads=THREADS, per_thread=PER_THREAD,
               shape=SHAPE):
    rng = np.random.default_rng(0)
    arrays = [[rng.standard_normal(shape) for _ in range(per_thread)]
              for _ in range(threads)]
    s = impl_cls(threads * per_thread)
    barrier = threading.Barrier(threads + 1)

    def worker(mine):
        barrier.wait()
        for a in mine:
            s.add(a)

    ts = [threading.Thread(target=worker, args=(arrays[i],))
          for i in range(threads)]
    for t in ts:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in ts:
        t.join()
    elapsed = time.perf_counter() - t0
    return elapsed, s.get()


def test_both_schemes_agree():
    _, wait_free = accumulate(ConcurrentSum)
    _, naive = accumulate(NaiveLockedSum)
    np.testing.assert_allclose(wait_free, naive, atol=1e-9)


def test_print_comparison():
    rows = []
    for name, cls in (("wait-free", ConcurrentSum),
                      ("naive-locked", NaiveLockedSum)):
        times = [accumulate(cls)[0] for _ in range(3)]
        rows.append([name, fmt(min(times), 3), fmt(np.mean(times), 3)])
    print_table(f"concurrent summation, {THREADS} threads x "
                f"{PER_THREAD} images of {SHAPE}",
                ["scheme", "best s", "mean s"], rows)
    # No hard time assertion: with 1 host core the GIL serialises the
    # additions either way; the structural property is tested below.


def test_critical_section_is_pointer_only():
    """Instrument the lock: under the wait-free scheme the lock is
    never held during an array addition (we verify by timing lock hold
    durations — they must not scale with the image size)."""
    holds = {}
    for shape in ((16, 16, 16), (64, 64, 64)):
        s = ConcurrentSum(8)
        durations = []
        original_acquire = s._lock.acquire
        original_release = s._lock.release
        t_acquired = [0.0]

        def acquire(*a, _oa=original_acquire, **k):
            result = _oa(*a, **k)
            t_acquired[0] = time.perf_counter()
            return result

        def release(_or=original_release):
            durations.append(time.perf_counter() - t_acquired[0])
            return _or()

        s._lock = type("L", (), {"acquire": staticmethod(acquire),
                                 "release": staticmethod(release),
                                 "__enter__": lambda self: acquire(),
                                 "__exit__": lambda self, *a: release(),
                                 })()
        rng = np.random.default_rng(0)
        for _ in range(8):
            s.add(rng.standard_normal(shape))
        holds[shape] = max(durations)
    # 64x more voxels must NOT mean a correspondingly longer critical
    # section (allow 10x for timing noise).
    assert holds[(64, 64, 64)] < holds[(16, 16, 16)] * 10 + 1e-4


def test_bench_waitfree(benchmark):
    benchmark(accumulate, ConcurrentSum, 2, 2, (32, 32, 32))


def test_bench_naive(benchmark):
    benchmark(accumulate, NaiveLockedSum, 2, 2, (32, 32, 32))


def test_ordered_sum_costs_little_extra():
    """The deterministic OrderedSum (bitwise reproducibility across
    schedules) versus the paper's wait-free scheme: both correct; the
    ordered reduction concentrates all additions on the completing
    thread."""
    from repro.sync import OrderedSum

    class IndexedAdapter:
        """Give OrderedSum the ConcurrentSum add() signature by
        assigning arrival indices (determinism is not exercised here,
        only cost)."""

        def __init__(self, required):
            self._inner = OrderedSum(required)
            self._next = iter(range(required))
            self._lock = threading.Lock()

        def add(self, value):
            with self._lock:
                index = next(self._next)
            return self._inner.add(value, index)

        def get(self):
            return self._inner.get()

    t_wait, total_wait = accumulate(ConcurrentSum)
    t_ord, total_ord = accumulate(IndexedAdapter)
    np.testing.assert_allclose(total_wait, total_ord, atol=1e-9)
    rows = [["wait-free", fmt(t_wait, 3)], ["ordered", fmt(t_ord, 3)]]
    print_table("wait-free vs deterministic ordered summation "
                f"({THREADS} threads)", ["scheme", "seconds"], rows)
