"""Model ablation — sensitivity of simulated speedup to scheduling
overhead.

The paper's design effort (heap-of-lists queue, pointer-only critical
sections) exists to keep per-task synchronisation cost negligible
against task bodies.  This ablation turns that knob in the machine
model: sweeping the per-task overhead shows when scheduling cost starts
eating the speedup — and why it bites *narrow* networks (smaller layer
fan-out means less work to amortise each queue operation, and the same
reasoning explains why ZNN needs 'sufficiently wide networks').
"""

import dataclasses

import pytest

from _bench_utils import fmt, print_table
from repro.simulate import get_machine, paper_task_graph, simulate_schedule

OVERHEADS = (0.0, 2e3, 2e4, 2e5, 2e6)


def machine_with_overhead(overhead):
    return dataclasses.replace(get_machine("xeon-18"),
                               sync_overhead=overhead)


@pytest.fixture(scope="module")
def speedups():
    out = {}
    for width in (5, 40):
        tg = paper_task_graph(3, width)
        for overhead in OVERHEADS:
            machine = machine_with_overhead(overhead)
            out[(width, overhead)] = simulate_schedule(
                tg, machine, machine.threads).speedup
    return out


def test_print_sensitivity(speedups):
    rows = []
    for width in (5, 40):
        rows.append([width] + [fmt(speedups[(width, o)], 4)
                               for o in OVERHEADS])
    print_table("speedup vs per-task sync overhead (FLOP-equivalents), "
                "xeon-18 model, 3D net",
                ["width"] + [fmt(o, 3) for o in OVERHEADS], rows)


def test_speedup_monotone_in_overhead(speedups):
    for width in (5, 40):
        series = [speedups[(width, o)] for o in OVERHEADS]
        assert all(series[i] >= series[i + 1] - 1e-9
                   for i in range(len(series) - 1))


def test_moderate_overhead_harmless(speedups):
    """The design target: realistic overhead (~2k FLOP-equivalents per
    task) costs almost nothing against convolution-sized tasks."""
    for width in (5, 40):
        assert speedups[(width, 2e3)] > 0.95 * speedups[(width, 0.0)]


def test_extreme_overhead_kills_scaling(speedups):
    assert speedups[(40, 2e6)] < 0.7 * speedups[(40, 0.0)]


def test_bench_sensitivity_point(benchmark):
    tg = paper_task_graph(3, 5)
    machine = machine_with_overhead(2e4)
    benchmark(simulate_schedule, tg, machine, machine.threads)
