"""Shared helpers for the benchmark harness (imported by every
bench file; kept separate from conftest.py so running benchmarks
together with the unit-test tree never collides on the ``conftest``
module name)."""

import os

FULL = os.environ.get("ZNN_BENCH_FULL", "0") not in ("0", "", "false")


def full_run() -> bool:
    return FULL


def print_table(title: str, header: list, rows: list) -> None:
    """Render a fixed-width table to stdout."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)] if rows else [len(str(h)) + 2
                                                           for h in header]
    print()
    print(f"== {title} ==")
    print("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    print("-" * sum(widths))
    for row in rows:
        print("".join(str(c).rjust(w) for c, w in zip(row, widths)))


def fmt(value, digits=3):
    if value is None:
        return "OOM"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)
