"""Serving-pipeline throughput: requests/s and dense voxels/s through
the full admission → micro-batch → warm-model → tile-stitch path.

Measures the in-process server (no HTTP) on a small CTPCT model:
steady-state throughput for a closed-loop client at several worker
counts, the cold-start cost the warm cache removes (first request
builds + prewarms the dense twin), and the tile-budget trade-off
(smaller tiles -> more halo recompute).  Results are printed and
written to ``BENCH_serving.json`` in the working directory.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.graph.specfile import dump_layered_spec
from repro.serving import InferenceServer, ModelRegistry, ModelSpec

VOLUME = (20, 20, 20)
WORKER_COUNTS = (1, 2) if not full_run() else (1, 2, 4)
REQUESTS = 8 if not full_run() else 32


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "bench.spec"
    path.write_text(dump_layered_spec(
        "CTPCT", width=[2, 1], kernel=2, window=2, transfer="tanh"))
    return path


def make_registry(spec_path, conv_mode="fft"):
    registry = ModelRegistry(max_models=2)
    registry.register(ModelSpec.from_files("bench", spec_path,
                                           conv_mode=conv_mode))
    return registry


def run_closed_loop(server, volume, requests, clients=4):
    """`clients` threads each keep one request in flight; returns
    (seconds, dense voxels produced)."""
    voxels = [0]
    lock = threading.Lock()
    todo = list(range(requests))

    def client():
        while True:
            with lock:
                if not todo:
                    return
                todo.pop()
            out = server.infer("bench", volume, timeout=120)
            with lock:
                voxels[0] += out.size

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, voxels[0]


def test_throughput_vs_workers(spec_path):
    volume = np.random.default_rng(0).standard_normal(VOLUME)
    rows, results = [], []
    for workers in WORKER_COUNTS:
        registry = make_registry(spec_path)
        with InferenceServer(registry, num_workers=workers,
                             max_queue=2 * REQUESTS,
                             tile_voxels=2000) as server:
            server.infer("bench", volume)  # warm the twin off the clock
            seconds, voxels = run_closed_loop(server, volume, REQUESTS)
        registry.close()
        rps = REQUESTS / seconds
        rows.append([workers, fmt(seconds), fmt(rps), fmt(voxels / seconds)])
        results.append({"workers": workers, "requests": REQUESTS,
                        "seconds": seconds, "requests_per_second": rps,
                        "voxels_per_second": voxels / seconds})
    print_table(f"serving throughput, volume {VOLUME}, tile budget 2000",
                ["workers", "seconds", "req/s", "voxels/s"], rows)
    assert all(r["requests_per_second"] > 0 for r in results)
    _emit("throughput_vs_workers", results)


def test_warm_cache_removes_cold_start(spec_path):
    """First request pays twin build + spectra prewarm; steady-state
    requests must be substantially faster."""
    volume = np.random.default_rng(1).standard_normal(VOLUME)
    registry = make_registry(spec_path)
    with InferenceServer(registry, num_workers=1,
                         tile_voxels=2000) as server:
        start = time.perf_counter()
        server.infer("bench", volume)
        cold = time.perf_counter() - start
        warm_times = []
        for _ in range(3):
            start = time.perf_counter()
            server.infer("bench", volume)
            warm_times.append(time.perf_counter() - start)
    registry.close()
    warm = min(warm_times)
    print_table("cold start vs warm cache (seconds/request)",
                ["cold", "warm", "speedup"],
                [[fmt(cold), fmt(warm), fmt(cold / warm, 2)]])
    _emit("cold_vs_warm", {"cold_seconds": cold, "warm_seconds": warm})
    assert cold > warm


def test_tile_budget_tradeoff(spec_path):
    """Smaller tiles raise the halo recompute fraction; throughput
    should not improve as the budget shrinks below the volume."""
    volume = np.random.default_rng(2).standard_normal(VOLUME)
    rows, results = [], []
    for budget in (8000, 2000, 700):
        registry = make_registry(spec_path)
        with InferenceServer(registry, num_workers=1,
                             tile_voxels=budget) as server:
            server.infer("bench", volume)
            seconds, voxels = run_closed_loop(server, volume,
                                              max(4, REQUESTS // 2),
                                              clients=2)
        registry.close()
        rows.append([budget, fmt(seconds), fmt(voxels / seconds)])
        results.append({"tile_voxels": budget, "seconds": seconds,
                        "voxels_per_second": voxels / seconds})
    print_table(f"tile-budget sweep, volume {VOLUME}",
                ["tile budget", "seconds", "voxels/s"], rows)
    _emit("tile_budget", results)
    assert all(r["seconds"] > 0 for r in results)


def test_bench_single_request(spec_path, benchmark):
    volume = np.random.default_rng(3).standard_normal(VOLUME)
    registry = make_registry(spec_path)
    with InferenceServer(registry, num_workers=1,
                         tile_voxels=2000) as server:
        server.infer("bench", volume)
        benchmark(server.infer, "bench", volume)
    registry.close()


_DOC = {}


def _emit(key, value):
    """Accumulate results across tests into BENCH_serving.json."""
    _DOC[key] = value
    path = os.environ.get("REPRO_BENCH_SERVING_OUT", "BENCH_serving.json")
    with open(path, "w") as fh:
        json.dump({"volume": list(VOLUME), "full_run": full_run(),
                   "results": _DOC}, fh, indent=2)
        fh.write("\n")
