"""Fleet failover cost: throughput of a clean fleet vs the same fleet
with a worker killed mid-run, plus the graceful-drain latency.

The interesting number is the *recovery tax*: how much wall-clock a
mid-load worker crash adds when every affected request requeues and
fails over along the hash ring (the answers stay bitwise identical —
the chaos tests assert that; here we only price it).  Results are
printed and written to ``BENCH_fleet.json`` in the working directory.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from _bench_utils import fmt, full_run, print_table
from repro.graph.specfile import dump_layered_spec
from repro.serving import FleetServer, ModelSpec, SupervisorConfig

VOLUME = (16, 16, 16)
REQUESTS = 8 if not full_run() else 32
WORKERS = 2 if not full_run() else 3

# Fast failure detection so the benchmark measures recovery, not the
# default production heartbeat budget.
FAST = SupervisorConfig(heartbeat_interval=0.1, heartbeat_timeout=0.6,
                        restart_backoff=0.05, restart_backoff_max=0.2)


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-bench") / "bench.spec"
    path.write_text(dump_layered_spec(
        "CTPCT", width=[2, 1], kernel=2, window=2, transfer="tanh"))
    return ModelSpec.from_files("bench", str(path), conv_mode="direct")


def run_closed_loop(fleet, volume, requests, clients=2):
    """`clients` threads each keep one request in flight; returns
    (seconds, completed count)."""
    lock = threading.Lock()
    todo = list(range(requests))
    done = [0]

    def client():
        while True:
            with lock:
                if not todo:
                    return
                todo.pop()
            fleet.infer("bench", volume, timeout=120.0)
            with lock:
                done[0] += 1

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, done[0]


def make_fleet(spec, *, faults=None, pool_name="fleet-bench"):
    return FleetServer([spec], num_workers=WORKERS,
                       prewarm_shape=VOLUME, worker_faults=faults,
                       supervisor_config=FAST, pool_name=pool_name)


def test_failover_recovery_cost(spec):
    volume = np.random.default_rng(5).standard_normal(VOLUME)
    rows, results = [], []
    for label, faults in (
            ("clean", None),
            # Kill whichever worker handles the 3rd request; the
            # victim requeues and the worker restarts mid-run.
            ("kill mid-run", "fail:serve_worker:3")):
        fleet = make_fleet(spec, faults=faults,
                           pool_name=f"fleet-bench-{len(rows)}")
        fleet.start(ready_timeout=120)
        try:
            seconds, served = run_closed_loop(fleet, volume, REQUESTS)
            doc = fleet.health()
            deaths = sum(w["restarts"]
                         for w in doc["workers"].values())
        finally:
            fleet.stop()
        rows.append([label, served, fmt(seconds),
                     fmt(served / seconds), deaths])
        results.append({"scenario": label, "requests": served,
                        "seconds": seconds,
                        "requests_per_second": served / seconds,
                        "worker_restarts": deaths})
    print_table(
        f"fleet of {WORKERS}, {REQUESTS} requests, volume {VOLUME}",
        ["scenario", "served", "seconds", "req/s", "restarts"], rows)
    _emit("failover", results)
    assert results[0]["requests"] == REQUESTS
    assert results[1]["requests"] == REQUESTS  # nothing dropped
    assert results[1]["worker_restarts"] >= 1


def test_drain_latency_under_load(spec):
    volume = np.random.default_rng(6).standard_normal(VOLUME)
    fleet = make_fleet(spec, pool_name="fleet-bench-drain")
    fleet.start(ready_timeout=120)
    stopped = False
    try:
        accepted = [fleet.submit("bench", volume, timeout=120.0)
                    for _ in range(REQUESTS)]
        start = time.perf_counter()
        fleet.begin_drain()
        drained = fleet.wait_drained(timeout=120.0)
        seconds = time.perf_counter() - start
        for request in accepted:
            request.result(timeout=120.0)
        fleet.stop()
        stopped = True
    finally:
        if not stopped:
            fleet.stop()
    print_table("graceful drain under load",
                ["accepted", "drained", "seconds"],
                [[len(accepted), drained, fmt(seconds)]])
    _emit("drain", {"accepted": len(accepted), "drained": drained,
                    "seconds": seconds})
    assert drained


_DOC = {}


def _emit(key, value):
    """Accumulate results across tests into BENCH_fleet.json."""
    _DOC[key] = value
    path = os.environ.get("REPRO_BENCH_FLEET_OUT", "BENCH_fleet.json")
    with open(path, "w") as fh:
        json.dump({"volume": list(VOLUME), "workers": WORKERS,
                   "full_run": full_run(), "results": _DOC}, fh,
                  indent=2)
        fh.write("\n")
