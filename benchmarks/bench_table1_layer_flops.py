"""Table I — FLOPs of pooling / filtering / transfer layers.

Prints the model's per-pass FLOP counts for a layer of ``f`` nodes on
``n^3`` images, and times the real numpy implementations to confirm the
*relative* costs the table predicts (filtering's log-k factor makes it
the most expensive forward op; the backwards are all ~n^3).
"""

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.pram import (
    filtering_layer_costs,
    pooling_layer_costs,
    transfer_layer_costs,
)
from repro.tensor import (
    RELU,
    max_filter_backward,
    max_filter_forward,
    max_pool_backward,
    max_pool_forward,
)

N = 32
F = 4
WINDOW = 4


def test_print_table1():
    rows = []
    pool = pooling_layer_costs(F, N)
    filt = filtering_layer_costs(F, N, WINDOW)
    xfer = transfer_layer_costs(F, N)
    for name, costs in (("pooling", pool), ("filtering", filt),
                        ("transfer", xfer)):
        rows.append([name, fmt(costs.forward), fmt(costs.backward),
                     fmt(costs.update)])
    print_table(f"Table I (f={F}, n={N}^3, k=p={WINDOW})",
                ["layer", "forward", "backward", "update"], rows)
    # Table I structure: filtering forward carries the 6 log k factor.
    assert filt.forward == pytest.approx(6 * np.log2(WINDOW)
                                         * pool.forward)
    assert filt.backward == pool.backward == xfer.backward


@pytest.fixture(scope="module")
def image(request):
    return np.random.default_rng(0).standard_normal((N, N, N))


def test_bench_pool_forward(benchmark, image):
    benchmark(max_pool_forward, image, WINDOW)


def test_bench_filter_forward(benchmark, image):
    benchmark(max_filter_forward, image, WINDOW)


def test_bench_transfer_forward(benchmark, image):
    benchmark(RELU.apply, image, 0.1)


def test_bench_pool_backward(benchmark, image):
    pooled, argmax = max_pool_forward(image, WINDOW)
    grad = np.random.default_rng(1).standard_normal(pooled.shape)
    benchmark(max_pool_backward, grad, argmax, WINDOW)


def test_bench_filter_backward(benchmark, image):
    out, argmax = max_filter_forward(image, WINDOW)
    grad = np.random.default_rng(1).standard_normal(out.shape)
    benchmark(max_filter_backward, grad, argmax, image.shape)
