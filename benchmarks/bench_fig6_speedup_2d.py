"""Fig 6 — maximal achieved speedup vs network width, 2D networks
(FFT convolution), all four machines.

The paper's observations: multicore CPUs need width >= 30 to approach
their ceiling, the manycore Xeon Phi needs width >= 80, and the ceiling
equals the core count or a bit more.
"""

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.simulate import MACHINES, get_machine, max_speedup_vs_width

WIDTHS = (5, 10, 20, 30, 40, 60, 80) if not full_run() else \
    (5, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100, 120)
MACHINE_KEYS = ("xeon-8", "xeon-phi") if not full_run() else tuple(MACHINES)


@pytest.mark.parametrize("machine_key", MACHINE_KEYS)
def test_fig6_curve(machine_key):
    machine = get_machine(machine_key)
    curve = max_speedup_vs_width(2, WIDTHS, machine)
    print_table(f"Fig 6 — 2D max speedup vs width on {machine.name}",
                ["width", "speedup"],
                [[w, fmt(s, 4)] for w, s in curve])
    speedups = dict(curve)
    # Monotone non-decreasing in width (within simulator determinism).
    values = [speedups[w] for w in WIDTHS]
    assert all(values[i] <= values[i + 1] * 1.02 for i in range(len(values) - 1))
    # Ceiling near the modelled maximum for the widest network.
    assert values[-1] > 0.75 * machine.max_speedup()
    assert values[-1] <= machine.max_speedup() * 1.001


def test_multicore_saturates_by_width_30():
    machine = get_machine("xeon-8")
    speedups = dict(max_speedup_vs_width(2, (5, 30), machine))
    assert speedups[30] > 0.85 * machine.max_speedup()


def test_bench_fig6_point(benchmark):
    machine = get_machine("xeon-8")
    benchmark(max_speedup_vs_width, 2, (10,), machine)
