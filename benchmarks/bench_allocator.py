"""Section VII-C ablation — pooled power-of-two allocator vs fresh
numpy allocation.

Replays a training-loop-like allocation trace (alternate allocate and
free of image-sized buffers) through the pooled allocator and through
plain ``np.empty``, and reports the pool hit rate and memory overhead
(bounded by 2x, 'memory usage peaks after a few rounds').
"""

import numpy as np
import pytest

from _bench_utils import fmt, print_table
from repro.memory import PoolAllocator

SHAPES = [(24, 24, 24), (12, 12, 12), (24, 24, 24), (6, 6, 6)]
ROUNDS = 50


def pooled_trace(alloc, rounds=ROUNDS):
    for _ in range(rounds):
        live = [alloc.allocate_array(s) for s in SHAPES]
        for a in live:
            a[0, 0, 0] = 1.0
        for a in live:
            alloc.deallocate_array(a)


def fresh_trace(rounds=ROUNDS):
    for _ in range(rounds):
        live = [np.empty(s) for s in SHAPES]
        for a in live:
            a[0, 0, 0] = 1.0


def test_memory_usage_peaks_after_first_round():
    alloc = PoolAllocator(alignment=64)
    pooled_trace(alloc, rounds=1)
    peak = alloc.held_bytes()
    pooled_trace(alloc, rounds=ROUNDS)
    assert alloc.held_bytes() == peak  # never grows again


def test_hit_rate_and_overhead():
    alloc = PoolAllocator(alignment=64)
    pooled_trace(alloc)
    stats = alloc.stats
    print_table("pooled allocator statistics",
                ["requests", "hit rate", "bytes from system",
                 "overhead ratio"],
                [[stats.requests, fmt(stats.hit_rate, 4),
                  stats.bytes_from_system,
                  fmt(stats.overhead_ratio * ROUNDS, 3)]])
    # After warm-up every allocation is a pool hit.
    assert stats.hit_rate > 0.95
    # Worst-case 2x overhead per live byte (pow-2 rounding).
    live_bytes = sum(int(np.prod(s)) * 8 for s in SHAPES)
    assert alloc.held_bytes() <= 2 * live_bytes


def test_bench_pooled(benchmark):
    alloc = PoolAllocator(alignment=64)
    pooled_trace(alloc, rounds=2)  # warm the pools
    benchmark(pooled_trace, alloc, 5)


def test_bench_fresh_numpy(benchmark):
    benchmark(fresh_trace, 5)
