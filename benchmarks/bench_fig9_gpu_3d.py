"""Fig 9 — ZNN vs Theano on 3D networks.

Kernels {3, 5, 7}^3, output patches {1 … 8}^3, width 40.  (Caffe's
official release had no 3D support, so Theano is the only GPU
baseline, as in the paper.)  Asserts the paper's regimes: comparable at
5^3, ZNN ahead at 7^3, and Theano blocked above 7^3 by GPU memory.
"""

import pytest

from _bench_utils import fmt, print_table
from repro.baselines import (
    FIG9_KERNELS,
    FIG9_OUTPUTS,
    GPU_FRAMEWORKS,
    comparison_layers,
    fig9_comparison,
    gpu_fits_in_memory,
)


@pytest.fixture(scope="module")
def rows():
    return fig9_comparison(kernels=FIG9_KERNELS, outputs=FIG9_OUTPUTS)


def test_print_fig9(rows):
    table = [[f"{r.kernel_size}^3", f"{r.output_size}^3",
              fmt(r.seconds["theano"], 3), fmt(r.seconds["znn"], 3),
              r.winner()] for r in rows]
    print_table("Fig 9 — seconds/update, 3D, width 40",
                ["kernel", "output", "theano", "znn", "winner"], table)
    assert len(rows) == len(FIG9_KERNELS) * len(FIG9_OUTPUTS)


def test_theano_wins_3cubed(rows):
    assert all(r.winner() == "theano" for r in rows if r.kernel_size == 3)


def test_comparable_at_5cubed(rows):
    for r in rows:
        if r.kernel_size == 5 and r.seconds["theano"] is not None:
            assert 0.5 < r.seconds["znn"] / r.seconds["theano"] < 2.0


def test_znn_wins_7cubed(rows):
    assert all(r.winner() == "znn" for r in rows if r.kernel_size == 7)


def test_theano_cannot_go_beyond_7cubed():
    """'We were unable to use Theano to train 3D networks with kernel
    sizes larger than 7x7x7' (Section IX-B)."""
    fw = GPU_FRAMEWORKS["theano-3d"]
    assert not gpu_fits_in_memory(fw, comparison_layers(3, 9, 1))


def test_bench_fig9_row(benchmark):
    benchmark(fig9_comparison, (5,), (4,))
