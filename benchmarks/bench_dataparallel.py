"""Data-parallel training throughput and determinism.

Sweeps the worker-process count of :class:`repro.parallel.ParallelTrainer`
over a fixed global batch and measures seconds per global update —
the multi-process analogue of the paper's speedup-vs-threads protocol
(Figs 5–7), with the determinism contract checked on the side: every
worker count must finish with a bitwise-identical parameter digest.

Results accumulate into ``BENCH_dataparallel.json`` (override the path
with ``REPRO_BENCH_DATAPARALLEL_OUT``).  The >= 1.5x speedup assertion
at 4 workers only runs on machines that actually have >= 4 CPUs; on
smaller hosts the sweep still runs and records the (honest) numbers.
"""

import json
import os

import pytest

from _bench_utils import fmt, full_run, print_table
from repro.core import state_digest
from repro.data import RandomProvider
from repro.parallel import ModelConfig, ParallelTrainer, visible_cpus

INPUT = (20, 20, 20)
BATCH = 4
ROUNDS = 2 if not full_run() else 5
WORKER_COUNTS = (1, 2, 4)

CFG = ModelConfig(
    input_shape=INPUT,
    spec="CTMCTCT",
    layered_kwargs={"width": 4, "kernel": 3, "window": 2,
                    "transfer": "tanh", "final_transfer": "linear",
                    "skip_kernels": True, "output_nodes": 1},
    conv_mode="direct",
    loss="euclidean",
    seed=7,
    learning_rate=1e-4)


def output_shape():
    graph = CFG.build_graph()
    graph.validate()
    graph.propagate_shapes(INPUT)
    return graph.output_nodes[0].shape


def run(workers):
    """(seconds per global update, state digest) at *workers*."""
    trainer = ParallelTrainer(CFG, RandomProvider,
                              (INPUT, output_shape(), False, None),
                              workers=workers, batch=BATCH,
                              worker_timeout=300.0)
    try:
        trainer.run(1)  # warm-up: pools, caches, worker start-up
        report = trainer.run(ROUNDS)
        digest = state_digest(trainer.network)
    finally:
        trainer.close()
    return report.mean_seconds_per_update, digest


def test_bench_dataparallel_speedup():
    cpus = visible_cpus()
    rows, results = [], []
    digests = {}
    baseline = None
    for workers in WORKER_COUNTS:
        seconds, digest = run(workers)
        if baseline is None:
            baseline = seconds
        speedup = baseline / seconds if seconds > 0 else 0.0
        digests[workers] = digest
        rows.append([workers, fmt(seconds), fmt(speedup)])
        results.append({"workers": workers, "seconds_per_update": seconds,
                        "speedup": speedup, "digest": digest})
    print_table(
        f"data-parallel seconds/update, batch {BATCH} on {cpus} CPU(s)",
        ["workers", "s/update", "speedup"], rows)
    _emit(cpus, results)
    # The determinism contract holds on any machine.
    assert len(set(digests.values())) == 1, digests
    # The throughput contract only on machines with the CPUs for it.
    if cpus >= 4:
        four = next(r for r in results if r["workers"] == 4)
        assert four["speedup"] >= 1.5, (
            f"expected >= 1.5x at 4 workers on {cpus} CPUs, got "
            f"{four['speedup']:.2f}x")
    else:
        pytest.skip(f"only {cpus} visible CPU(s): recorded results "
                    "without asserting speedup")


def _emit(cpus, results):
    path = os.environ.get("REPRO_BENCH_DATAPARALLEL_OUT",
                          "BENCH_dataparallel.json")
    with open(path, "w") as fh:
        json.dump({"input": list(INPUT), "batch": BATCH,
                   "rounds": ROUNDS, "visible_cpus": cpus,
                   "full_run": full_run(), "results": results},
                  fh, indent=2)
        fh.write("\n")
