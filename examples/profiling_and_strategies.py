#!/usr/bin/env python
"""Engine introspection: traced training, the metrics registry,
Chrome-trace export, automatic strategy selection, and checkpointing.

Demonstrates the infrastructure around the core trainer:

1. attach a TraceRecorder and see where one round of gradient learning
   spends its time (forward / backward / update / loss tasks), including
   queue waits;
2. read the process-global metrics registry — queue traffic, FFT-cache
   hit rate, allocator pressure — and export the trace as
   ``chrome://tracing`` JSON;
3. let the Section X future-work selector pick a scheduling strategy
   for this network by simulating its task graph under every policy;
4. checkpoint the trained network and restore it into a fresh instance.

Run:  python examples/profiling_and_strategies.py
"""

import os
import tempfile

import numpy as np

from repro import Network, RandomProvider, SGD, Trainer, build_layered_network
from repro.core import load_network, save_network
from repro.observability import (
    get_registry,
    render_metrics,
    write_chrome_trace,
)
from repro.scheduler import TraceRecorder, select_strategy


def main() -> None:
    graph = build_layered_network("CTMCTCT", width=4, kernel=3, window=2,
                                  skip_kernels=True, transfer="tanh",
                                  final_transfer="linear", output_nodes=1)
    graph.propagate_shapes((26, 26, 26))

    # -- 3. pick a scheduling strategy by simulation -------------------
    choice = select_strategy(graph, num_workers=2)
    print("strategy selection (simulated makespans, FLOP-units):")
    for policy, makespan in sorted(choice.policy_makespans.items(),
                                   key=lambda kv: kv[1]):
        print(f"  {policy:>10}: {makespan:.3g}")
    print(f"  -> chosen scheduler: {choice.scheduler}\n")

    # -- 1. traced training --------------------------------------------
    registry = get_registry()
    registry.reset()  # start the counters from zero for this run
    recorder = TraceRecorder()
    net = Network(graph, input_shape=(26, 26, 26), conv_mode="auto",
                  seed=0, num_workers=2, scheduler=choice.scheduler,
                  recorder=recorder,
                  optimizer=SGD(learning_rate=1e-4, momentum=0.9))
    provider = RandomProvider((26, 26, 26), net.output_nodes[0].shape,
                              seed=1)
    Trainer(net, provider).run(rounds=5)
    net.synchronize()

    summary = recorder.summary()
    total = sum(summary.time_per_family.values())
    print(f"traced {summary.tasks} tasks over {summary.span:.3f}s "
          f"({summary.workers} workers, "
          f"utilization {summary.utilization:.0%}, "
          f"mean queue wait {summary.mean_queue_wait * 1e3:.2f}ms):")
    for family, seconds in sorted(summary.time_per_family.items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {family:>10}: {seconds:7.3f}s ({seconds / total:5.1%})")

    # -- 2. metrics registry + Chrome-trace export ----------------------
    print()
    print(render_metrics(registry=registry,
                         title="metrics after 5 training rounds"))
    trace_path = os.path.join(tempfile.gettempdir(), "repro_example.trace.json")
    write_chrome_trace(recorder, trace_path)
    print(f"\nChrome trace written to {trace_path} "
          "(load it in chrome://tracing or https://ui.perfetto.dev)")

    # -- 4. checkpoint round-trip ---------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "model.npz")
        save_network(net, path)
        restored = Network(graph, input_shape=(26, 26, 26),
                           conv_mode="direct", seed=999)
        rounds = load_network(restored, path)
        x, _ = provider.sample()
        a = net.forward(x)
        b = restored.forward(x)
        name = net.output_nodes[0].name
        print(f"\ncheckpoint: {rounds} rounds restored; "
              f"max |output difference| = "
              f"{np.abs(a[name] - b[name]).max():.2e}")
        restored.close()
    net.close()


if __name__ == "__main__":
    main()
