#!/usr/bin/env python
"""Fig 2: sliding-window max-pooling net ≡ max-filtering net with
sparse convolution.

Dense prediction with a max-pooling ConvNet means applying it at every
window position of a large image — the naive approach recomputes
overlapping work.  The efficient equivalent (skip-kernels / filter
rarefaction) replaces max-pooling with max-filtering and dilates all
subsequent convolutions; this script demonstrates that the two produce
*identical* outputs and compares their FLOP counts.

Run:  python examples/sliding_window_inference.py
"""

import time

import numpy as np

from repro import Network, build_layered_network
from repro.core import dense_equivalent_network, sliding_window_forward
from repro.pram import direct_conv_task_cost
from repro.utils import voxels


def main() -> None:
    spec = "CTPCTPCT"  # two poolings: period-4 output lattice
    kw = dict(width=[3, 3, 1], kernel=2, window=2, transfer="tanh")

    # Window-sized net: choose the input so the output is one voxel.
    # conv2(-1) pool2(/2) conv2(-1) pool2(/2) conv2(-1):
    #   1 -> 2 -> 4 -> 5 -> 10 -> 11 : field of view 11^3.
    pool_graph = build_layered_network(spec, **kw)
    pool_net = Network(pool_graph, input_shape=(11, 11, 11),
                       conv_mode="direct", seed=5)
    print(f"max-pooling window net: field of view 11^3, "
          f"{len(pool_net.edges)} edges")

    big = np.random.default_rng(0).normal(size=(16, 16, 16))

    t0 = time.perf_counter()
    dense_ref = sliding_window_forward(pool_net, big)
    t_naive = time.perf_counter() - t0

    dense_net = dense_equivalent_network(pool_net, spec,
                                         input_shape=big.shape, **kw)
    t0 = time.perf_counter()
    dense_fast = dense_net.forward(big)
    dense_fast = dense_fast[list(dense_fast)[0]]
    t_fast = time.perf_counter() - t0

    err = float(np.abs(dense_fast - dense_ref).max())
    print(f"dense output {dense_ref.shape}; max |difference| = {err:.2e}")
    assert err < 1e-9, "equivalence violated!"

    n_windows = voxels(dense_ref.shape)
    print(f"naive sliding window: {n_windows} network evaluations, "
          f"{t_naive:.3f}s")
    print(f"max-filter + sparse conv: 1 evaluation, {t_fast:.3f}s "
          f"({t_naive / max(t_fast, 1e-9):.0f}x faster)")

    # FLOP accounting for the first conv layer alone:
    per_window = direct_conv_task_cost((11, 11, 11), 2)
    naive_flops = n_windows * per_window
    dense_flops = direct_conv_task_cost(big.shape, 2)
    print(f"first-layer FLOPs: naive {naive_flops:.3g} vs dense "
          f"{dense_flops:.3g} ({naive_flops / dense_flops:.0f}x saved)")
    pool_net.close()
    dense_net.close()


if __name__ == "__main__":
    main()
