#!/usr/bin/env python
"""Scalability study: speedup vs threads and width (Figs 5–7) on a
modelled machine.

Unrolls the paper's 3D benchmark network into its task dependency
graph and schedules it on a Table V machine model with the discrete-
event simulator, printing the speedup-vs-threads lines of Fig 5 and
the max-speedup-vs-width curve of Fig 7.

Run:  python examples/scalability_study.py [machine]
      machine in {xeon-8, xeon-18, xeon-40, xeon-phi} (default xeon-18)
"""

import sys

from repro.simulate import (
    default_thread_counts,
    get_machine,
    max_speedup_vs_width,
    paper_task_graph,
    simulate_schedule,
)


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "xeon-18"
    machine = get_machine(key)
    print(f"machine: {machine.name}")
    print(f"  cores={machine.cores} hw-threads={machine.threads} "
          f"max modelled speedup={machine.max_speedup():.1f}\n")

    widths = (5, 10, 20, 40, 80)
    threads = default_thread_counts(machine)

    print("Fig 5 (3D net, direct convolution): speedup vs worker threads")
    header = "width " + " ".join(f"W={w:>4}" for w in threads)
    print(header)
    print("-" * len(header))
    for width in widths:
        tg = paper_task_graph(3, width)
        row = [simulate_schedule(tg, machine, w).speedup for w in threads]
        print(f"{width:>5} " + " ".join(f"{s:6.1f}" for s in row))

    print("\nFig 7 (3D): maximal achieved speedup vs network width")
    for width, speedup in max_speedup_vs_width(3, widths, machine):
        bar = "#" * int(round(speedup))
        print(f"  width {width:>3}: {speedup:6.1f}  {bar}")

    print("\nObservations (compare Section VIII):")
    print(" - speedup rises ~linearly until threads == cores, then more")
    print("   slowly through the hardware-thread range;")
    print(" - wider networks get closer to the machine's ceiling;")
    print(" - the ceiling is the core count 'or a bit larger'.")


if __name__ == "__main__":
    main()
