#!/usr/bin/env python
"""Boundary detection on synthetic 3D cell volumes.

The paper's motivating workload: ZNN was built for connectomics —
detecting cell membranes in 3D electron microscopy ([13], [21], [23]).
Real EM volumes are proprietary, so we train on synthetic Voronoi
"cell" volumes with analytic membrane ground truth (see
``repro.data.synthetic``), which exercises the identical code path:
a dense 3D max-filtering ConvNet with sparse convolutions, logistic
loss on the membrane class, and dense-output inference.

Takes a couple of minutes on one core.

Run:  python examples/boundary_detection_3d.py
"""

import numpy as np

from repro import Network, PatchProvider, SGD, Trainer, build_layered_network
from repro.data import CellVolume, boundary_scores, make_cell_volume, pixel_error


def normalized(volume: CellVolume) -> CellVolume:
    """Standardise the intensity image in place (zero mean, unit std)."""
    volume.image[:] = (volume.image - volume.image.mean()) / volume.image.std()
    return volume


def main() -> None:
    train_volume = normalized(make_cell_volume(shape=56, num_cells=24,
                                               noise=0.08, seed=1))
    test_volume = normalized(make_cell_volume(shape=40, num_cells=10,
                                              noise=0.08, seed=2))
    print(f"train volume {train_volume.shape}, membrane fraction "
          f"{train_volume.boundary_fraction():.2f}")

    # A compact dense boundary detector: CTMCTCT with skip-kernels.
    # The final transfer layer is linear so the network emits unbounded
    # logits for the logistic loss.
    graph = build_layered_network("CTMCTCT", width=8, kernel=3, window=2,
                                  transfer="tanh", final_transfer="linear",
                                  skip_kernels=True, output_nodes=1)
    input_shape = (24, 24, 24)
    net = Network(graph, input_shape=input_shape, conv_mode="auto",
                  optimizer=SGD(learning_rate=1e-3, momentum=0.9),
                  loss="binary-logistic", num_workers=2, seed=0)
    out_name = net.output_nodes[0].name
    out_shape = net.output_nodes[0].shape
    voxels = float(np.prod(out_shape))
    print(f"field of view "
          f"{tuple(i - o + 1 for i, o in zip(input_shape, out_shape))}, "
          f"output patch {out_shape}")

    provider = PatchProvider(train_volume, input_shape, out_shape, seed=3)
    trainer = Trainer(net, provider)
    report = trainer.run(
        rounds=250, warmup=0,
        callback=lambda i, l: print(f"round {i:3d}  loss/voxel "
                                    f"{l / voxels:7.3f}")
        if i % 50 == 0 else None)
    smoothed = report.smoothed_losses(window=10)
    print(f"loss/voxel: first-10 mean {smoothed[9] / voxels:.3f} -> "
          f"last-10 mean {smoothed[-1] / voxels:.3f}")

    # Dense inference on held-out data; evaluate against ground truth.
    eval_provider = PatchProvider(test_volume, input_shape, out_shape, seed=4)
    errors, f1s = [], []
    for _ in range(10):
        patch, target = eval_provider.sample()
        logits = net.forward(patch)[out_name]
        prob = 1.0 / (1.0 + np.exp(-logits))
        errors.append(pixel_error(prob, target))
        f1s.append(boundary_scores(prob, target).f1)
    majority_error = min(test_volume.boundary_fraction(),
                         1 - test_volume.boundary_fraction())
    print(f"held-out pixel error {np.mean(errors):.3f} "
          f"(always-majority baseline {majority_error:.3f})")
    print(f"held-out membrane F1 {np.mean(f1s):.3f}")

    # Whole-volume prediction by overlapping tiles (the connectomics
    # deployment path) — seamless by translation covariance.
    from repro.core import tiled_forward

    dense = tiled_forward(net, test_volume.image)
    prob = 1.0 / (1.0 + np.exp(-dense))
    # Align with the training-time supervision: PatchProvider centres
    # the target with offset (input - output) // 2 = (fov - 1) // 2.
    fov = tuple(i - o + 1 for i, o in zip(input_shape, out_shape))
    off = tuple((f - 1) // 2 for f in fov)
    truth = test_volume.boundary[off[0]:off[0] + dense.shape[0],
                                 off[1]:off[1] + dense.shape[1],
                                 off[2]:off[2] + dense.shape[2]]
    print(f"tiled whole-volume prediction {dense.shape}: pixel error "
          f"{pixel_error(prob, truth):.3f}")
    net.close()


if __name__ == "__main__":
    main()
