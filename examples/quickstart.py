#!/usr/bin/env python
"""Quickstart: build, train and run a small 3D max-filtering ConvNet.

Builds the paper's benchmark architecture (``CTMCTMCTCT`` — Section
VIII) at a small width, trains it for a few rounds of gradient learning
on random data with the task-parallel engine (2 workers), and runs
dense inference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Network, RandomProvider, SGD, Trainer, build_layered_network


def main() -> None:
    # The 3D benchmark architecture of Section VIII: four fully
    # connected conv layers (3x3x3 kernels), ReLU transfer layers, two
    # 2x2x2 max-filtering layers with skip-kernel sparse convolutions.
    graph = build_layered_network(
        "CTMCTMCTCT", width=4, kernel=3, window=2,
        transfer="relu", skip_kernels=True, output_nodes=1)

    net = Network(
        graph,
        input_shape=(30, 30, 30),
        conv_mode="auto",        # layerwise FFT-vs-direct autotuning (§IV)
        memoize=True,            # FFT memoization (Table II)
        optimizer=SGD(learning_rate=0.005, momentum=0.9),
        loss="euclidean",
        num_workers=2,           # task-parallel engine with FORCE protocol
        seed=0,
    )
    out_name = net.output_nodes[0].name
    out_shape = net.output_nodes[0].shape
    print(f"network: {len(net.nodes)} nodes, {len(net.edges)} edges")
    print(f"input 30^3 -> output {out_shape} at node {out_name!r}")
    print(f"autotuned conv modes: "
          f"{sorted(set(net.conv_modes.values()))}")

    provider = RandomProvider(input_shape=(30, 30, 30),
                              output_shape=out_shape, seed=1)
    trainer = Trainer(net, provider)
    report = trainer.run(rounds=10, warmup=2,
                         callback=lambda i, l: print(f"round {i:2d}  "
                                                     f"loss {l:.4f}"))
    print(f"mean seconds/update: {report.mean_seconds_per_update:.4f}")

    x, _ = provider.sample()
    prediction = net.forward(x)[out_name]
    print(f"inference output: shape {prediction.shape}, "
          f"mean {prediction.mean():+.4f}")
    net.close()


if __name__ == "__main__":
    main()
