#!/usr/bin/env python
"""2D boundary detection — the paper's 2D special case with FFT
convolution.

"2D images are a special case in which one of the dimensions has size
one" (Section II); the paper's 2D benchmarks use FFT convolution with
larger (11x11) kernels.  This example trains a compact 2D max-filter
net with 7x7 kernels — big enough that the autotuner picks FFT — on a
synthetic 2D cell image, and shows sparse-lattice ("sparse training")
versus dense evaluation.

Run:  python examples/train_2d_boundary.py
"""

import numpy as np

from repro import Network, PatchProvider, SGD, Trainer, build_layered_network
from repro.core import sparse_lattice
from repro.data import boundary_scores, make_cell_volume, pixel_error


def main() -> None:
    # A 2D "EM section": one z-slice, 160^2 pixels, ~40 cells.
    volume = make_cell_volume(shape=(1, 160, 160), num_cells=40,
                              noise=0.08, seed=3)
    volume.image[:] = (volume.image - volume.image.mean()) / volume.image.std()
    print(f"2D section {volume.shape[1:]}, membrane fraction "
          f"{volume.boundary_fraction():.2f}")

    # CTMCT with 7x7 kernels; skip-kernels make it a dense-output net.
    graph = build_layered_network(
        "CTMCT", width=6, kernel=(1, 7, 7), window=(1, 2, 2),
        transfer="tanh", final_transfer="linear", skip_kernels=True,
        output_nodes=1)
    input_shape = (1, 40, 40)
    net = Network(graph, input_shape=input_shape, conv_mode="auto",
                  loss="binary-logistic", seed=0, fft_fast_sizes=True,
                  optimizer=SGD(learning_rate=5e-4, momentum=0.9))
    out_name = net.output_nodes[0].name
    out_shape = net.output_nodes[0].shape
    modes = sorted(set(net.conv_modes.values()))
    print(f"output patch {out_shape[1:]}, autotuned conv modes: {modes}")

    provider = PatchProvider(volume, input_shape, out_shape, seed=4)
    voxels = float(np.prod(out_shape))
    Trainer(net, provider).run(
        rounds=120,
        callback=lambda i, l: print(f"round {i:3d}  loss/pixel "
                                    f"{l / voxels:.3f}")
        if i % 30 == 0 else None)

    # Dense evaluation on a held-out section.
    test = make_cell_volume(shape=(1, 80, 80), num_cells=12, noise=0.08,
                            seed=5)
    test.image[:] = (test.image - test.image.mean()) / test.image.std()
    eval_provider = PatchProvider(test, input_shape, out_shape, seed=6)
    errors, f1s = [], []
    for _ in range(8):
        patch, target = eval_provider.sample()
        prob = 1 / (1 + np.exp(-net.forward(patch)[out_name]))
        errors.append(pixel_error(prob, target))
        f1s.append(boundary_scores(prob, target).f1)
    print(f"held-out pixel error {np.mean(errors):.3f}, "
          f"membrane F1 {np.mean(f1s):.3f}")

    # Sparse training view: the period-2 lattice of the dense output is
    # what a max-pooling net trained "sparsely" would predict.
    patch, _ = eval_provider.sample()
    dense = net.forward(patch)[out_name]
    lattice = sparse_lattice(dense, (1, 2, 2))
    print(f"dense output {dense.shape[1:]} -> period-2 lattice "
          f"{lattice.shape[1:]} (sparse-training view)")
    net.close()


if __name__ == "__main__":
    main()
