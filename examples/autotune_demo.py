#!/usr/bin/env python
"""Layerwise FFT-vs-direct autotuning and the convolution crossover
(Section IV).

Measures direct and FFT convolution on this machine across kernel
sizes, shows where the crossover falls for a single convolution, and
contrasts it with the *layer-level* crossover predicted by the Table II
cost model — which occurs at smaller kernels because a layer's image
and kernel FFTs are shared across its ``f * f'`` edges.  Finally builds
a mixed-kernel network and reports the mode the autotuner picked per
layer.

Run:  python examples/autotune_demo.py
"""

from repro import Network, build_layered_network
from repro.core import autotune_layer, layer_crossover_kernel_size


def main() -> None:
    image = (48, 48, 48)
    print(f"single 3D convolution on image {image} (measured on this host):")
    print(f"{'kernel':>8} {'direct s':>10} {'fft s':>10} {'chosen':>8}")
    for k in (2, 3, 5, 7, 9, 11):
        mode, t_d, t_f = autotune_layer(image, k, repeats=3)
        print(f"{k:>6}^3 {t_d:10.4f} {t_f:10.4f} {mode:>8}")

    print("\nlayer-level crossover from the Table II cost model")
    print("(FFTs shared across a fully connected layer's f*f' edges):")
    ks = range(2, 12)
    for f in (1, 4, 16, 64):
        k = layer_crossover_kernel_size(image, ks, f_in=f, f_out=f)
        print(f"  width f = f' = {f:>3}: FFT wins from kernel "
              f"{k if k else '>11'}^3")

    print("\nautotuning a mixed-kernel network (kernels 2^3 then 7^3):")
    graph = build_layered_network("CTCT", width=3, kernel=[2, 7],
                                  transfer="relu")
    net = Network(graph, input_shape=(26, 26, 26), conv_mode="auto", seed=0)
    by_layer = {}
    for name, mode in sorted(net.conv_modes.items()):
        layer = name.split("_")[1]
        by_layer.setdefault(layer, set()).add(mode)
    for layer, modes in sorted(by_layer.items()):
        print(f"  conv layer {layer}: {sorted(modes)}")
    net.close()


if __name__ == "__main__":
    main()
